//! A small assembler for building instruction segments in tests,
//! examples and workload generators.
//!
//! Supports forward-referenced labels and convenience emitters for the
//! common instruction shapes.
//!
//! # Examples
//!
//! ```
//! use i432_gdp::{ProgramBuilder, isa::{DataRef, DataDst, AluOp}};
//!
//! let mut p = ProgramBuilder::new();
//! let loop_top = p.new_label();
//! p.mov(DataRef::Imm(10), DataDst::Local(0));
//! p.bind(loop_top);
//! p.alu(AluOp::Sub, DataRef::Local(0), DataRef::Imm(1), DataDst::Local(0));
//! p.jump_if_nonzero(DataRef::Local(0), loop_top);
//! p.halt();
//! let code = p.finish();
//! assert_eq!(code.len(), 4);
//! ```

use crate::isa::{AluOp, DataDst, DataRef, Instruction};
use i432_arch::Rights;

/// A forward-referencable jump target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Builder for an instruction vector.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instruction>,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// An empty program.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Current instruction index.
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Allocates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a label to the current position.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.here());
    }

    /// Pushes a raw instruction.
    pub fn push(&mut self, i: Instruction) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Emits `Mov`.
    pub fn mov(&mut self, src: DataRef, dst: DataDst) -> &mut Self {
        self.push(Instruction::Mov { src, dst })
    }

    /// Emits `Alu`.
    pub fn alu(&mut self, op: AluOp, a: DataRef, b: DataRef, dst: DataDst) -> &mut Self {
        self.push(Instruction::Alu { op, a, b, dst })
    }

    /// Emits an unconditional jump to a label.
    pub fn jump(&mut self, l: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), l));
        self.push(Instruction::Jump(u32::MAX))
    }

    /// Emits a jump taken when `cond != 0`.
    pub fn jump_if_nonzero(&mut self, cond: DataRef, l: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), l));
        self.push(Instruction::JumpIf {
            cond,
            when: true,
            target: u32::MAX,
        })
    }

    /// Emits a jump taken when `cond == 0`.
    pub fn jump_if_zero(&mut self, cond: DataRef, l: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), l));
        self.push(Instruction::JumpIf {
            cond,
            when: false,
            target: u32::MAX,
        })
    }

    /// Emits `MoveAd`.
    pub fn move_ad(&mut self, src: u16, dst: u16) -> &mut Self {
        self.push(Instruction::MoveAd { src, dst })
    }

    /// Emits `LoadAd`.
    pub fn load_ad(&mut self, obj: u16, index: DataRef, dst: u16) -> &mut Self {
        self.push(Instruction::LoadAd { obj, index, dst })
    }

    /// Emits `StoreAd`.
    pub fn store_ad(&mut self, src: u16, obj: u16, index: DataRef) -> &mut Self {
        self.push(Instruction::StoreAd { src, obj, index })
    }

    /// Emits `NullAd`.
    pub fn null_ad(&mut self, dst: u16) -> &mut Self {
        self.push(Instruction::NullAd { dst })
    }

    /// Emits `Restrict`.
    pub fn restrict(&mut self, slot: u16, keep: Rights) -> &mut Self {
        self.push(Instruction::Restrict { slot, keep })
    }

    /// Emits `CreateObject`.
    pub fn create_object(
        &mut self,
        sro: u16,
        data_len: DataRef,
        access_len: DataRef,
        dst: u16,
    ) -> &mut Self {
        self.push(Instruction::CreateObject {
            sro,
            data_len,
            access_len,
            dst,
        })
    }

    /// Emits `Call`.
    pub fn call(
        &mut self,
        domain: u16,
        subprogram: u32,
        arg: Option<u16>,
        ret_ad: Option<u16>,
        ret_val: Option<u32>,
    ) -> &mut Self {
        self.push(Instruction::Call {
            domain,
            subprogram,
            arg,
            ret_ad,
            ret_val,
        })
    }

    /// Emits `Return`.
    pub fn ret(&mut self, ad: Option<u16>, value: Option<DataRef>) -> &mut Self {
        self.push(Instruction::Return { ad, value })
    }

    /// Emits `Send`.
    pub fn send(&mut self, port: u16, msg: u16) -> &mut Self {
        self.push(Instruction::Send {
            port,
            msg,
            key: DataRef::Imm(0),
        })
    }

    /// Emits `Send` with a queueing key.
    pub fn send_keyed(&mut self, port: u16, msg: u16, key: DataRef) -> &mut Self {
        self.push(Instruction::Send { port, msg, key })
    }

    /// Emits `Receive`.
    pub fn receive(&mut self, port: u16, dst: u16) -> &mut Self {
        self.push(Instruction::Receive { port, dst })
    }

    /// Emits `CondSend`.
    pub fn cond_send(&mut self, port: u16, msg: u16, done: DataDst) -> &mut Self {
        self.push(Instruction::CondSend {
            port,
            msg,
            key: DataRef::Imm(0),
            done,
        })
    }

    /// Emits `CondReceive`.
    pub fn cond_receive(&mut self, port: u16, dst: u16, done: DataDst) -> &mut Self {
        self.push(Instruction::CondReceive { port, dst, done })
    }

    /// Emits `ReceiveTimeout`.
    pub fn receive_timeout(&mut self, port: u16, dst: u16, timeout: DataRef) -> &mut Self {
        self.push(Instruction::ReceiveTimeout { port, dst, timeout })
    }

    /// Emits `CreateTypedObject`.
    pub fn create_typed_object(
        &mut self,
        sro: u16,
        tdo: u16,
        data_len: DataRef,
        access_len: DataRef,
        dst: u16,
    ) -> &mut Self {
        self.push(Instruction::CreateTypedObject {
            sro,
            tdo,
            data_len,
            access_len,
            dst,
        })
    }

    /// Emits `Amplify`.
    pub fn amplify(&mut self, slot: u16, tdo: u16, add: Rights) -> &mut Self {
        self.push(Instruction::Amplify { slot, tdo, add })
    }

    /// Emits `CopyData`.
    pub fn copy_data(
        &mut self,
        src: u16,
        src_off: DataRef,
        dst: u16,
        dst_off: DataRef,
        len: DataRef,
    ) -> &mut Self {
        self.push(Instruction::CopyData {
            src,
            src_off,
            dst,
            dst_off,
            len,
        })
    }

    /// Emits `InspectAd`.
    pub fn inspect_ad(&mut self, slot: u16, dst: DataDst) -> &mut Self {
        self.push(Instruction::InspectAd { slot, dst })
    }

    /// Emits `RaiseFault`.
    pub fn raise_fault(&mut self, code: u16) -> &mut Self {
        self.push(Instruction::RaiseFault { code })
    }

    /// Emits `Work`.
    pub fn work(&mut self, cycles: u32) -> &mut Self {
        self.push(Instruction::Work { cycles })
    }

    /// Emits `ReadClock`.
    pub fn read_clock(&mut self, dst: DataDst) -> &mut Self {
        self.push(Instruction::ReadClock { dst })
    }

    /// Emits `Halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instruction::Halt)
    }

    /// Resolves labels and returns the instruction vector.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Vec<Instruction> {
        for (at, l) in self.patches {
            let target = self.labels[l.0].expect("label referenced but never bound");
            match &mut self.instrs[at] {
                Instruction::Jump(t) => *t = target,
                Instruction::JumpIf { target: t, .. } => *t = target,
                other => unreachable!("patch points at non-jump {other:?}"),
            }
        }
        self.instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_labels_resolve() {
        let mut p = ProgramBuilder::new();
        let end = p.new_label();
        p.jump(end);
        p.work(100);
        p.bind(end);
        p.halt();
        let code = p.finish();
        assert_eq!(code[0], Instruction::Jump(2));
    }

    #[test]
    fn backward_labels_resolve() {
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.bind(top);
        p.work(1);
        p.jump(top);
        let code = p.finish();
        assert_eq!(code[1], Instruction::Jump(0));
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut p = ProgramBuilder::new();
        let l = p.new_label();
        p.jump(l);
        let _ = p.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut p = ProgramBuilder::new();
        let l = p.new_label();
        p.bind(l);
        p.bind(l);
    }
}
