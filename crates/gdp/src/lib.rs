//! # i432-gdp — the iAPX 432 General Data Processor, emulated
//!
//! This crate interprets an architectural-level rendering of the 432
//! instruction set over the capability object model of `i432-arch`. It
//! provides everything the paper attributes to the *hardware* side of the
//! hardware/software boundary:
//!
//! * the instruction set and operand model ([`isa`]), including the
//!   high-level instructions the 432 is famous for — inter-domain CALL and
//!   RETURN ([`context`]), SEND and RECEIVE on port objects ([`port`]),
//!   and CREATE OBJECT against storage resource objects;
//! * implicit **process dispatching**: idle processors receive ready
//!   processes from dispatching ports, bind them, run them for a time
//!   slice, and hand them back to software at faults and scheduling events
//!   ([`process`], [`exec`]);
//! * the **fault taxonomy** mapping architectural violations onto
//!   process-level faults delivered to fault ports ([`fault`]);
//! * a documented, calibrated **cycle cost model** ([`cost`]) anchored to
//!   the paper's two published timings (65 µs domain switch, 80 µs object
//!   allocation, both at 8 MHz);
//! * **native subprogram bodies** ([`native`]) so iMAX services are
//!   invoked through the very same CALL instruction as user code — the
//!   paper's "no difference whatsoever between calling an operating system
//!   subprogram and calling some user-defined subprogram";
//! * the [`interconnect`] trait the multiprocessor simulator uses to model
//!   memory-bus contention.
//!
//! The crate is single-processor at heart: [`exec::Gdp`] advances one
//! processor by one step. `i432-sim` interleaves many of them in simulated
//! time.

#![warn(missing_docs)]

pub mod code;
pub mod codec;
pub mod context;
pub mod cost;
pub mod dispatch;
pub mod exec;
pub mod fault;
pub mod interconnect;
pub mod isa;
pub mod native;
pub mod port;
pub mod process;
pub mod program;

pub use code::CodeStore;
pub use codec::{decode_program, encode_program, CodecError};
pub use context::{create_context, destroy_context};
pub use cost::{CostModel, CLOCK_HZ};
pub use dispatch::{analyze, is_linear, BlockCache, InlineCache, Site, IC_LINES};
pub use exec::{Env, Gdp, StepEvent};
pub use fault::{Fault, FaultKind};
pub use interconnect::{Interconnect, NullInterconnect};
pub use isa::{AluOp, DataDst, DataRef, Instruction};
pub use native::{NativeCtx, NativeRegistry, NativeReturn};
pub use program::ProgramBuilder;
