//! Context (activation record) creation and destruction.
//!
//! Paper §2: "The 432 subprogram call instruction performs the dynamic
//! transition between domains, providing the proper addressing
//! environment for any invoked subprogram via a context object."
//!
//! Contexts are objects like any other: they are allocated from an SRO,
//! carry a level one deeper than their caller (paper §5), and hold their
//! linkage — domain, caller, SRO, argument — in well-known access slots.

use crate::fault::{Fault, FaultKind};
use i432_arch::{
    sysobj::{CTX_SLOT_ARG, CTX_SLOT_CALLER, CTX_SLOT_DOMAIN, CTX_SLOT_SRO},
    AccessDescriptor, ContextState, Level, ObjectRef, ObjectSpec, ObjectType, Rights, SpaceAccess,
    SpaceAccessExt, Subprogram, SysState, SystemType,
};

/// Looks up (and clones) a domain's subprogram entry.
pub fn subprogram_of<S: SpaceAccess + ?Sized>(
    space: &mut S,
    domain: ObjectRef,
    index: u32,
) -> Result<Subprogram, Fault> {
    space
        .entry_view(domain, |entry| {
            let SysState::Domain(d) = &entry.sys else {
                return Err(Fault::with_detail(FaultKind::TypeMismatch, "not a domain"));
            };
            d.subprograms.get(index as usize).cloned().ok_or_else(|| {
                Fault::with_detail(
                    FaultKind::BadSubprogram,
                    format!("domain '{}' has no subprogram {}", d.name, index),
                )
            })
        })
        .map_err(Fault::from)?
}

/// Creates a context for `subprogram` of `domain`, at one level deeper
/// than `level`, allocated from `sro`.
///
/// Linkage slots are filled: domain, caller (if any), SRO, argument (if
/// any). Returns the new context.
#[allow(clippy::too_many_arguments)]
pub fn create_context<S: SpaceAccess + ?Sized>(
    space: &mut S,
    sro: ObjectRef,
    domain_ad: AccessDescriptor,
    subprogram: u32,
    sub: &Subprogram,
    arg: Option<AccessDescriptor>,
    caller: Option<AccessDescriptor>,
    level: Level,
    ret_ad_slot: Option<u32>,
    ret_val_off: Option<u32>,
) -> Result<ObjectRef, Fault> {
    let state = ContextState {
        body: sub.body,
        ip: 0,
        ret_ad_slot,
        ret_val_off,
        subprogram,
    };
    let ctx = space
        .create_object(
            sro,
            ObjectSpec {
                data_len: sub.ctx_data_len,
                access_len: sub.ctx_access_len,
                otype: ObjectType::System(SystemType::Context),
                level: Some(level.deeper()),
                sys: SysState::Context(state),
            },
        )
        .map_err(Fault::from)?;
    // Linkage. These are hardware stores performed while building the
    // context (the level relationships all hold by construction, but the
    // context is being assembled by microcode, so use the linkage path).
    //
    // The context's domain slot carries the *defining environment* view:
    // the subprogram executes inside its package, so it can read the
    // domain's owned state (CALL callers only ever held call rights; the
    // read amplification happens here, in the hardware's environment
    // switch — this is what makes packages protection domains rather
    // than mere code).
    let own_view =
        i432_arch::AccessDescriptor::new(domain_ad.obj, domain_ad.rights.union(Rights::READ));
    space
        .store_ad_hw(ctx, CTX_SLOT_DOMAIN, Some(own_view))
        .map_err(Fault::from)?;
    space
        .store_ad_hw(ctx, CTX_SLOT_CALLER, caller)
        .map_err(Fault::from)?;
    let sro_ad = space.mint(sro, Rights::ALLOCATE | Rights::RECLAIM);
    space
        .store_ad_hw(ctx, CTX_SLOT_SRO, Some(sro_ad))
        .map_err(Fault::from)?;
    space
        .store_ad_hw(ctx, CTX_SLOT_ARG, arg)
        .map_err(Fault::from)?;
    Ok(ctx)
}

/// Destroys a context, returning its storage to its SRO.
pub fn destroy_context<S: SpaceAccess + ?Sized>(
    space: &mut S,
    ctx: ObjectRef,
) -> Result<(), Fault> {
    space.destroy_object(ctx).map_err(Fault::from)?;
    Ok(())
}

/// Reads a context's interpreted state.
pub fn context_state<S: SpaceAccess + ?Sized>(
    space: &mut S,
    ctx: ObjectRef,
) -> Result<ContextState, Fault> {
    space
        .entry_view(ctx, |e| match &e.sys {
            SysState::Context(c) => Ok(*c),
            _ => Err(Fault::with_detail(FaultKind::TypeMismatch, "not a context")),
        })
        .map_err(Fault::from)?
}

/// Mutates a context's interpreted state.
///
/// Routed through [`SpaceAccessExt::sys_update`]: instruction-pointer
/// updates happen once per instruction, and they touch only the system
/// part of the entry — never the data window a qualification cache line
/// describes — so they must not invalidate cached descriptors.
pub fn with_context_state<S: SpaceAccess + ?Sized, R>(
    space: &mut S,
    ctx: ObjectRef,
    f: impl FnOnce(&mut ContextState) -> R,
) -> Result<R, Fault> {
    space
        .sys_update(ctx, |sys| match sys {
            SysState::Context(c) => Ok(f(c)),
            _ => Err(Fault::with_detail(FaultKind::TypeMismatch, "not a context")),
        })
        .map_err(Fault::from)?
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{CodeBody, CodeRef, DomainState, ObjectSpace};

    fn domain_with_sub(space: &mut ObjectSpace) -> ObjectRef {
        let root = space.root_sro();
        space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: 4,
                    otype: ObjectType::System(SystemType::Domain),
                    level: None,
                    sys: SysState::Domain(DomainState {
                        name: "test".into(),
                        subprograms: vec![Subprogram {
                            name: "entry".into(),
                            body: CodeBody::Interpreted(CodeRef(0)),
                            ctx_data_len: 64,
                            ctx_access_len: 8,
                        }],
                    }),
                },
            )
            .unwrap()
    }

    #[test]
    fn create_context_links_and_levels() {
        let mut s = ObjectSpace::new(8192, 512, 128);
        let root = s.root_sro();
        let dom = domain_with_sub(&mut s);
        let dad = s.mint(dom, Rights::CALL);
        let sub = subprogram_of(&mut s, dom, 0).unwrap();
        let ctx =
            create_context(&mut s, root, dad, 0, &sub, None, None, Level(0), None, None).unwrap();
        assert_eq!(s.table.get(ctx).unwrap().desc.level, Level(1));
        let ctx_ad = s.mint(ctx, Rights::READ);
        // The context holds the defining-environment view: the caller's
        // call rights plus read access to the package's own state.
        assert_eq!(
            s.load_ad(ctx_ad, CTX_SLOT_DOMAIN).unwrap(),
            Some(AccessDescriptor::new(
                dad.obj,
                dad.rights.union(Rights::READ)
            ))
        );
        assert_eq!(s.load_ad(ctx_ad, CTX_SLOT_CALLER).unwrap(), None);
        assert!(s.load_ad(ctx_ad, CTX_SLOT_SRO).unwrap().is_some());
        let st = context_state(&mut s, ctx).unwrap();
        assert_eq!(st.ip, 0);
        assert_eq!(st.subprogram, 0);
    }

    #[test]
    fn bad_subprogram_index_faults() {
        let mut s = ObjectSpace::new(8192, 512, 128);
        let dom = domain_with_sub(&mut s);
        let e = subprogram_of(&mut s, dom, 5).unwrap_err();
        assert_eq!(e.kind, FaultKind::BadSubprogram);
    }

    #[test]
    fn destroy_context_frees_storage() {
        let mut s = ObjectSpace::new(8192, 512, 128);
        let root = s.root_sro();
        let dom = domain_with_sub(&mut s);
        let dad = s.mint(dom, Rights::CALL);
        let sub = subprogram_of(&mut s, dom, 0).unwrap();
        let before = s.sro(root).unwrap().data_free.total_free();
        let ctx =
            create_context(&mut s, root, dad, 0, &sub, None, None, Level(0), None, None).unwrap();
        assert!(s.sro(root).unwrap().data_free.total_free() < before);
        destroy_context(&mut s, ctx).unwrap();
        assert_eq!(s.sro(root).unwrap().data_free.total_free(), before);
    }
}
