//! Dispatch specialization: the pre-decoded basic-block cache,
//! superinstruction fusion table, and monomorphic inline caches that
//! accelerate the unlocked [`BoundState`](crate::Gdp) fast path.
//!
//! Three layers, all strictly *transparent* — the conformance oracle
//! diffs fusion-on against fusion-off runs and the deterministic
//! reference, and the deterministic runner never consults any of them:
//!
//! 1. **Block cache** ([`BlockCache`]): one immutable
//!    `Arc<[Instruction]>` snapshot per executed code segment, taken
//!    from the versioned [`CodeStore`] and revalidated against
//!    [`CodeStore::version_of`] before every use. A
//!    [`patch`](CodeStore::patch) (self-modifying program) or a context
//!    rebinding to a different segment is observed at the next
//!    instruction boundary — the same granularity as fetching from the
//!    store itself.
//! 2. **Fusion table**: at decode time every instruction pair
//!    `(ip, ip+1)` is classified ([`analyze`]). A pair fuses when the
//!    first instruction is *linear* (always falls through: no jump,
//!    block, switch or exit) and the second is admissible on the fast
//!    path — then one fast step retires both, with per-instruction
//!    charging, bus traffic, slice accounting and fault boundaries kept
//!    exactly as the unfused interpreter produces them.
//! 3. **Inline caches** ([`InlineCache`]): a direct-mapped,
//!    site-indexed cache of descriptor-qualification outcomes at CALL
//!    and port sites, structurally mirroring the per-agent qualcache:
//!    a line is valid only for the *exact* access descriptor (object
//!    identity including generation, plus rights) it was filled with,
//!    and only while its shard's qualification epoch is unchanged
//!    ([`i432_arch::SpaceAccess::qual_epoch`]). Any binding change
//!    flushes the whole cache.

use crate::code::CodeStore;
use crate::isa::Instruction;
use i432_arch::{AccessDescriptor, CodeRef, PortRing, Subprogram};
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Fusion analysis
// ---------------------------------------------------------------------------

/// Instructions that always fall through to `ip + 1` when they do not
/// fault: the legal *first* half of a superinstruction. A strict subset
/// of the fast-path set — jumps are excluded because their successor is
/// not `ip + 1`.
pub fn is_linear(instr: &Instruction) -> bool {
    matches!(
        instr,
        Instruction::Mov { .. }
            | Instruction::Alu { .. }
            | Instruction::Work { .. }
            | Instruction::MoveAd { .. }
            | Instruction::NullAd { .. }
            | Instruction::Restrict { .. }
            | Instruction::LoadAd { .. }
            | Instruction::StoreAd { .. }
    )
}

/// Instructions admissible on the unlocked fast path: the legal
/// *second* half of a superinstruction. Kept in lockstep with the
/// executor's own fast-path predicate (asserted by the fusion tests).
fn is_fast_second(instr: &Instruction) -> bool {
    is_linear(instr) | matches!(instr, Instruction::Jump(_) | Instruction::JumpIf { .. })
}

/// Computes the per-ip fusion table for a decoded body: `fused[ip]` is
/// true when the pair `(ip, ip+1)` executes as one superinstruction.
///
/// The profile behind the candidate set is the flight recorder's
/// opcode-pair matrix: on the threaded benchmarks the dominant dynamic
/// pairs are `work→alu`, `alu→jump_if`, `mov→mov` and `load_ad→store_ad`
/// — all covered by the linear × fast product below, so the table fuses
/// every pair the fast path can retire rather than a fixed pick list.
pub fn analyze(body: &[Instruction]) -> Box<[bool]> {
    let mut fused = vec![false; body.len()];
    for ip in 0..body.len().saturating_sub(1) {
        fused[ip] = is_linear(&body[ip]) && is_fast_second(&body[ip + 1]);
    }
    fused.into()
}

// ---------------------------------------------------------------------------
// Basic-block cache
// ---------------------------------------------------------------------------

/// One cached, pre-decoded code segment.
#[derive(Debug, Clone)]
struct CachedBody {
    /// The [`CodeStore`] version this snapshot decodes.
    version: u64,
    /// The immutable body snapshot.
    instrs: Arc<[Instruction]>,
    /// Per-ip fusion classification (see [`analyze`]).
    fused: Box<[bool]>,
}

/// The per-processor basic-block cache: decode (and fusion-classify)
/// once per segment, revalidate by version on every resolve.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    bodies: HashMap<u32, CachedBody>,
}

impl BlockCache {
    /// An empty cache.
    pub fn new() -> BlockCache {
        BlockCache::default()
    }

    /// Resolves the instruction at `(code, ip)` through the cache,
    /// re-snapshotting from the store when the segment is uncached or
    /// its version moved (invalidation). Returns the instruction plus
    /// its fusion partner at `ip + 1` when the pair is fused; `None`
    /// when `ip` is outside the segment (the caller falls back to the
    /// locked path, which raises the canonical `BadIp`).
    pub fn resolve(
        &mut self,
        store: &CodeStore,
        code: CodeRef,
        ip: u32,
    ) -> Option<(Instruction, Option<Instruction>)> {
        let current = store.version_of(code);
        let cached = self.bodies.get(&code.0);
        if cached.is_none_or(|c| c.version != current) {
            let (version, instrs) = store.snapshot(code)?;
            let fused = analyze(&instrs);
            i432_trace::bump(i432_trace::Counter::BlockDecodes);
            self.bodies.insert(
                code.0,
                CachedBody {
                    version,
                    instrs,
                    fused,
                },
            );
        }
        let c = self.bodies.get(&code.0)?;
        let instr = *c.instrs.get(ip as usize)?;
        let partner = if *c.fused.get(ip as usize)? {
            c.instrs.get(ip as usize + 1).copied()
        } else {
            None
        };
        Some((instr, partner))
    }

    /// Number of cached segments.
    pub fn occupancy(&self) -> usize {
        self.bodies.len()
    }

    /// Drops every cached segment.
    pub fn clear(&mut self) {
        self.bodies.clear();
    }
}

// ---------------------------------------------------------------------------
// Monomorphic inline caches
// ---------------------------------------------------------------------------

/// Number of IC lines (direct-mapped, like the qualcache).
pub const IC_LINES: usize = 64;

/// A call or port site: the static program location whose
/// qualification outcome the line caches.
pub type Site = (CodeRef, u32);

/// What a hit at the site short-circuits.
#[derive(Debug, Clone)]
pub enum IcPayload {
    /// A CALL site: the resolved subprogram of the (type-checked,
    /// CALL-qualified) target domain. `sub_index` re-keys the line
    /// against the instruction's immediate so a patched CALL at the
    /// same site can never serve a stale subprogram.
    Call {
        /// The subprogram-table index the line resolves.
        sub_index: u32,
        /// The resolved subprogram (owned clone; hits borrow it).
        sub: Subprogram,
    },
    /// A SEND/RECEIVE site: the port's live lock-free ring, found via
    /// the registry and rights-checked at fill time.
    Port {
        /// The cached ring handle.
        ring: Arc<PortRing>,
    },
}

/// One direct-mapped IC line.
#[derive(Debug, Clone)]
struct IcLine {
    site: Site,
    /// The exact descriptor the site presented at fill: object identity
    /// *including generation* (the slot-reuse guard) and rights (so a
    /// restricted descriptor re-qualifies on the locked path).
    target: AccessDescriptor,
    /// The target shard's qualification epoch at fill time (read
    /// *before* resolution: a racing mutation during fill leaves the
    /// line permanently stale-and-invalid rather than stale-and-live).
    epoch: u64,
    payload: IcPayload,
}

/// The per-processor monomorphic inline cache for descriptor
/// qualification at call and port sites.
#[derive(Debug, Clone, Default)]
pub struct InlineCache {
    lines: Vec<Option<IcLine>>,
}

fn slot_of(site: Site) -> usize {
    // Same spirit as the qualcache's index mapping: cheap, determinate,
    // spreading consecutive ips of one segment over distinct lines.
    (site.0 .0 as usize)
        .wrapping_mul(31)
        .wrapping_add(site.1 as usize)
        % IC_LINES
}

impl InlineCache {
    /// An empty cache.
    pub fn new() -> InlineCache {
        InlineCache {
            lines: vec![None; IC_LINES],
        }
    }

    fn line(&self, site: Site) -> Option<&IcLine> {
        self.lines.get(slot_of(site))?.as_ref()
    }

    /// Probes a CALL site. A hit requires the exact site, the exact
    /// subprogram index, the *exact* descriptor (identity, generation
    /// and rights) and an unchanged shard epoch; it returns the
    /// resolved subprogram without any locked qualification.
    pub fn probe_call(
        &self,
        site: Site,
        sub_index: u32,
        target: AccessDescriptor,
        epoch: Option<u64>,
    ) -> Option<&Subprogram> {
        let l = self.line(site)?;
        if l.site != site || l.target != target || Some(l.epoch) != epoch {
            return None;
        }
        match &l.payload {
            IcPayload::Call { sub_index: i, sub } if *i == sub_index => Some(sub),
            _ => None,
        }
    }

    /// Fills a CALL site after a successful locked resolution. `epoch`
    /// must have been read *before* the resolution began.
    pub fn fill_call(
        &mut self,
        site: Site,
        sub_index: u32,
        target: AccessDescriptor,
        epoch: u64,
        sub: Subprogram,
    ) {
        self.lines[slot_of(site)] = Some(IcLine {
            site,
            target,
            epoch,
            payload: IcPayload::Call { sub_index, sub },
        });
    }

    /// Probes a port site: same validity rule as
    /// [`probe_call`](InlineCache::probe_call), yielding the cached
    /// ring handle. The rights check is subsumed by descriptor
    /// equality — the line was filled from a descriptor that passed it.
    pub fn probe_port(
        &self,
        site: Site,
        target: AccessDescriptor,
        epoch: Option<u64>,
    ) -> Option<Arc<PortRing>> {
        let l = self.line(site)?;
        if l.site != site || l.target != target || Some(l.epoch) != epoch {
            return None;
        }
        match &l.payload {
            IcPayload::Port { ring } => Some(Arc::clone(ring)),
            _ => None,
        }
    }

    /// Fills a port site after a successful registry lookup + rights
    /// check. `epoch` must have been read *before* the lookup.
    pub fn fill_port(
        &mut self,
        site: Site,
        target: AccessDescriptor,
        epoch: u64,
        ring: Arc<PortRing>,
    ) {
        self.lines[slot_of(site)] = Some(IcLine {
            site,
            target,
            epoch,
            payload: IcPayload::Port { ring },
        });
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }

    /// Invalidates every line (binding change).
    pub fn clear(&mut self) {
        if self.lines.is_empty() {
            return;
        }
        for l in self.lines.iter_mut() {
            *l = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, DataDst, DataRef};
    use i432_arch::CodeBody;

    fn mov() -> Instruction {
        Instruction::Mov {
            src: DataRef::Imm(1),
            dst: DataDst::Local(0),
        }
    }

    fn alu() -> Instruction {
        Instruction::Alu {
            op: AluOp::Sub,
            a: DataRef::Local(0),
            b: DataRef::Imm(1),
            dst: DataDst::Local(0),
        }
    }

    #[test]
    fn analyze_fuses_linear_fast_pairs_only() {
        // mov; work; alu; jump_if; halt — the c3 hot-loop shape.
        let body = [
            mov(),
            Instruction::Work { cycles: 10 },
            alu(),
            Instruction::JumpIf {
                cond: DataRef::Local(0),
                when: true,
                target: 1,
            },
            Instruction::Halt,
        ];
        let f = analyze(&body);
        assert!(f[0], "mov→work fuses");
        assert!(f[1], "work→alu fuses");
        assert!(f[2], "alu→jump_if fuses");
        assert!(!f[3], "jump_if cannot lead a pair");
        assert!(!f[4], "last instruction has no partner");
    }

    #[test]
    fn analyze_never_fuses_across_slow_instructions() {
        let body = [
            mov(),
            Instruction::Halt,
            Instruction::Work { cycles: 1 },
            Instruction::RaiseFault { code: 7 },
        ];
        let f = analyze(&body);
        assert!(!f[0], "mov→halt stays unfused (halt exits)");
        assert!(!f[1], "halt is not linear");
        assert!(!f[2], "work→raise_fault stays unfused");
    }

    #[test]
    fn block_cache_revalidates_on_patch() {
        let mut cs = CodeStore::new();
        let r = cs.install(vec![mov(), alu(), Instruction::Halt]);
        let mut bc = BlockCache::new();
        let (i0, partner) = bc.resolve(&cs, r, 0).unwrap();
        assert_eq!(i0, mov());
        assert_eq!(partner, Some(alu()), "mov→alu fuses");
        assert_eq!(bc.occupancy(), 1);

        // Patch through the shared store: the next resolve re-decodes.
        assert!(cs.patch(r, 1, Instruction::Work { cycles: 5 }));
        let (_, partner) = bc.resolve(&cs, r, 0).unwrap();
        assert_eq!(
            partner,
            Some(Instruction::Work { cycles: 5 }),
            "patched partner visible after version bump"
        );
        assert!(bc.resolve(&cs, r, 9).is_none(), "out of range is None");
    }

    #[test]
    fn ic_call_lines_guard_site_descriptor_and_epoch() {
        let mut ic = InlineCache::new();
        let site: Site = (CodeRef(3), 7);
        let dom = AccessDescriptor::new(
            i432_arch::ObjectRef {
                index: i432_arch::ObjectIndex(12),
                generation: 4,
            },
            i432_arch::Rights::CALL,
        );
        let sub = Subprogram {
            name: "callee".into(),
            body: CodeBody::Interpreted(CodeRef(9)),
            ctx_data_len: 64,
            ctx_access_len: 8,
        };
        ic.fill_call(site, 2, dom, 17, sub);
        assert!(ic.probe_call(site, 2, dom, Some(17)).is_some());
        assert!(
            ic.probe_call(site, 3, dom, Some(17)).is_none(),
            "patched subprogram immediate misses"
        );
        assert!(
            ic.probe_call(site, 2, dom, Some(18)).is_none(),
            "epoch bump misses"
        );
        assert!(
            ic.probe_call(site, 2, dom, None).is_none(),
            "spaces without epochs never hit"
        );
        let stale = AccessDescriptor::new(
            i432_arch::ObjectRef {
                index: i432_arch::ObjectIndex(12),
                generation: 5,
            },
            i432_arch::Rights::CALL,
        );
        assert!(
            ic.probe_call(site, 2, stale, Some(17)).is_none(),
            "generation mismatch (slot reuse) misses"
        );
        ic.clear();
        assert_eq!(ic.occupancy(), 0);
        assert!(ic.probe_call(site, 2, dom, Some(17)).is_none());
    }
}
