//! The instruction set.
//!
//! The emulator renders the 432 instruction set at the architectural level
//! — an enum of operations rather than the original bit-aligned encodings;
//! the paper's claims concern the *semantics and costs* of the high-level
//! instructions, which this level captures faithfully.
//!
//! ## Operand model
//!
//! The executing context (activation record) provides the addressing
//! environment:
//!
//! * **access slots** — `u16` indices into the context's access part
//!   (slots 0–3 carry the fixed linkage: domain, caller, SRO, argument;
//!   see `i432_arch::sysobj::CTX_SLOT_*`);
//! * **data operands** ([`DataRef`]/[`DataDst`]) — immediates, context
//!   locals (byte offsets into the context's data part) or fields of
//!   objects designated by an access slot.
//!
//! All scalars are 64-bit little-endian words ("ordinals" in 432 terms).

use i432_arch::Rights;
use serde::{Deserialize, Serialize};

/// A readable scalar operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataRef {
    /// An immediate 64-bit value.
    Imm(u64),
    /// A local: byte offset into the current context's data part.
    Local(u32),
    /// A field: byte offset into the data part of the object designated by
    /// the given context access slot (requires read rights).
    Field(u16, u32),
}

/// A writable scalar operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataDst {
    /// A local: byte offset into the current context's data part.
    Local(u32),
    /// A field of the object designated by the given context access slot
    /// (requires write rights).
    Field(u16, u32),
}

/// Arithmetic / logic / comparison operations. Comparisons produce 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (faults on zero divisor).
    Div,
    /// Remainder (faults on zero divisor).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (modulo 64).
    Shl,
    /// Logical right shift (modulo 64).
    Shr,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
}

impl AluOp {
    /// Applies the operation; `None` signals divide-by-zero.
    pub fn apply(self, a: u64, b: u64) -> Option<u64> {
        Some(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => return a.checked_div(b),
            AluOp::Rem => return a.checked_rem(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32),
            AluOp::Shr => a.wrapping_shr(b as u32),
            AluOp::Eq => (a == b) as u64,
            AluOp::Ne => (a != b) as u64,
            AluOp::Lt => (a < b) as u64,
            AluOp::Le => (a <= b) as u64,
            AluOp::Gt => (a > b) as u64,
            AluOp::Ge => (a >= b) as u64,
        })
    }
}

/// One 432 instruction at the architectural level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instruction {
    // -- Scalar data ---------------------------------------------------------
    /// `dst := src`.
    Mov {
        /// Source operand.
        src: DataRef,
        /// Destination operand.
        dst: DataDst,
    },
    /// `dst := a op b`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Left operand.
        a: DataRef,
        /// Right operand.
        b: DataRef,
        /// Destination.
        dst: DataDst,
    },
    /// Unconditional jump to an instruction index.
    Jump(u32),
    /// Conditional jump: taken when `cond != 0` equals `when`.
    JumpIf {
        /// Condition operand.
        cond: DataRef,
        /// Jump when the condition is nonzero (`true`) or zero (`false`).
        when: bool,
        /// Target instruction index.
        target: u32,
    },

    // -- Access-descriptor movement -------------------------------------------
    /// Copies an access descriptor between context slots.
    MoveAd {
        /// Source context slot.
        src: u16,
        /// Destination context slot.
        dst: u16,
    },
    /// Loads an AD from the access part of the object in slot `obj` at
    /// `index` into context slot `dst`.
    LoadAd {
        /// Context slot designating the container object.
        obj: u16,
        /// Slot index within the container's access part.
        index: DataRef,
        /// Destination context slot.
        dst: u16,
    },
    /// Stores the AD in context slot `src` into the access part of the
    /// object in slot `obj` at `index`. Subject to the level rule and the
    /// GC write barrier.
    StoreAd {
        /// Source context slot.
        src: u16,
        /// Context slot designating the container object.
        obj: u16,
        /// Slot index within the container's access part.
        index: DataRef,
    },
    /// Nulls a context slot.
    NullAd {
        /// The slot to null.
        dst: u16,
    },
    /// Restricts the rights of the AD in a context slot (never adds).
    Restrict {
        /// The slot holding the AD to restrict.
        slot: u16,
        /// Keep-mask applied to its rights.
        keep: Rights,
    },

    // -- Object management -----------------------------------------------------
    /// CREATE OBJECT: allocates a generic object from the SRO in slot
    /// `sro` (requires allocate rights) and places a full-rights AD in
    /// `dst`.
    CreateObject {
        /// Context slot designating the SRO.
        sro: u16,
        /// Data-part bytes.
        data_len: DataRef,
        /// Access-part slots.
        access_len: DataRef,
        /// Destination context slot for the new object's AD.
        dst: u16,
    },
    /// CREATE TYPED OBJECT: like CREATE OBJECT but the new object carries
    /// the user type of the TDO in slot `tdo` (requires create-instance
    /// rights on the TDO).
    CreateTypedObject {
        /// Context slot designating the SRO.
        sro: u16,
        /// Context slot designating the type definition object.
        tdo: u16,
        /// Data-part bytes.
        data_len: DataRef,
        /// Access-part slots.
        access_len: DataRef,
        /// Destination context slot for the new instance's AD.
        dst: u16,
    },
    /// AMPLIFY: adds rights to the AD in `slot`, authorized by the TDO in
    /// slot `tdo` (requires amplify rights; the object must be an instance
    /// of that TDO). This is how type managers regain full access to
    /// instances handed back by clients.
    Amplify {
        /// Slot holding the instance AD to amplify.
        slot: u16,
        /// Slot holding the authorizing TDO AD.
        tdo: u16,
        /// Rights to add.
        add: Rights,
    },

    // -- Control transfer --------------------------------------------------------
    /// Inter-domain CALL: creates a context for subprogram `subprogram` of
    /// the domain in slot `domain` (requires call rights), passing the AD
    /// in `arg` (if any), and transfers. `ret_ad`/`ret_val` name caller
    /// locations that RETURN will fill.
    Call {
        /// Context slot designating the target domain.
        domain: u16,
        /// Index into the domain's subprogram table.
        subprogram: u32,
        /// Optional context slot whose AD is passed as the argument.
        arg: Option<u16>,
        /// Optional caller context slot to receive the returned AD.
        ret_ad: Option<u16>,
        /// Optional caller data offset to receive the returned scalar.
        ret_val: Option<u32>,
    },
    /// RETURN from the current context, optionally passing back an AD
    /// (from a context slot) and a scalar.
    Return {
        /// Optional context slot whose AD is returned.
        ad: Option<u16>,
        /// Optional scalar returned.
        value: Option<DataRef>,
    },

    // -- Interprocess communication ------------------------------------------------
    /// SEND: queues the AD in `msg` at the port in slot `port` (requires
    /// send rights); blocks when the queue is full.
    Send {
        /// Context slot designating the port.
        port: u16,
        /// Context slot holding the message AD.
        msg: u16,
        /// Queueing key (priority or deadline) under non-FIFO disciplines.
        key: DataRef,
    },
    /// Conditional SEND: like SEND but never blocks; writes 1 to `done`
    /// on success and 0 when the queue was full.
    CondSend {
        /// Context slot designating the port.
        port: u16,
        /// Context slot holding the message AD.
        msg: u16,
        /// Queueing key.
        key: DataRef,
        /// Receives 1 on success, 0 on would-block.
        done: DataDst,
    },
    /// RECEIVE: dequeues a message AD from the port in slot `port`
    /// (requires receive rights) into context slot `dst`; blocks when the
    /// queue is empty.
    Receive {
        /// Context slot designating the port.
        port: u16,
        /// Destination context slot for the message AD.
        dst: u16,
    },
    /// Timed RECEIVE: like RECEIVE, but a wait longer than `timeout`
    /// cycles expires with a timeout fault — the one fault species
    /// permitted to system-level-2 processes (paper §7.3).
    ReceiveTimeout {
        /// Context slot designating the port.
        port: u16,
        /// Destination context slot for the message AD.
        dst: u16,
        /// Maximum wait in cycles.
        timeout: DataRef,
    },
    /// Conditional RECEIVE: never blocks; writes 1 to `done` on success,
    /// 0 when no message was available (and nulls `dst`).
    CondReceive {
        /// Context slot designating the port.
        port: u16,
        /// Destination context slot.
        dst: u16,
        /// Receives 1 on success, 0 on would-block.
        done: DataDst,
    },

    /// Block-copies bytes between two objects' data parts (requires read
    /// rights on the source and write rights on the destination).
    CopyData {
        /// Context slot designating the source object.
        src: u16,
        /// Byte offset within the source data part.
        src_off: DataRef,
        /// Context slot designating the destination object.
        dst: u16,
        /// Byte offset within the destination data part.
        dst_off: DataRef,
        /// Bytes to copy.
        len: DataRef,
    },
    /// Inspects the access descriptor in a context slot without using it:
    /// writes a descriptor word to `dst` encoding null-ness, rights,
    /// level and type tag. This is the architectural support behind the
    /// "runtime type checking" Ada extension the paper mentions (§3).
    ///
    /// Word layout: bit 63 = null; bits 0..6 = rights; bits 8..24 =
    /// level; bits 24..32 = system-type tag (0 generic, 1 processor,
    /// 2 process, 3 context, 4 domain, 5 instructions, 6 port, 7 SRO,
    /// 8 TDO, 255 user-typed); bits 32..63 = TDO table index for
    /// user-typed objects.
    InspectAd {
        /// Context slot holding the descriptor to inspect.
        slot: u16,
        /// Destination for the descriptor word.
        dst: DataDst,
    },

    // -- Miscellaneous -----------------------------------------------------------
    /// Reads the processor's cycle clock into `dst`.
    ReadClock {
        /// Destination operand.
        dst: DataDst,
    },
    /// Consumes the given number of cycles (models a pure-compute burst;
    /// used by workload generators).
    Work {
        /// Cycles to consume.
        cycles: u32,
    },
    /// Raises an explicit software fault.
    RaiseFault {
        /// Application-defined fault code.
        code: u16,
    },
    /// Terminates the process.
    Halt,
}

/// Number of distinct opcodes ([`Instruction`] variants); the dense
/// range of [`Instruction::opcode`].
pub const OPCODE_COUNT: usize = 25;

impl Instruction {
    /// A dense opcode id in `0..OPCODE_COUNT`, stable across runs.
    ///
    /// Feeds the flight recorder's opcode-pair histogram (which indexes
    /// a fixed-size matrix by opcode id) and the dispatch-specialization
    /// tables, neither of which can afford variant names on a hot path.
    pub fn opcode(&self) -> u8 {
        match self {
            Instruction::Mov { .. } => 0,
            Instruction::Alu { .. } => 1,
            Instruction::Jump(_) => 2,
            Instruction::JumpIf { .. } => 3,
            Instruction::MoveAd { .. } => 4,
            Instruction::LoadAd { .. } => 5,
            Instruction::StoreAd { .. } => 6,
            Instruction::NullAd { .. } => 7,
            Instruction::Restrict { .. } => 8,
            Instruction::CreateObject { .. } => 9,
            Instruction::CreateTypedObject { .. } => 10,
            Instruction::Amplify { .. } => 11,
            Instruction::Call { .. } => 12,
            Instruction::Return { .. } => 13,
            Instruction::Send { .. } => 14,
            Instruction::CondSend { .. } => 15,
            Instruction::Receive { .. } => 16,
            Instruction::ReceiveTimeout { .. } => 17,
            Instruction::CondReceive { .. } => 18,
            Instruction::CopyData { .. } => 19,
            Instruction::InspectAd { .. } => 20,
            Instruction::ReadClock { .. } => 21,
            Instruction::Work { .. } => 22,
            Instruction::RaiseFault { .. } => 23,
            Instruction::Halt => 24,
        }
    }
}

/// The mnemonic for an opcode id from [`Instruction::opcode`]
/// (`"?"` for out-of-range ids).
pub fn opcode_name(op: u8) -> &'static str {
    match op {
        0 => "mov",
        1 => "alu",
        2 => "jump",
        3 => "jump_if",
        4 => "move_ad",
        5 => "load_ad",
        6 => "store_ad",
        7 => "null_ad",
        8 => "restrict",
        9 => "create_object",
        10 => "create_typed_object",
        11 => "amplify",
        12 => "call",
        13 => "return",
        14 => "send",
        15 => "cond_send",
        16 => "receive",
        17 => "receive_timeout",
        18 => "cond_receive",
        19 => "copy_data",
        20 => "inspect_ad",
        21 => "read_clock",
        22 => "work",
        23 => "raise_fault",
        24 => "halt",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_basics() {
        assert_eq!(AluOp::Add.apply(2, 3), Some(5));
        assert_eq!(AluOp::Sub.apply(2, 3), Some(u64::MAX));
        assert_eq!(AluOp::Mul.apply(4, 5), Some(20));
        assert_eq!(AluOp::Div.apply(7, 2), Some(3));
        assert_eq!(AluOp::Div.apply(7, 0), None);
        assert_eq!(AluOp::Rem.apply(7, 0), None);
        assert_eq!(AluOp::Shl.apply(1, 4), Some(16));
    }

    #[test]
    fn alu_comparisons_are_boolean() {
        for op in [
            AluOp::Eq,
            AluOp::Ne,
            AluOp::Lt,
            AluOp::Le,
            AluOp::Gt,
            AluOp::Ge,
        ] {
            for (a, b) in [(1u64, 2u64), (2, 2), (3, 2)] {
                let v = op.apply(a, b).unwrap();
                assert!(v == 0 || v == 1, "{op:?}({a},{b}) = {v}");
            }
        }
        assert_eq!(AluOp::Lt.apply(1, 2), Some(1));
        assert_eq!(AluOp::Ge.apply(1, 2), Some(0));
    }

    #[test]
    fn instructions_are_copy_and_small() {
        // The interpreter copies instructions out of the code store on
        // every step; keep them compact.
        assert!(std::mem::size_of::<Instruction>() <= 64);
        let i = Instruction::Halt;
        let j = i;
        assert_eq!(i, j);
    }

    #[test]
    fn opcodes_are_dense_and_named() {
        let samples = [
            Instruction::Mov {
                src: DataRef::Imm(0),
                dst: DataDst::Local(0),
            },
            Instruction::Jump(0),
            Instruction::Call {
                domain: 0,
                subprogram: 0,
                arg: None,
                ret_ad: None,
                ret_val: None,
            },
            Instruction::Halt,
        ];
        for s in &samples {
            let op = s.opcode();
            assert!((op as usize) < OPCODE_COUNT);
            assert_ne!(opcode_name(op), "?");
        }
        assert_eq!(Instruction::Halt.opcode() as usize, OPCODE_COUNT - 1);
        assert_eq!(opcode_name(OPCODE_COUNT as u8), "?");
    }
}
