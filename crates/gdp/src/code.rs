//! The code store: instruction-segment bodies.
//!
//! Instruction segments are objects in the object table (system type
//! `Instructions`); their executable bodies live here, keyed by
//! [`CodeRef`]. This keeps typed Rust instruction vectors out of the byte
//! arena while preserving the object model: programs still reach code only
//! through access descriptors for instruction-segment objects.
//!
//! ## Versioned bodies
//!
//! Each body is an immutable `Arc<[Instruction]>` snapshot paired with a
//! monotonic version counter. [`CodeStore::patch`] replaces one
//! instruction through a shared reference (the store is shared read-only
//! across the threaded runner's workers) by installing a *new* snapshot
//! and bumping the version. Consumers that pre-decode — the per-GDP
//! basic-block cache — revalidate against [`CodeStore::version_of`] and
//! re-[`snapshot`](CodeStore::snapshot) on mismatch, so a patched body is
//! observed at the next instruction boundary at the latest, exactly like
//! an instruction fetch from the store itself.

use crate::isa::Instruction;
use i432_arch::CodeRef;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One installed instruction segment: the current immutable snapshot of
/// its body plus the version that names that snapshot.
#[derive(Debug)]
struct Body {
    instrs: RwLock<Arc<[Instruction]>>,
    version: AtomicU64,
}

/// The store of all instruction-segment bodies in a system.
#[derive(Debug, Default)]
pub struct CodeStore {
    bodies: Vec<Body>,
}

impl Clone for CodeStore {
    fn clone(&self) -> CodeStore {
        CodeStore {
            bodies: self
                .bodies
                .iter()
                .map(|b| Body {
                    instrs: RwLock::new(b.instrs.read().unwrap().clone()),
                    version: AtomicU64::new(b.version.load(Ordering::Acquire)),
                })
                .collect(),
        }
    }
}

impl CodeStore {
    /// An empty store.
    pub fn new() -> CodeStore {
        CodeStore::default()
    }

    /// Installs a code body, returning its reference.
    pub fn install(&mut self, body: Vec<Instruction>) -> CodeRef {
        let r = CodeRef(self.bodies.len() as u32);
        self.bodies.push(Body {
            instrs: RwLock::new(body.into()),
            version: AtomicU64::new(0),
        });
        r
    }

    /// Fetches one instruction; `None` when `ip` is past the end or the
    /// reference is unknown (both are `BadIp` faults to the executor).
    pub fn fetch(&self, code: CodeRef, ip: u32) -> Option<Instruction> {
        self.bodies
            .get(code.0 as usize)
            .and_then(|b| b.instrs.read().unwrap().get(ip as usize).copied())
    }

    /// Length of a body in instructions (0 for unknown references).
    pub fn len_of(&self, code: CodeRef) -> u32 {
        self.bodies
            .get(code.0 as usize)
            .map(|b| b.instrs.read().unwrap().len() as u32)
            .unwrap_or(0)
    }

    /// Number of installed bodies.
    pub fn count(&self) -> usize {
        self.bodies.len()
    }

    /// The current version of a body (0 for unknown references; bumped
    /// by every [`patch`](CodeStore::patch)).
    pub fn version_of(&self, code: CodeRef) -> u64 {
        self.bodies
            .get(code.0 as usize)
            .map(|b| b.version.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// The current `(version, body)` snapshot of a segment, or `None`
    /// for unknown references. The pair is coherent: the returned body
    /// is exactly the snapshot that `version` names.
    pub fn snapshot(&self, code: CodeRef) -> Option<(u64, Arc<[Instruction]>)> {
        let b = self.bodies.get(code.0 as usize)?;
        loop {
            let v1 = b.version.load(Ordering::Acquire);
            let instrs = b.instrs.read().unwrap().clone();
            if b.version.load(Ordering::Acquire) == v1 {
                return Some((v1, instrs));
            }
        }
    }

    /// Replaces the instruction at `ip` in an installed body — the
    /// self-modifying-program path. Works through a shared reference so
    /// a debugger/loader agent can patch while the threaded runner owns
    /// the store read-only. Returns `false` (and changes nothing) when
    /// the reference or `ip` is unknown.
    pub fn patch(&self, code: CodeRef, ip: u32, instr: Instruction) -> bool {
        let Some(b) = self.bodies.get(code.0 as usize) else {
            return false;
        };
        let mut guard = b.instrs.write().unwrap();
        if ip as usize >= guard.len() {
            return false;
        }
        let mut next: Vec<Instruction> = guard.to_vec();
        next[ip as usize] = instr;
        *guard = next.into();
        b.version.fetch_add(1, Ordering::Release);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_fetch() {
        let mut cs = CodeStore::new();
        let r = cs.install(vec![Instruction::Work { cycles: 1 }, Instruction::Halt]);
        assert_eq!(cs.fetch(r, 0), Some(Instruction::Work { cycles: 1 }));
        assert_eq!(cs.fetch(r, 1), Some(Instruction::Halt));
        assert_eq!(cs.fetch(r, 2), None);
        assert_eq!(cs.len_of(r), 2);
    }

    #[test]
    fn unknown_ref_is_empty() {
        let cs = CodeStore::new();
        assert_eq!(cs.fetch(CodeRef(9), 0), None);
        assert_eq!(cs.len_of(CodeRef(9)), 0);
        assert_eq!(cs.version_of(CodeRef(9)), 0);
        assert!(cs.snapshot(CodeRef(9)).is_none());
        assert!(!cs.patch(CodeRef(9), 0, Instruction::Halt));
    }

    #[test]
    fn patch_bumps_version_and_replaces_one_instruction() {
        let mut cs = CodeStore::new();
        let r = cs.install(vec![Instruction::Work { cycles: 1 }, Instruction::Halt]);
        let (v0, body0) = cs.snapshot(r).unwrap();
        assert_eq!(v0, 0);
        assert_eq!(body0.len(), 2);

        assert!(cs.patch(r, 0, Instruction::Work { cycles: 7 }));
        assert_eq!(cs.version_of(r), v0 + 1);
        assert_eq!(cs.fetch(r, 0), Some(Instruction::Work { cycles: 7 }));
        assert_eq!(cs.fetch(r, 1), Some(Instruction::Halt));

        // The old snapshot is unaffected — decoded blocks keep a
        // coherent body until they revalidate.
        assert_eq!(body0[0], Instruction::Work { cycles: 1 });

        // Out-of-range patches change nothing.
        assert!(!cs.patch(r, 2, Instruction::Halt));
        assert_eq!(cs.version_of(r), v0 + 1);
    }

    #[test]
    fn clone_preserves_bodies_and_versions() {
        let mut cs = CodeStore::new();
        let r = cs.install(vec![Instruction::Halt]);
        cs.patch(r, 0, Instruction::Work { cycles: 3 });
        let dup = cs.clone();
        assert_eq!(dup.version_of(r), cs.version_of(r));
        assert_eq!(dup.fetch(r, 0), Some(Instruction::Work { cycles: 3 }));
    }
}
