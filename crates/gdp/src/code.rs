//! The code store: instruction-segment bodies.
//!
//! Instruction segments are objects in the object table (system type
//! `Instructions`); their executable bodies live here, keyed by
//! [`CodeRef`]. This keeps typed Rust instruction vectors out of the byte
//! arena while preserving the object model: programs still reach code only
//! through access descriptors for instruction-segment objects.

use crate::isa::Instruction;
use i432_arch::CodeRef;

/// The store of all instruction-segment bodies in a system.
#[derive(Debug, Default, Clone)]
pub struct CodeStore {
    bodies: Vec<Vec<Instruction>>,
}

impl CodeStore {
    /// An empty store.
    pub fn new() -> CodeStore {
        CodeStore::default()
    }

    /// Installs a code body, returning its reference.
    pub fn install(&mut self, body: Vec<Instruction>) -> CodeRef {
        let r = CodeRef(self.bodies.len() as u32);
        self.bodies.push(body);
        r
    }

    /// Fetches one instruction; `None` when `ip` is past the end or the
    /// reference is unknown (both are `BadIp` faults to the executor).
    pub fn fetch(&self, code: CodeRef, ip: u32) -> Option<Instruction> {
        self.bodies
            .get(code.0 as usize)
            .and_then(|b| b.get(ip as usize))
            .copied()
    }

    /// Length of a body in instructions (0 for unknown references).
    pub fn len_of(&self, code: CodeRef) -> u32 {
        self.bodies
            .get(code.0 as usize)
            .map(|b| b.len() as u32)
            .unwrap_or(0)
    }

    /// Number of installed bodies.
    pub fn count(&self) -> usize {
        self.bodies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_fetch() {
        let mut cs = CodeStore::new();
        let r = cs.install(vec![Instruction::Work { cycles: 1 }, Instruction::Halt]);
        assert_eq!(cs.fetch(r, 0), Some(Instruction::Work { cycles: 1 }));
        assert_eq!(cs.fetch(r, 1), Some(Instruction::Halt));
        assert_eq!(cs.fetch(r, 2), None);
        assert_eq!(cs.len_of(r), 2);
    }

    #[test]
    fn unknown_ref_is_empty() {
        let cs = CodeStore::new();
        assert_eq!(cs.fetch(CodeRef(9), 0), None);
        assert_eq!(cs.len_of(CodeRef(9)), 0);
    }
}
