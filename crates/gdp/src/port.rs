//! Hardware port operations: the 432's unified communication and
//! dispatching mechanism.
//!
//! Paper §2: "Interprocess communication is provided by send and receive
//! instructions that pass any access descriptor as a message via a
//! communication port object." The same port objects serve as
//! *dispatching ports* from which processors receive ready processes —
//! the unified model of the companion paper the text cites.
//!
//! Queue representation (see [`i432_arch::PortState`]): the port's access
//! part holds the message area (compact, slots `[0, msg_count)`) followed
//! by the waiting-process area. Blocked senders park their pending
//! message in their process object's `PROC_SLOT_MSG`.
//!
//! Blocking semantics follow Figure 1 exactly: a send to a full port
//! blocks the sending process until a slot frees; a receive on an empty
//! port blocks until a message arrives. Blocked senders and receivers
//! can never coexist at one port.

use crate::fault::{Fault, FaultKind};
use i432_arch::{
    sysobj::{PROC_SLOT_CONTEXT, PROC_SLOT_DISPATCH_PORT, PROC_SLOT_MSG},
    AccessDescriptor, ArchError, ObjectRef, PortDiscipline, PortRing, ProcessStatus, Rights,
    RingEntry, SpaceAccess, SpaceMut, SystemType, WaiterKind,
};
use std::sync::Arc;

/// Outcome of a send operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Handed directly to a waiting receiver (rendezvous).
    Delivered,
    /// Queued in the message area.
    Queued,
    /// The sending process blocked (message parked in its process
    /// object).
    Blocked,
    /// Non-blocking send found the queue full.
    WouldBlock,
}

/// Outcome of a receive operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A message was dequeued.
    Received(AccessDescriptor),
    /// The receiving process blocked at the port.
    Blocked,
    /// Non-blocking receive found no message.
    WouldBlock,
}

// ---------------------------------------------------------------------------
// Ring fast path (see `i432_arch::portring` for the protocol).
// ---------------------------------------------------------------------------

/// Attempts a program-level send on the port's lock-free ring,
/// consulting no shard lock on the port. Returns `None` whenever the
/// ring cannot complete the operation with rendezvous-identical
/// semantics — no ring, fast path disabled, missing SEND rights, a
/// level-rule violation, a frozen or full ring — and the caller must
/// fall back to the locked [`send`], which produces the canonical
/// outcome, fault, and statistics.
///
/// A fast send can only ever succeed while the port is in FAST mode
/// (empty message area, no waiters — the ring is frozen otherwise), the
/// one state where the locked path's answer is unconditionally
/// [`SendOutcome::Queued`].
pub fn fast_send<S: SpaceAccess + ?Sized>(
    space: &mut S,
    port_ad: AccessDescriptor,
    msg: AccessDescriptor,
    key: u64,
) -> Option<SendOutcome> {
    let ring = ring_for(space, port_ad, Rights::SEND)?;
    fast_send_on(space, &ring, port_ad, msg, key)
}

/// Resolves the live ring behind a port descriptor for a fast-path
/// operation: registry lookup plus the `need` rights check on the
/// descriptor in hand. `None` means "take the locked path". This is the
/// (site-independent) work a port-site inline cache memoizes — a hit
/// serves the ring without touching the registry.
pub fn ring_for<S: SpaceAccess + ?Sized>(
    space: &S,
    port_ad: AccessDescriptor,
    need: Rights,
) -> Option<Arc<PortRing>> {
    let ring = space.port_rings()?.lookup(port_ad.obj)?;
    if !port_ad.rights.contains(need) {
        return None;
    }
    Some(ring)
}

/// The send half of [`fast_send`], on an already-resolved ring. The
/// ring must come from [`ring_for`] (or an inline-cache line filled
/// from it) for this port descriptor with SEND rights.
pub fn fast_send_on<S: SpaceAccess + ?Sized>(
    space: &mut S,
    ring: &PortRing,
    port_ad: AccessDescriptor,
    msg: AccessDescriptor,
    key: u64,
) -> Option<SendOutcome> {
    // Level rule (paper §5): the message must outlive the port. The
    // port's level is cached in the ring; the message's comes from its
    // entry — any doubt (dead message, would-be violation) falls back
    // so the locked path faults and bumps `level_faults` exactly once.
    let msg_level = space.level_of(msg.obj).ok()?;
    if !ring.port_level().may_hold(msg_level) {
        return None;
    }
    // The moral equivalent of `queue_push`'s hardware store barrier:
    // shade the message before publication so a concurrent marker
    // cannot miss a reference that lives only in the ring.
    space.shade(msg.obj).ok()?;
    match ring.push(RingEntry { msg, key }) {
        Ok(()) => {
            if i432_trace::ENABLED {
                i432_trace::emit(i432_trace::EventKind::PortSend, port_ad.obj.index.0);
                i432_trace::bump(i432_trace::Counter::PortSends);
                i432_trace::emit(i432_trace::EventKind::PortFastSend, port_ad.obj.index.0);
                i432_trace::bump(i432_trace::Counter::PortFastSends);
            }
            Some(SendOutcome::Queued)
        }
        Err(_) => {
            i432_trace::bump(i432_trace::Counter::PortRingFallbacks);
            None
        }
    }
}

/// Attempts a program-level receive on the port's lock-free ring. Same
/// contract as [`fast_send`]: `None` means "take the locked path"; a
/// `Some` result is bit-identical to what the locked [`receive`] would
/// have returned in this state (FIFO head of a non-empty queue with no
/// waiting senders — the FAST-mode guarantee).
pub fn fast_receive<S: SpaceAccess + ?Sized>(
    space: &mut S,
    port_ad: AccessDescriptor,
) -> Option<RecvOutcome> {
    let ring = ring_for(space, port_ad, Rights::RECEIVE)?;
    fast_receive_on(&ring, port_ad)
}

/// The receive half of [`fast_receive`], on an already-resolved ring
/// (same contract as [`fast_send_on`], with RECEIVE rights).
pub fn fast_receive_on(ring: &PortRing, port_ad: AccessDescriptor) -> Option<RecvOutcome> {
    match ring.pop() {
        Ok(e) => {
            if i432_trace::ENABLED {
                i432_trace::emit(i432_trace::EventKind::PortReceive, port_ad.obj.index.0);
                i432_trace::bump(i432_trace::Counter::PortReceives);
                i432_trace::emit(i432_trace::EventKind::PortFastReceive, port_ad.obj.index.0);
                i432_trace::bump(i432_trace::Counter::PortFastReceives);
            }
            Some(RecvOutcome::Received(e.msg))
        }
        Err(_) => {
            i432_trace::bump(i432_trace::Counter::PortRingFallbacks);
            None
        }
    }
}

/// Locked-path prologue: freezes the port's ring (creating it on first
/// use for FIFO ports) and drains every frozen entry into the message
/// area, so the locked rendezvous below sees the complete queue state.
/// Folds the ring's completed fast-op counts into the port statistics.
/// Returns the ring for [`ring_release`]; `None` when the port has no
/// usable ring (fast path disabled, non-FIFO discipline, or a ring
/// bound by an earlier lifetime of the index — which is retired, its
/// entries having died with that port).
fn ring_acquire<S: SpaceMut + ?Sized>(
    space: &mut S,
    port: ObjectRef,
) -> Result<Option<Arc<PortRing>>, Fault> {
    let Some(reg) = space.port_rings() else {
        return Ok(None);
    };
    if !reg.is_enabled() {
        return Ok(None);
    }
    let reg = Arc::clone(reg);
    if let Some(old) = reg.lookup_index(port.index.0) {
        if old.port() != port {
            old.retire();
            return Ok(None);
        }
    }
    let (discipline, capacity) = {
        let st = space.port(port).map_err(Fault::from)?;
        (st.discipline, st.capacity)
    };
    if discipline != PortDiscipline::Fifo {
        return Ok(None);
    }
    let level = space.entry(port).map_err(Fault::from)?.desc.level;
    let Some(ring) = reg.get_or_create(port, capacity, level) else {
        return Ok(None);
    };
    if ring.port() != port || ring.is_dead() {
        ring.retire();
        return Ok(None);
    }
    let mut drained = Vec::new();
    let depth = ring.freeze_and_drain(|e| drained.push(e));
    for e in drained {
        queue_push(space, port, e.msg, e.key)?;
    }
    let (fast_sends, fast_receives) = ring.take_pending_stats();
    if fast_sends != 0 || fast_receives != 0 {
        let st = space.port_mut(port).map_err(Fault::from)?;
        st.stats.sends += fast_sends;
        st.stats.receives += fast_receives;
    }
    if i432_trace::ENABLED {
        i432_trace::observe(i432_trace::Hist::PortQueueDepth, depth);
        if depth > 0 {
            i432_trace::emit(i432_trace::EventKind::PortRingDrain, port.index.0);
            i432_trace::bump(i432_trace::Counter::PortRingDrains);
        }
    }
    Ok(Some(ring))
}

/// Locked-path epilogue: re-opens the ring iff the port left the
/// operation in FAST mode — empty message area and no waiting
/// processes. In any other state the ring stays frozen and every
/// operation keeps taking the locked path, which is exactly what makes
/// the fast path rendezvous-equivalent (see `i432_arch::portring`).
fn ring_release<S: SpaceMut + ?Sized>(space: &mut S, port: ObjectRef, ring: &PortRing) {
    let fast = match space.port(port) {
        Ok(st) => st.msg_count == 0 && st.wait_count == 0,
        // Port destroyed inside the operation: never reopen.
        Err(_) => false,
    };
    if fast {
        ring.reopen();
    }
}

/// Drains every live ring into its port's message area and leaves all
/// rings frozen — called by runners at quiescence, before digests or
/// final-state inspection, so ring-resident messages are observable in
/// the same place the locked world puts them. Rings whose port died
/// are retired (their messages died with the port, as they would have
/// in the message area).
pub fn flush_rings<S: SpaceMut + ?Sized>(space: &mut S) -> Result<(), Fault> {
    let Some(reg) = space.port_rings() else {
        return Ok(());
    };
    let reg = Arc::clone(reg);
    let mut rings = Vec::new();
    reg.for_each(|r| rings.push(Arc::clone(r)));
    for ring in rings {
        let port = ring.port();
        if ring.is_dead() || space.port(port).is_err() {
            ring.retire();
            continue;
        }
        let mut drained = Vec::new();
        ring.freeze_and_drain(|e| drained.push(e));
        for e in drained {
            queue_push(space, port, e.msg, e.key)?;
        }
        let (fast_sends, fast_receives) = ring.take_pending_stats();
        if fast_sends != 0 || fast_receives != 0 {
            let st = space.port_mut(port).map_err(Fault::from)?;
            st.stats.sends += fast_sends;
            st.stats.receives += fast_receives;
        }
    }
    Ok(())
}

/// Picks the message index to receive next under the port's discipline.
fn pick_index(discipline: PortDiscipline, keys: &[u64], count: u32) -> u32 {
    match discipline {
        PortDiscipline::Fifo => 0,
        PortDiscipline::Priority | PortDiscipline::Deadline => {
            let mut best = 0u32;
            for i in 1..count {
                if keys[i as usize] < keys[best as usize] {
                    best = i;
                }
            }
            best
        }
    }
}

/// Appends a message to the message area (caller has verified space).
fn queue_push<S: SpaceMut + ?Sized>(
    space: &mut S,
    port: ObjectRef,
    msg: AccessDescriptor,
    key: u64,
) -> Result<(), Fault> {
    let idx = {
        let st = space.port(port).map_err(Fault::from)?;
        debug_assert!(st.msg_count < st.capacity);
        st.msg_count
    };
    space
        .store_ad_hw(port, idx, Some(msg))
        .map_err(Fault::from)?;
    let st = space.port_mut(port).map_err(Fault::from)?;
    st.msg_keys[idx as usize] = key;
    st.msg_count += 1;
    Ok(())
}

/// Removes and returns the message at `idx`, compacting the area.
fn queue_remove<S: SpaceMut + ?Sized>(
    space: &mut S,
    port: ObjectRef,
    idx: u32,
) -> Result<AccessDescriptor, Fault> {
    let count = space.port(port).map_err(Fault::from)?.msg_count;
    debug_assert!(idx < count);
    let msg = space
        .load_ad_hw(port, idx)
        .map_err(Fault::from)?
        .ok_or_else(|| Fault::with_detail(FaultKind::NullAccess, "empty message slot"))?;
    // Shift the tail left by one.
    for i in idx..count - 1 {
        let next = space.load_ad_hw(port, i + 1).map_err(Fault::from)?;
        space.store_ad_hw(port, i, next).map_err(Fault::from)?;
    }
    space
        .store_ad_hw(port, count - 1, None)
        .map_err(Fault::from)?;
    let st = space.port_mut(port).map_err(Fault::from)?;
    st.msg_keys
        .copy_within(idx as usize + 1..count as usize, idx as usize);
    st.msg_count -= 1;
    Ok(msg)
}

/// Appends a process to the waiting area.
fn wait_push<S: SpaceMut + ?Sized>(
    space: &mut S,
    port: ObjectRef,
    proc_ref: ObjectRef,
) -> Result<(), Fault> {
    let (cap, wcap, wcount) = {
        let st = space.port(port).map_err(Fault::from)?;
        (st.capacity, st.wait_capacity, st.wait_count)
    };
    if wcount >= wcap {
        return Err(Fault::with_detail(
            FaultKind::QueueOverflow,
            "port waiting area full",
        ));
    }
    let ad = space.mint(proc_ref, Rights::NONE);
    space
        .store_ad_hw(port, cap + wcount, Some(ad))
        .map_err(Fault::from)?;
    space.port_mut(port).map_err(Fault::from)?.wait_count += 1;
    Ok(())
}

/// Pops the longest-waiting process from the waiting area.
fn wait_pop<S: SpaceMut + ?Sized>(
    space: &mut S,
    port: ObjectRef,
) -> Result<Option<ObjectRef>, Fault> {
    let (cap, wcount) = {
        let st = space.port(port).map_err(Fault::from)?;
        (st.capacity, st.wait_count)
    };
    if wcount == 0 {
        return Ok(None);
    }
    let first = space
        .load_ad_hw(port, cap)
        .map_err(Fault::from)?
        .ok_or_else(|| Fault::with_detail(FaultKind::NullAccess, "empty wait slot"))?;
    for i in 0..wcount - 1 {
        let next = space.load_ad_hw(port, cap + i + 1).map_err(Fault::from)?;
        space
            .store_ad_hw(port, cap + i, next)
            .map_err(Fault::from)?;
    }
    space
        .store_ad_hw(port, cap + wcount - 1, None)
        .map_err(Fault::from)?;
    let st = space.port_mut(port).map_err(Fault::from)?;
    st.wait_count -= 1;
    if st.wait_count == 0 {
        st.waiters = WaiterKind::None;
    }
    Ok(Some(first.obj))
}

/// Sends a message through a port.
///
/// * `sender` — the sending process, when the send may block; `None`
///   makes a full queue return [`SendOutcome::WouldBlock`] even if
///   `blocking` (native services and the executive cannot block).
/// * `carrier` — hardware-carrier sends (process delivery to dispatch,
///   scheduler and fault ports) bypass the program-level rights and level
///   checks, exactly as the 432's implicit port operations did.
pub fn send<S: SpaceMut + ?Sized>(
    space: &mut S,
    sender: Option<ObjectRef>,
    port_ad: AccessDescriptor,
    msg: AccessDescriptor,
    key: u64,
    blocking: bool,
    carrier: bool,
) -> Result<SendOutcome, Fault> {
    let port = space
        .expect_type(port_ad, SystemType::Port)
        .map_err(Fault::from)?;
    let ring = ring_acquire(space, port)?;
    let out = send_at(space, port, sender, port_ad, msg, key, blocking, carrier);
    if let Some(ring) = &ring {
        ring_release(space, port, ring);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn send_at<S: SpaceMut + ?Sized>(
    space: &mut S,
    port: ObjectRef,
    sender: Option<ObjectRef>,
    port_ad: AccessDescriptor,
    msg: AccessDescriptor,
    key: u64,
    blocking: bool,
    carrier: bool,
) -> Result<SendOutcome, Fault> {
    if !carrier {
        space.qualify(port_ad, Rights::SEND).map_err(Fault::from)?;
        // Program-level sends obey the lifetime rule: the message must be
        // at least as long-lived as the port (paper §5).
        let port_level = space.entry(port).map_err(Fault::from)?.desc.level;
        let msg_level = space.entry(msg.obj).map_err(Fault::from)?.desc.level;
        if !port_level.may_hold(msg_level) {
            space.stats_mut_of(port).level_faults += 1;
            return Err(Fault::from(ArchError::LevelViolation {
                stored: msg_level,
                container: port_level,
            }));
        }
    }

    if i432_trace::ENABLED {
        // Implicit hardware-carrier operations (dispatch/scheduler/fault
        // delivery) trace as surrogate ops, program-level sends as sends.
        if carrier {
            i432_trace::emit(i432_trace::EventKind::PortSurrogate, port.index.0);
            i432_trace::bump(i432_trace::Counter::PortSurrogates);
        } else {
            i432_trace::emit(i432_trace::EventKind::PortSend, port.index.0);
            i432_trace::bump(i432_trace::Counter::PortSends);
        }
    }

    // Rendezvous with a waiting receiver?
    let has_waiting_receiver = {
        let st = space.port(port).map_err(Fault::from)?;
        st.waiters == WaiterKind::Receivers && st.wait_count > 0
    };
    if has_waiting_receiver {
        let receiver = wait_pop(space, port)?.expect("wait_count > 0");
        deliver_to_receiver(space, receiver, msg)?;
        let st = space.port_mut(port).map_err(Fault::from)?;
        st.stats.sends += 1;
        st.stats.receives += 1;
        make_ready(space, receiver)?;
        return Ok(SendOutcome::Delivered);
    }

    // Queue space available?
    let full = space.port(port).map_err(Fault::from)?.is_full();
    if !full {
        queue_push(space, port, msg, key)?;
        space.port_mut(port).map_err(Fault::from)?.stats.sends += 1;
        return Ok(SendOutcome::Queued);
    }

    // Full: block or bounce.
    let Some(sender) = sender else {
        return Ok(SendOutcome::WouldBlock);
    };
    if !blocking {
        return Ok(SendOutcome::WouldBlock);
    }
    space
        .store_ad_hw(sender, PROC_SLOT_MSG, Some(msg))
        .map_err(Fault::from)?;
    {
        let ps = space.process_mut(sender).map_err(Fault::from)?;
        ps.pending_send_key = key;
        ps.status = ProcessStatus::BlockedSend;
        ps.blocked_port = Some(port);
    }
    wait_push(space, port, sender)?;
    let st = space.port_mut(port).map_err(Fault::from)?;
    st.waiters = WaiterKind::Senders;
    st.stats.blocked_sends += 1;
    Ok(SendOutcome::Blocked)
}

/// Receives a message from a port.
///
/// * `receiver` — the receiving process, when the receive may block;
///   `dst_slot` is the context access slot the message must eventually
///   land in (recorded for rendezvous delivery while blocked).
/// * `carrier` — processor dispatching receives bypass the rights check.
pub fn receive<S: SpaceMut + ?Sized>(
    space: &mut S,
    receiver: Option<(ObjectRef, u32)>,
    port_ad: AccessDescriptor,
    blocking: bool,
    carrier: bool,
) -> Result<RecvOutcome, Fault> {
    let port = space
        .expect_type(port_ad, SystemType::Port)
        .map_err(Fault::from)?;
    let ring = ring_acquire(space, port)?;
    let out = receive_at(space, port, receiver, port_ad, blocking, carrier);
    if let Some(ring) = &ring {
        ring_release(space, port, ring);
    }
    out
}

fn receive_at<S: SpaceMut + ?Sized>(
    space: &mut S,
    port: ObjectRef,
    receiver: Option<(ObjectRef, u32)>,
    port_ad: AccessDescriptor,
    blocking: bool,
    carrier: bool,
) -> Result<RecvOutcome, Fault> {
    if !carrier {
        space
            .qualify(port_ad, Rights::RECEIVE)
            .map_err(Fault::from)?;
    }

    if i432_trace::ENABLED {
        if carrier {
            i432_trace::emit(i432_trace::EventKind::PortSurrogate, port.index.0);
            i432_trace::bump(i432_trace::Counter::PortSurrogates);
        } else {
            i432_trace::emit(i432_trace::EventKind::PortReceive, port.index.0);
            i432_trace::bump(i432_trace::Counter::PortReceives);
        }
    }

    let (count, discipline) = {
        let st = space.port(port).map_err(Fault::from)?;
        (st.msg_count, st.discipline)
    };
    if count > 0 {
        let idx = {
            let st = space.port(port).map_err(Fault::from)?;
            pick_index(discipline, &st.msg_keys, st.msg_count)
        };
        let msg = queue_remove(space, port, idx)?;
        space.port_mut(port).map_err(Fault::from)?.stats.receives += 1;

        // A freed slot may complete a blocked sender.
        let has_waiting_sender = {
            let st = space.port(port).map_err(Fault::from)?;
            st.waiters == WaiterKind::Senders && st.wait_count > 0
        };
        if has_waiting_sender {
            let sender = wait_pop(space, port)?.expect("wait_count > 0");
            let pending = space
                .load_ad_hw(sender, PROC_SLOT_MSG)
                .map_err(Fault::from)?
                .ok_or_else(|| {
                    Fault::with_detail(FaultKind::NullAccess, "blocked sender lost its message")
                })?;
            let key = space.process(sender).map_err(Fault::from)?.pending_send_key;
            space
                .store_ad_hw(sender, PROC_SLOT_MSG, None)
                .map_err(Fault::from)?;
            queue_push(space, port, pending, key)?;
            let st = space.port_mut(port).map_err(Fault::from)?;
            st.stats.sends += 1;
            make_ready(space, sender)?;
        }
        return Ok(RecvOutcome::Received(msg));
    }

    // Empty: block or bounce.
    let Some((receiver, dst_slot)) = receiver else {
        return Ok(RecvOutcome::WouldBlock);
    };
    if !blocking {
        return Ok(RecvOutcome::WouldBlock);
    }
    {
        let ps = space.process_mut(receiver).map_err(Fault::from)?;
        ps.pending_receive_dst = Some(dst_slot);
        ps.status = ProcessStatus::BlockedReceive;
        ps.blocked_port = Some(port);
    }
    wait_push(space, port, receiver)?;
    let st = space.port_mut(port).map_err(Fault::from)?;
    st.waiters = WaiterKind::Receivers;
    st.stats.blocked_receives += 1;
    Ok(RecvOutcome::Blocked)
}

/// Delivers a message straight into a blocked receiver's context slot
/// (rendezvous completion).
fn deliver_to_receiver<S: SpaceMut + ?Sized>(
    space: &mut S,
    receiver: ObjectRef,
    msg: AccessDescriptor,
) -> Result<(), Fault> {
    let dst = {
        let ps = space.process_mut(receiver).map_err(Fault::from)?;
        ps.pending_receive_dst.take().ok_or_else(|| {
            Fault::with_detail(
                FaultKind::NullAccess,
                "waiting receiver has no pending destination",
            )
        })?
    };
    let ctx = space
        .load_ad_hw(receiver, PROC_SLOT_CONTEXT)
        .map_err(Fault::from)?
        .ok_or_else(|| {
            Fault::with_detail(FaultKind::NullAccess, "waiting receiver has no context")
        })?;
    space
        .store_ad_hw(ctx.obj, dst, Some(msg))
        .map_err(Fault::from)?;
    Ok(())
}

/// Updates the queueing key of a message already in a port's message
/// area (identified by the object it designates). Returns `true` when
/// found.
///
/// Schedulers use this to re-key *queued* processes after a rebalance —
/// without it a priority change would only take effect at the next
/// requeue, starving processes parked under a stale key.
pub fn update_queued_key<S: SpaceMut + ?Sized>(
    space: &mut S,
    port: ObjectRef,
    target: ObjectRef,
    key: u64,
) -> Result<bool, Fault> {
    // Drain the ring first so a fast-queued message is re-keyable too.
    // (No release: the walk doesn't change FAST-mode eligibility, and
    // the next send/receive re-opens the ring if the port qualifies.)
    let _ring = ring_acquire(space, port)?;
    let count = space.port(port).map_err(Fault::from)?.msg_count;
    for i in 0..count {
        if let Some(ad) = space.load_ad_hw(port, i).map_err(Fault::from)? {
            if ad.obj == target {
                space.port_mut(port).map_err(Fault::from)?.msg_keys[i as usize] = key;
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Marks a process ready and enqueues it at its dispatching port.
///
/// The queueing key is the process's priority or deadline depending on
/// the dispatching port's discipline — this is how the hardware realizes
/// priority dispatching without any software in the loop.
pub fn make_ready<S: SpaceMut + ?Sized>(space: &mut S, proc_ref: ObjectRef) -> Result<(), Fault> {
    let (timeslice, priority, deadline) = {
        let ps = space.process_mut(proc_ref).map_err(Fault::from)?;
        ps.status = ProcessStatus::Ready;
        ps.slice_remaining = ps.timeslice;
        ps.blocked_port = None;
        ps.timeout_at = 0;
        (ps.timeslice, ps.priority, ps.deadline)
    };
    let _ = timeslice;
    let dispatch = space
        .load_ad_hw(proc_ref, PROC_SLOT_DISPATCH_PORT)
        .map_err(Fault::from)?
        .ok_or_else(|| {
            Fault::with_detail(FaultKind::NullAccess, "process has no dispatching port")
        })?;
    let discipline = {
        let port = space
            .expect_type(dispatch, SystemType::Port)
            .map_err(Fault::from)?;
        space.port(port).map_err(Fault::from)?.discipline
    };
    let key = match discipline {
        PortDiscipline::Fifo => 0,
        PortDiscipline::Priority => priority as u64,
        PortDiscipline::Deadline => deadline,
    };
    let proc_ad = space.mint(proc_ref, Rights::NONE);
    match send(space, None, dispatch, proc_ad, key, false, true)? {
        SendOutcome::Queued | SendOutcome::Delivered => Ok(()),
        SendOutcome::WouldBlock | SendOutcome::Blocked => Err(Fault::with_detail(
            FaultKind::QueueOverflow,
            "dispatching port full",
        )),
    }
}

/// Expires a timed-out blocked receiver: removes it from its port's
/// waiting area and leaves it Faulted with a timeout, ready for fault
/// delivery. Returns `false` when the process was no longer blocked
/// (the rendezvous won the race).
pub fn expire_timeout<S: SpaceMut + ?Sized>(
    space: &mut S,
    proc_ref: ObjectRef,
) -> Result<bool, Fault> {
    let (status, port) = {
        let ps = space.process(proc_ref).map_err(Fault::from)?;
        (ps.status, ps.blocked_port)
    };
    if status != ProcessStatus::BlockedReceive {
        return Ok(false);
    }
    let Some(port) = port else {
        return Ok(false);
    };
    // Remove the process from the waiting area (compact shift).
    let (cap, wcount) = {
        let st = space.port(port).map_err(Fault::from)?;
        (st.capacity, st.wait_count)
    };
    let mut found = false;
    for i in 0..wcount {
        if found {
            let next = space.load_ad_hw(port, cap + i).map_err(Fault::from)?;
            space
                .store_ad_hw(port, cap + i - 1, next)
                .map_err(Fault::from)?;
        } else if let Some(ad) = space.load_ad_hw(port, cap + i).map_err(Fault::from)? {
            if ad.obj == proc_ref {
                found = true;
            }
        }
    }
    if !found {
        return Ok(false);
    }
    space
        .store_ad_hw(port, cap + wcount - 1, None)
        .map_err(Fault::from)?;
    {
        let st = space.port_mut(port).map_err(Fault::from)?;
        st.wait_count -= 1;
        if st.wait_count == 0 {
            st.waiters = WaiterKind::None;
        }
    }
    let ps = space.process_mut(proc_ref).map_err(Fault::from)?;
    ps.status = ProcessStatus::Faulted;
    ps.blocked_port = None;
    ps.timeout_at = 0;
    ps.pending_receive_dst = None;
    ps.fault_code = FaultKind::Timeout.code();
    ps.fault_detail = "receive timed out".into();
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpace, ObjectSpec, ObjectType, PortState, SysState};

    fn space() -> ObjectSpace {
        ObjectSpace::new(64 * 1024, 4096, 1024)
    }

    fn make_port(space: &mut ObjectSpace, cap: u32, disc: PortDiscipline) -> ObjectRef {
        let root = space.root_sro();
        space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: PortState::access_slots(cap, 16),
                    otype: ObjectType::System(SystemType::Port),
                    level: None,
                    sys: SysState::Port(PortState::new(cap, 16, disc)),
                },
            )
            .unwrap()
    }

    fn make_msg(space: &mut ObjectSpace) -> AccessDescriptor {
        let root = space.root_sro();
        let r = space
            .create_object(root, ObjectSpec::generic(8, 0))
            .unwrap();
        space.mint(r, Rights::READ | Rights::WRITE)
    }

    #[test]
    fn fifo_send_receive_order() {
        let mut s = space();
        let port = make_port(&mut s, 4, PortDiscipline::Fifo);
        let pad = s.mint(port, Rights::SEND | Rights::RECEIVE);
        let m1 = make_msg(&mut s);
        let m2 = make_msg(&mut s);
        assert_eq!(
            send(&mut s, None, pad, m1, 0, false, false).unwrap(),
            SendOutcome::Queued
        );
        assert_eq!(
            send(&mut s, None, pad, m2, 0, false, false).unwrap(),
            SendOutcome::Queued
        );
        let r1 = receive(&mut s, None, pad, false, false).unwrap();
        let r2 = receive(&mut s, None, pad, false, false).unwrap();
        assert_eq!(r1, RecvOutcome::Received(m1));
        assert_eq!(r2, RecvOutcome::Received(m2));
        assert_eq!(
            receive(&mut s, None, pad, false, false).unwrap(),
            RecvOutcome::WouldBlock
        );
    }

    #[test]
    fn priority_discipline_orders_by_key() {
        let mut s = space();
        let port = make_port(&mut s, 4, PortDiscipline::Priority);
        let pad = s.mint(port, Rights::SEND | Rights::RECEIVE);
        let low = make_msg(&mut s);
        let high = make_msg(&mut s);
        send(&mut s, None, pad, low, 9, false, false).unwrap();
        send(&mut s, None, pad, high, 1, false, false).unwrap();
        assert_eq!(
            receive(&mut s, None, pad, false, false).unwrap(),
            RecvOutcome::Received(high)
        );
        assert_eq!(
            receive(&mut s, None, pad, false, false).unwrap(),
            RecvOutcome::Received(low)
        );
    }

    #[test]
    fn send_requires_send_rights() {
        let mut s = space();
        let port = make_port(&mut s, 2, PortDiscipline::Fifo);
        let pad = s.mint(port, Rights::RECEIVE);
        let m = make_msg(&mut s);
        let e = send(&mut s, None, pad, m, 0, false, false).unwrap_err();
        assert_eq!(e.kind, FaultKind::Rights);
    }

    #[test]
    fn receive_requires_receive_rights() {
        let mut s = space();
        let port = make_port(&mut s, 2, PortDiscipline::Fifo);
        let pad = s.mint(port, Rights::SEND);
        let e = receive(&mut s, None, pad, false, false).unwrap_err();
        assert_eq!(e.kind, FaultKind::Rights);
    }

    #[test]
    fn send_to_non_port_faults() {
        let mut s = space();
        let root = s.root_sro();
        let not_port = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let pad = s.mint(not_port, Rights::ALL);
        let m = make_msg(&mut s);
        let e = send(&mut s, None, pad, m, 0, false, false).unwrap_err();
        assert_eq!(e.kind, FaultKind::TypeMismatch);
    }

    #[test]
    fn full_port_would_block_without_process() {
        let mut s = space();
        let port = make_port(&mut s, 1, PortDiscipline::Fifo);
        let pad = s.mint(port, Rights::SEND | Rights::RECEIVE);
        let m1 = make_msg(&mut s);
        let m2 = make_msg(&mut s);
        send(&mut s, None, pad, m1, 0, false, false).unwrap();
        assert_eq!(
            send(&mut s, None, pad, m2, 0, true, false).unwrap(),
            SendOutcome::WouldBlock
        );
    }

    #[test]
    fn level_rule_applies_to_program_sends() {
        use i432_arch::Level;
        let mut s = space();
        let port = make_port(&mut s, 2, PortDiscipline::Fifo);
        let pad = s.mint(port, Rights::SEND | Rights::RECEIVE);
        // A local (short-lived) message may not pass through a global
        // port.
        let root = s.root_sro();
        let local = s
            .create_object(
                root,
                ObjectSpec {
                    level: Some(Level(4)),
                    ..ObjectSpec::generic(8, 0)
                },
            )
            .unwrap();
        let msg = s.mint(local, Rights::READ);
        let e = send(&mut s, None, pad, msg, 0, false, false).unwrap_err();
        assert_eq!(e.kind, FaultKind::Level);
        // Carrier sends (hardware process delivery) are exempt.
        assert_eq!(
            send(&mut s, None, pad, msg, 0, false, true).unwrap(),
            SendOutcome::Queued
        );
    }

    #[test]
    fn port_stats_track_traffic() {
        let mut s = space();
        let port = make_port(&mut s, 2, PortDiscipline::Fifo);
        let pad = s.mint(port, Rights::SEND | Rights::RECEIVE);
        let m = make_msg(&mut s);
        send(&mut s, None, pad, m, 0, false, false).unwrap();
        receive(&mut s, None, pad, false, false).unwrap();
        let st = s.port(port).unwrap();
        assert_eq!(st.stats.sends, 1);
        assert_eq!(st.stats.receives, 1);
        assert_eq!(st.stats.blocked_sends, 0);
    }

    #[test]
    fn deadline_discipline_picks_earliest() {
        let mut s = space();
        let port = make_port(&mut s, 4, PortDiscipline::Deadline);
        let pad = s.mint(port, Rights::SEND | Rights::RECEIVE);
        let a = make_msg(&mut s);
        let b = make_msg(&mut s);
        let c = make_msg(&mut s);
        send(&mut s, None, pad, a, 300, false, false).unwrap();
        send(&mut s, None, pad, b, 100, false, false).unwrap();
        send(&mut s, None, pad, c, 200, false, false).unwrap();
        assert_eq!(
            receive(&mut s, None, pad, false, false).unwrap(),
            RecvOutcome::Received(b)
        );
        assert_eq!(
            receive(&mut s, None, pad, false, false).unwrap(),
            RecvOutcome::Received(c)
        );
    }
}

#[cfg(test)]
mod rekey_tests {
    use super::*;
    use i432_arch::{ObjectSpace, ObjectSpec, ObjectType, PortState, SysState};

    #[test]
    fn update_queued_key_reorders_delivery() {
        let mut s = ObjectSpace::new(32 * 1024, 2048, 256);
        let root = s.root_sro();
        let port = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: PortState::access_slots(4, 4),
                    otype: ObjectType::System(SystemType::Port),
                    level: None,
                    sys: SysState::Port(PortState::new(4, 4, PortDiscipline::Priority)),
                },
            )
            .unwrap();
        let pad = s.mint(port, Rights::SEND | Rights::RECEIVE);
        let mk = |s: &mut ObjectSpace| {
            let o = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
            s.mint(o, Rights::READ)
        };
        let a = mk(&mut s);
        let b = mk(&mut s);
        send(&mut s, None, pad, a, 5, false, false).unwrap();
        send(&mut s, None, pad, b, 9, false, false).unwrap();
        // Re-key b below a: it now delivers first.
        assert!(update_queued_key(&mut s, port, b.obj, 1).unwrap());
        assert!(
            !update_queued_key(&mut s, port, root, 0).unwrap(),
            "absent target"
        );
        match receive(&mut s, None, pad, false, false).unwrap() {
            RecvOutcome::Received(m) => assert_eq!(m, b),
            other => panic!("{other:?}"),
        }
    }
}
