//! The instruction interpreter and implicit processor behaviour.
//!
//! [`Gdp::step`] advances one processor by one unit of work: an idle poll,
//! a dispatch, or one instruction of the bound process. Everything the
//! paper describes as *implicit* hardware behaviour happens here — binding
//! ready processes from dispatching ports, time-slice end, delivering
//! faulted processes to their fault ports, and returning blocked
//! processes' processors to the dispatching loop.

use crate::{
    code::CodeStore,
    context::{context_state, create_context, destroy_context, subprogram_of, with_context_state},
    cost::CostModel,
    dispatch::{BlockCache, InlineCache, Site},
    fault::{Fault, FaultKind},
    interconnect::Interconnect,
    isa::{DataDst, DataRef, Instruction},
    native::{NativeCtx, NativeRegistry},
    port::{self, RecvOutcome, SendOutcome},
    process::{current_process, deliver_fault, notify_scheduler, try_dispatch, unbind},
};
use i432_arch::{
    sysobj::{CTX_SLOT_CALLER, CTX_SLOT_SRO, PROC_SLOT_CONTEXT, PROC_SLOT_LOCAL_HEAP},
    AccessDescriptor, CodeBody, ObjectRef, ObjectSpec, ObjectType, PortRing, ProcessStatus,
    ProcessorStatus, Rights, SpaceAccess, SpaceAccessExt, Subprogram, SysState, SystemType,
};
use std::sync::Arc;

/// Everything a processor needs besides its own state.
///
/// `S` is any object-space implementation: the plain [`i432_arch::ObjectSpace`],
/// the deterministic sharded space, or a per-thread
/// [`i432_arch::SpaceAgent`] over a lock-striped shared space. All
/// capability checks stay behind the [`SpaceAccess`] boundary.
pub struct Env<'a, S: SpaceAccess + ?Sized> {
    /// The shared object space.
    pub space: &'a mut S,
    /// The shared code store.
    pub code: &'a CodeStore,
    /// Registered native service bodies.
    pub natives: &'a NativeRegistry,
    /// The memory interconnect (bus contention model).
    pub bus: &'a mut dyn Interconnect,
    /// The cycle cost model.
    pub cost: CostModel,
}

/// What one step of a processor did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEvent {
    /// Polled an empty dispatching port.
    Idle,
    /// Bound a ready process.
    Dispatched(ObjectRef),
    /// Executed one instruction of the bound process.
    Executed {
        /// The process that ran.
        process: ObjectRef,
        /// Cycles charged (including bus waits).
        cycles: u64,
    },
    /// The bound process blocked at a port; the processor is idle again.
    Blocked(ObjectRef),
    /// The bound process exhausted its time slice and was re-queued.
    TimesliceEnd(ObjectRef),
    /// The bound process faulted and was delivered to its fault port (or
    /// terminated if it has none).
    ProcessFaulted {
        /// The faulted process.
        process: ObjectRef,
        /// Fault classification.
        kind: FaultKind,
    },
    /// The bound process finished (root RETURN or HALT).
    ProcessExited(ObjectRef),
    /// A fault occurred that the system may not tolerate (fault at a
    /// forbidden system level, or executive inconsistency): the processor
    /// halted.
    SystemError {
        /// The process involved, if any.
        process: Option<ObjectRef>,
        /// The fault.
        fault: Fault,
    },
    /// The processor is halted; nothing happens.
    Halted,
}

/// Cycle/traffic accumulator for one instruction.
#[derive(Debug, Default, Clone, Copy)]
struct Charge {
    cycles: u64,
    words: u32,
}

impl Charge {
    fn add(&mut self, cycles: u64) {
        self.cycles += cycles;
    }
    fn mem(&mut self, words: u32, cost: &CostModel) {
        self.cycles += words as u64 * cost.mem_word;
        self.words += words;
    }
    fn ot(&mut self, cost: &CostModel) {
        self.cycles += cost.ot_lookup;
        self.words += 2;
    }
    fn ad(&mut self, cost: &CostModel) {
        self.cycles += cost.ad_move;
        self.words += 1;
    }
}

/// Control outcome of one instruction.
enum Ctl {
    /// Advance to the next instruction.
    Next,
    /// Jump to this instruction index.
    Jump(u32),
    /// Control transferred (CALL/RETURN manage the instruction pointers
    /// themselves).
    Switched,
    /// The process blocked at a port. The producer must have fully
    /// committed the block *inside the same atomic section* that parked
    /// the process: ip advanced past the blocking instruction and the
    /// processor unbound. The moment that section's locks drop, a
    /// rendezvous on another processor may legally redispatch the
    /// process — any later touch of its context from this processor
    /// races with its resumed execution (a stale ip here once made a
    /// woken receiver re-execute its RECEIVE and swallow the message).
    Blocked,
    /// The process finished.
    Exited,
}

/// Extra cycles a RECEIVE pays to select among queued messages: FIFO
/// takes the head for free; priority/deadline disciplines scan the keys
/// (2 cycles per queued entry, the hardware's linear selection).
fn queue_scan_cost<S: SpaceAccess + ?Sized>(space: &mut S, port_ad: AccessDescriptor) -> u64 {
    space
        .with_port(port_ad.obj, |p| {
            if p.discipline != i432_arch::PortDiscipline::Fifo {
                2 * p.msg_count as u64
            } else {
                0
            }
        })
        .unwrap_or(0)
}

/// The binding registers of one processor, cached between instructions.
///
/// The real 432 keeps the bound process, current context and instruction
/// pointer in on-chip registers while a process is bound; it only writes
/// them back to the process/context objects at a *binding change*
/// (block, preempt, fault, exit, call, return). This mirror lets the
/// interpreter execute runs of local instructions without consulting the
/// object space for per-step bookkeeping — which, over a lock-striped
/// shared space, means without taking any shard lock.
///
/// Everything here is a pure copy of space state that only this
/// processor mutates while the process stays bound: the instruction
/// pointer and remaining time slice, plus cycle counts accumulated since
/// the last write-back.
#[derive(Debug, Clone, Copy)]
struct BoundState {
    /// The bound process.
    proc_ref: ObjectRef,
    /// Its current (top-of-chain) context.
    ctx: ObjectRef,
    /// The context's interpreted code segment.
    code: i432_arch::CodeRef,
    /// Cached instruction pointer (authoritative while bound).
    ip: u32,
    /// Cached remaining time slice (authoritative while bound).
    slice_remaining: u64,
    /// The processor's bus id.
    cpu_id: u32,
    /// Process cycles accrued since the last write-back.
    pending_proc_cycles: u64,
    /// Processor busy cycles accrued since the last write-back.
    pending_busy: u64,
}

/// Instructions the cached fast path may execute: local data/AD work
/// whose only system-state side effect is the instruction pointer. Every
/// port, call/return, allocation, clock or fault instruction falls back
/// to the fully-locked path.
fn is_fast(instr: &Instruction) -> bool {
    matches!(
        instr,
        Instruction::Mov { .. }
            | Instruction::Alu { .. }
            | Instruction::Jump(_)
            | Instruction::JumpIf { .. }
            | Instruction::Work { .. }
            | Instruction::MoveAd { .. }
            | Instruction::NullAd { .. }
            | Instruction::Restrict { .. }
            | Instruction::LoadAd { .. }
            | Instruction::StoreAd { .. }
    )
}

/// One emulated General Data Processor.
#[derive(Debug, Clone)]
pub struct Gdp {
    /// The processor object this GDP embodies.
    pub cpu: ObjectRef,
    /// Local cycle clock.
    pub clock: u64,
    /// Whether the binding-register cache is consulted (see
    /// [`BoundState`]). Off by default: the deterministic runners keep
    /// every step on the locked path.
    cache_enabled: bool,
    /// Whether dispatch specialization is consulted: the pre-decoded
    /// block cache, superinstruction fusion on the fast path, and the
    /// monomorphic inline caches at call/port sites. Requires (and only
    /// acts with) the binding-register cache.
    fusion_enabled: bool,
    /// Cached binding registers, when a process is bound and cacheable.
    bound: Option<BoundState>,
    /// Pre-decoded code segments with fusion classification.
    blocks: BlockCache,
    /// Monomorphic inline caches for call/port-site qualification.
    ics: InlineCache,
    /// The process last bound through [`Gdp::prime`]; any change
    /// flushes the inline caches.
    last_bound_proc: Option<ObjectRef>,
    /// Previous retired opcode for the pair histogram (`u16::MAX` =
    /// none yet).
    last_op: u16,
}

impl Gdp {
    /// A processor starting at cycle zero.
    pub fn new(cpu: ObjectRef) -> Gdp {
        Gdp {
            cpu,
            clock: 0,
            cache_enabled: false,
            fusion_enabled: false,
            bound: None,
            blocks: BlockCache::new(),
            ics: InlineCache::new(),
            last_bound_proc: None,
            last_op: u16::MAX,
        }
    }

    /// A processor with the binding-register cache enabled: runs of
    /// local instructions execute without touching process/context
    /// objects in the space. Semantically transparent — the conformance
    /// oracle checks cached and uncached runs digest-identically.
    pub fn new_cached(cpu: ObjectRef) -> Gdp {
        Gdp {
            cache_enabled: true,
            ..Gdp::new(cpu)
        }
    }

    /// A processor with the binding-register cache *and* dispatch
    /// specialization enabled: instruction fetch goes through a
    /// pre-decoded block cache, dominant fast-path opcode pairs execute
    /// as fused superinstructions, and call/port-site qualification is
    /// served by epoch-validated monomorphic inline caches. Semantically
    /// transparent — the per-instruction cycle model is charged
    /// identically, and the conformance oracle checks fused and unfused
    /// runs digest-identically.
    pub fn new_fused(cpu: ObjectRef) -> Gdp {
        Gdp {
            fusion_enabled: true,
            ..Gdp::new_cached(cpu)
        }
    }

    /// Whether the binding-register cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Whether dispatch specialization (block cache + fusion + inline
    /// caches) is enabled.
    pub fn fusion_enabled(&self) -> bool {
        self.fusion_enabled
    }

    /// Occupied inline-cache lines (test/introspection hook).
    pub fn ic_occupancy(&self) -> usize {
        self.ics.occupancy()
    }

    /// Decoded code segments held by the block cache (test/introspection
    /// hook).
    pub fn block_cache_occupancy(&self) -> usize {
        self.blocks.occupancy()
    }

    /// Writes the cached binding registers back to the space and drops
    /// them. Must be called before anything else inspects the bound
    /// process's context or accounting (the threaded runner calls it at
    /// loop exit; `step` calls it before every locked-path detour).
    ///
    /// Best-effort by design: a write-back can only fail if the guest
    /// destroyed the bound context or process out from under its own
    /// processor, and in that case the locked path independently raises
    /// the same fault the uncached interpreter would.
    pub fn flush_bound<S: SpaceAccess + ?Sized>(&mut self, space: &mut S) {
        let Some(b) = self.bound.take() else { return };
        let _ = with_context_state(space, b.ctx, |c| c.ip = b.ip);
        let _ = space.with_process_mut(b.proc_ref, |ps| {
            ps.total_cycles += b.pending_proc_cycles;
            ps.slice_remaining = b.slice_remaining;
        });
        let _ = space.with_processor_mut(self.cpu, |p| p.busy_cycles += b.pending_busy);
    }

    /// Fills the binding registers from the space: one burst of locked
    /// reads, after which local instructions run lock-free. Returns
    /// `false` (leaving `bound` empty) whenever the processor is not
    /// running an interpreted process — the locked path handles those.
    fn prime<S: SpaceAccess + ?Sized>(&mut self, env: &mut Env<'_, S>) -> bool {
        let Ok((status, cpu_id)) = env.space.with_processor(self.cpu, |p| (p.status, p.id)) else {
            return false;
        };
        if status != ProcessorStatus::Running {
            return false;
        }
        let Ok(Some(proc_ref)) = current_process(env.space, self.cpu) else {
            return false;
        };
        let Ok(Some(ctx_ad)) = env.space.load_ad_hw(proc_ref, PROC_SLOT_CONTEXT) else {
            return false;
        };
        let ctx = ctx_ad.obj;
        let Ok(cstate) = context_state(env.space, ctx) else {
            return false;
        };
        let CodeBody::Interpreted(code) = cstate.body else {
            return false;
        };
        let Ok((pstatus, slice_remaining)) = env
            .space
            .with_process(proc_ref, |ps| (ps.status, ps.slice_remaining))
        else {
            return false;
        };
        if pstatus != ProcessStatus::Running {
            return false;
        }
        if self.fusion_enabled && self.last_bound_proc != Some(proc_ref) {
            // Rebinding the processor to a different process flushes the
            // inline caches. Call/Return context switches *within* one
            // process keep their lines — epoch + exact-descriptor
            // validation already covers cross-object staleness; the
            // whole-cache flush is the belt-and-suspenders hygiene the
            // qualcache also keeps at its trust boundary.
            if self.last_bound_proc.is_some() && self.ics.occupancy() > 0 {
                self.ics.clear();
                i432_trace::bump(i432_trace::Counter::IcFlushes);
            }
            self.last_bound_proc = Some(proc_ref);
        }
        self.bound = Some(BoundState {
            proc_ref,
            ctx,
            code,
            ip: cstate.ip,
            slice_remaining,
            cpu_id,
            pending_proc_cycles: 0,
            pending_busy: 0,
        });
        true
    }

    /// Executes one instruction through the binding-register cache, or
    /// returns `None` (with the registers flushed) when this step needs
    /// the locked path. Exactly mirrors the locked path's charging and
    /// control flow for the instructions in [`is_fast`].
    fn try_fast_step<S: SpaceAccess + ?Sized>(
        &mut self,
        env: &mut Env<'_, S>,
    ) -> Option<StepEvent> {
        if self.bound.is_none() && !self.prime(env) {
            return None;
        }
        let mut b = self.bound.expect("primed above");
        let (instr, partner) = if self.fusion_enabled {
            // Pre-decoded path: the block cache revalidates against the
            // store's version, so a patched body is observed at the
            // next step, exactly like a raw fetch.
            match self.blocks.resolve(env.code, b.code, b.ip) {
                Some(pair) => pair,
                None => {
                    // Out-of-segment ip: let the locked path raise BadIp.
                    self.flush_bound(env.space);
                    return None;
                }
            }
        } else {
            match env.code.fetch(b.code, b.ip) {
                Some(i) => (i, None),
                None => {
                    self.flush_bound(env.space);
                    return None;
                }
            }
        };
        if !is_fast(&instr) {
            self.flush_bound(env.space);
            return None;
        }
        debug_assert!(
            partner.as_ref().is_none_or(is_fast),
            "fusion admits only fast partners"
        );

        // Execute the instruction — and, for a fused superinstruction,
        // its partner — with bit-identical per-instruction accounting:
        // each half gets its own decode charge, bus access, clock tick
        // and slice debit, in the same order the unfused stepper would
        // apply them. The win is dispatch overhead (one prime/fetch/
        // bound-commit round for two instructions), not cycle-model
        // shortcuts.
        let mut step_cycles = 0u64;
        let mut on_partner = false;
        let mut pending = Some(instr);
        while let Some(cur) = pending.take() {
            i432_trace::set_context(b.cpu_id as u16, self.clock);
            let mut charge = Charge::default();
            charge.add(env.cost.decode);
            charge.words += 1;
            let site = Some((b.code, b.ip));
            let ctl = match self.exec_instr(env, b.proc_ref, b.ctx, cur, site, &mut charge) {
                Ok(ctl) => ctl,
                Err(fault) => {
                    // Like the locked path, a faulting instruction
                    // charges nothing; ip still names the faulting
                    // instruction. When the *second* half of a fused
                    // pair faults, the first half was already committed
                    // to `self.bound` below, so the fault reports the
                    // original instruction boundary, not the pair head.
                    self.flush_bound(env.space);
                    return Some(self.process_fault(env, b.proc_ref, fault));
                }
            };
            i432_trace::emit(i432_trace::EventKind::InstrExec, b.proc_ref.index.0);
            i432_trace::bump(i432_trace::Counter::InstrExecuted);
            if i432_trace::ENABLED {
                let op = cur.opcode();
                if self.last_op != u16::MAX {
                    i432_trace::record_pair(self.last_op as u8, op);
                }
                self.last_op = op as u16;
            }
            if on_partner {
                i432_trace::bump(i432_trace::Counter::FusionHits);
            }
            let wait = env.bus.access(b.cpu_id, self.clock, charge.words);
            let total = charge.cycles + wait;
            self.clock += total;
            b.pending_busy += total;
            b.pending_proc_cycles += total;
            b.slice_remaining = b.slice_remaining.saturating_sub(total);
            step_cycles += total;
            match ctl {
                Ctl::Next => b.ip += 1,
                Ctl::Jump(t) => b.ip = t,
                // is_fast admits no blocking, switching or exiting
                // instructions.
                _ => unreachable!("fast instruction yielded non-local control"),
            }
            self.bound = Some(b);
            if b.slice_remaining == 0 {
                // Slice expired: the partner (if any) does not execute
                // this step — exactly where the unfused schedule would
                // preempt between the two instructions.
                self.flush_bound(env.space);
                return Some(match self.maybe_preempt(env, b.proc_ref, total) {
                    Ok(ev) => ev,
                    Err(fault) => self.process_fault(env, b.proc_ref, fault),
                });
            }
            if !on_partner {
                if let Some(p) = partner {
                    // The pair head is linear (analyze() admits only
                    // fall-through leaders), so `b.ip` now names the
                    // partner.
                    pending = Some(p);
                    on_partner = true;
                }
            }
        }
        Some(StepEvent::Executed {
            process: b.proc_ref,
            cycles: step_cycles,
        })
    }

    /// Advances this processor by one unit of work.
    pub fn step<S: SpaceAccess + ?Sized>(&mut self, env: &mut Env<'_, S>) -> StepEvent {
        if self.cache_enabled {
            if let Some(ev) = self.try_fast_step(env) {
                return ev;
            }
            // Binding registers are flushed; take the locked path.
            debug_assert!(self.bound.is_none());
        }
        let status = match env.space.with_processor(self.cpu, |p| p.status) {
            Ok(status) => status,
            Err(e) => {
                return StepEvent::SystemError {
                    process: None,
                    fault: e.into(),
                }
            }
        };
        if status == ProcessorStatus::Halted {
            return StepEvent::Halted;
        }

        // No process bound: dispatch or idle.
        let proc_ref = match current_process(env.space, self.cpu) {
            Ok(Some(p)) => p,
            Ok(None) => {
                return match env.space.atomically(|sm| try_dispatch(sm, self.cpu)) {
                    Ok(Some(p)) => {
                        self.tick(env, env.cost.dispatch_fixed, true);
                        if i432_trace::ENABLED {
                            let id = env.space.with_processor(self.cpu, |pr| pr.id).unwrap_or(0);
                            i432_trace::set_context(id as u16, self.clock);
                            i432_trace::emit(i432_trace::EventKind::Dispatch, p.index.0);
                            i432_trace::bump(i432_trace::Counter::Dispatches);
                        }
                        StepEvent::Dispatched(p)
                    }
                    Ok(None) => {
                        self.tick(env, env.cost.idle_poll, false);
                        StepEvent::Idle
                    }
                    Err(fault) => self.system_error(env, None, fault),
                };
            }
            Err(fault) => return self.system_error(env, None, fault),
        };

        match self.run_one(env, proc_ref) {
            Ok(ev) => ev,
            Err(fault) => self.process_fault(env, proc_ref, fault),
        }
    }

    /// Advances the local clock and processor accounting.
    fn tick<S: SpaceAccess + ?Sized>(&mut self, env: &mut Env<'_, S>, cycles: u64, busy: bool) {
        self.clock += cycles;
        let _ = env.space.with_processor_mut(self.cpu, |p| {
            if busy {
                p.busy_cycles += cycles;
            } else {
                p.idle_cycles += cycles;
            }
        });
    }

    fn system_error<S: SpaceAccess + ?Sized>(
        &mut self,
        env: &mut Env<'_, S>,
        process: Option<ObjectRef>,
        fault: Fault,
    ) -> StepEvent {
        let _ = env
            .space
            .with_processor_mut(self.cpu, |p| p.status = ProcessorStatus::Halted);
        StepEvent::SystemError { process, fault }
    }

    /// Executes one instruction of the bound process.
    fn run_one<S: SpaceAccess + ?Sized>(
        &mut self,
        env: &mut Env<'_, S>,
        proc_ref: ObjectRef,
    ) -> Result<StepEvent, Fault> {
        let ctx = env
            .space
            .load_ad_hw(proc_ref, PROC_SLOT_CONTEXT)
            .map_err(Fault::from)?
            .ok_or_else(|| Fault::with_detail(FaultKind::NullAccess, "process has no context"))?
            .obj;
        let cstate = context_state(env.space, ctx)?;
        if i432_trace::ENABLED {
            let id = env.space.with_processor(self.cpu, |p| p.id).unwrap_or(0);
            i432_trace::set_context(id as u16, self.clock);
        }
        let mut charge = Charge::default();
        charge.add(env.cost.decode);
        charge.words += 1;

        let ctl = match cstate.body {
            CodeBody::Interpreted(code_ref) => {
                let Some(instr) = env.code.fetch(code_ref, cstate.ip) else {
                    return Err(Fault::with_detail(
                        FaultKind::BadIp,
                        format!("ip {} outside instruction segment", cstate.ip),
                    ));
                };
                let site = Some((code_ref, cstate.ip));
                let ctl = self.exec_instr(env, proc_ref, ctx, instr, site, &mut charge)?;
                if i432_trace::ENABLED {
                    let op = instr.opcode();
                    if self.last_op != u16::MAX {
                        i432_trace::record_pair(self.last_op as u8, op);
                    }
                    self.last_op = op as u16;
                }
                ctl
            }
            CodeBody::Native(id) => {
                // A process whose root body is native: run it to
                // completion in one step, then exit. Native bodies see
                // the whole space at once (indivisible section).
                let natives = env.natives;
                let (result, ncycles) = env.space.atomically(|sm| {
                    let mut ncx = NativeCtx {
                        space: sm,
                        process: proc_ref,
                        context: ctx,
                        cycles: 0,
                    };
                    let r = natives.invoke(id, &mut ncx);
                    (r, ncx.cycles)
                });
                charge.add(ncycles);
                result?;
                Ctl::Exited
            }
        };

        i432_trace::emit(i432_trace::EventKind::InstrExec, proc_ref.index.0);
        i432_trace::bump(i432_trace::Counter::InstrExecuted);

        // Bus contention and accounting.
        let cpu_id = env
            .space
            .with_processor(self.cpu, |p| p.id)
            .map_err(Fault::from)?;
        let wait = env.bus.access(cpu_id, self.clock, charge.words);
        let total = charge.cycles + wait;
        self.tick(env, total, true);
        env.space
            .with_process_mut(proc_ref, |ps| {
                ps.total_cycles += total;
                ps.slice_remaining = ps.slice_remaining.saturating_sub(total);
            })
            .map_err(Fault::from)?;

        match ctl {
            Ctl::Next => {
                with_context_state(env.space, ctx, |c| c.ip += 1)?;
                self.maybe_preempt(env, proc_ref, total)
            }
            Ctl::Jump(t) => {
                with_context_state(env.space, ctx, |c| c.ip = t)?;
                self.maybe_preempt(env, proc_ref, total)
            }
            Ctl::Switched => self.maybe_preempt(env, proc_ref, total),
            Ctl::Blocked => {
                // ip and processor binding were already committed inside
                // the blocking instruction's atomic section (see the
                // Ctl::Blocked contract) — the process may be running on
                // another processor by now, so only report.
                i432_trace::emit(i432_trace::EventKind::ProcBlock, proc_ref.index.0);
                i432_trace::bump(i432_trace::Counter::ProcBlocks);
                Ok(StepEvent::Blocked(proc_ref))
            }
            Ctl::Exited => {
                self.exit_process(env, proc_ref)?;
                i432_trace::emit(i432_trace::EventKind::ProcExit, proc_ref.index.0);
                i432_trace::bump(i432_trace::Counter::ProcExits);
                Ok(StepEvent::ProcessExited(proc_ref))
            }
        }
    }

    /// Requeues the process at its dispatching port if its slice expired.
    fn maybe_preempt<S: SpaceAccess + ?Sized>(
        &mut self,
        env: &mut Env<'_, S>,
        proc_ref: ObjectRef,
        cycles: u64,
    ) -> Result<StepEvent, Fault> {
        let expired = env
            .space
            .with_process(proc_ref, |ps| {
                ps.slice_remaining == 0 && ps.status == ProcessStatus::Running
            })
            .map_err(Fault::from)?;
        if expired {
            env.space.atomically(|sm| port::make_ready(sm, proc_ref))?;
            unbind(env.space, self.cpu)?;
            return Ok(StepEvent::TimesliceEnd(proc_ref));
        }
        Ok(StepEvent::Executed {
            process: proc_ref,
            cycles,
        })
    }

    /// Terminates the process: tears down its context chain, notifies its
    /// scheduler, and idles the processor.
    fn exit_process<S: SpaceAccess + ?Sized>(
        &mut self,
        env: &mut Env<'_, S>,
        proc_ref: ObjectRef,
    ) -> Result<(), Fault> {
        // Destroy the context chain (implicit hardware cleanup; any local
        // heaps die with their SROs via the same path at RETURNs — a HALT
        // deep in a call chain reclaims the whole chain here).
        let mut ctx = env
            .space
            .load_ad_hw(proc_ref, PROC_SLOT_CONTEXT)
            .map_err(Fault::from)?
            .map(|ad| ad.obj);
        env.space
            .store_ad_hw(proc_ref, PROC_SLOT_CONTEXT, None)
            .map_err(Fault::from)?;
        while let Some(c) = ctx {
            let caller = env
                .space
                .load_ad_hw(c, CTX_SLOT_CALLER)
                .ok()
                .flatten()
                .map(|ad| ad.obj);
            let _ = destroy_context(env.space, c);
            ctx = caller;
        }
        if let Some(lh) = env
            .space
            .load_ad_hw(proc_ref, PROC_SLOT_LOCAL_HEAP)
            .map_err(Fault::from)?
        {
            let _ = env.space.bulk_destroy_sro(lh.obj);
            env.space
                .store_ad_hw(proc_ref, PROC_SLOT_LOCAL_HEAP, None)
                .map_err(Fault::from)?;
        }
        env.space
            .with_process_mut(proc_ref, |ps| ps.status = ProcessStatus::Terminated)
            .map_err(Fault::from)?;
        let _ = env.space.atomically(|sm| notify_scheduler(sm, proc_ref));
        unbind(env.space, self.cpu)?;
        Ok(())
    }

    /// Handles a process-level fault: checks the system-level permission
    /// tiers of paper §7.3, records the fault, and delivers the process to
    /// its fault port.
    fn process_fault<S: SpaceAccess + ?Sized>(
        &mut self,
        env: &mut Env<'_, S>,
        proc_ref: ObjectRef,
        fault: Fault,
    ) -> StepEvent {
        let sys_level = env
            .space
            .with_process(proc_ref, |p| p.sys_level)
            .unwrap_or(3);
        if !fault.kind.permitted_at(sys_level) {
            return self.system_error(env, Some(proc_ref), fault);
        }
        self.tick(env, env.cost.fault_delivery, true);
        i432_trace::emit(i432_trace::EventKind::ProcFault, proc_ref.index.0);
        i432_trace::bump(i432_trace::Counter::ProcFaults);
        let code = fault.kind.code();
        let detail = fault.to_string();
        let aux = fault.aux;
        let _ = env.space.with_process_mut(proc_ref, |ps| {
            ps.status = ProcessStatus::Faulted;
            ps.fault_code = code;
            ps.fault_detail = detail;
            ps.fault_aux = aux;
        });
        match env.space.atomically(|sm| deliver_fault(sm, proc_ref)) {
            Ok(_) => {}
            Err(f) => return self.system_error(env, Some(proc_ref), f),
        }
        if let Err(f) = unbind(env.space, self.cpu) {
            return self.system_error(env, Some(proc_ref), f);
        }
        StepEvent::ProcessFaulted {
            process: proc_ref,
            kind: fault.kind,
        }
    }

    // -- Operand helpers --------------------------------------------------------

    fn read_ref<S: SpaceAccess + ?Sized>(
        &self,
        env: &mut Env<'_, S>,
        ctx_ad: AccessDescriptor,
        r: DataRef,
        charge: &mut Charge,
    ) -> Result<u64, Fault> {
        match r {
            DataRef::Imm(v) => Ok(v),
            DataRef::Local(off) => {
                charge.mem(2, &env.cost);
                env.space.read_u64(ctx_ad, off).map_err(Fault::from)
            }
            DataRef::Field(slot, off) => {
                charge.ot(&env.cost);
                charge.mem(2, &env.cost);
                let obj = env
                    .space
                    .load_ad_required(ctx_ad, slot as u32)
                    .map_err(Fault::from)?;
                env.space.read_u64(obj, off).map_err(Fault::from)
            }
        }
    }

    fn write_dst<S: SpaceAccess + ?Sized>(
        &self,
        env: &mut Env<'_, S>,
        ctx_ad: AccessDescriptor,
        d: DataDst,
        v: u64,
        charge: &mut Charge,
    ) -> Result<(), Fault> {
        match d {
            DataDst::Local(off) => {
                charge.mem(2, &env.cost);
                env.space.write_u64(ctx_ad, off, v).map_err(Fault::from)
            }
            DataDst::Field(slot, off) => {
                charge.ot(&env.cost);
                charge.mem(2, &env.cost);
                let obj = env
                    .space
                    .load_ad_required(ctx_ad, slot as u32)
                    .map_err(Fault::from)?;
                env.space.write_u64(obj, off, v).map_err(Fault::from)
            }
        }
    }

    // -- The instruction dispatch ---------------------------------------------------

    #[allow(clippy::too_many_lines)]
    /// Resolves the ring behind a port descriptor for a fast-path
    /// operation, consulting the port-site inline cache when dispatch
    /// specialization is on. A hit serves the ring without a registry
    /// lookup; the rights check on the descriptor in hand is repeated
    /// either way (it guards against a site whose instruction was
    /// patched to need different rights). The shard epoch is read
    /// *before* the lookup, so a line filled while the port mutates
    /// concurrently can only be invalid, never stale-live.
    fn port_ring_ic<S: SpaceAccess + ?Sized>(
        &mut self,
        space: &S,
        site: Option<Site>,
        port_ad: AccessDescriptor,
        need: Rights,
    ) -> Option<Arc<PortRing>> {
        let Some(s) = site.filter(|_| self.fusion_enabled) else {
            return port::ring_for(space, port_ad, need);
        };
        let epoch = space.qual_epoch(port_ad.obj);
        if let Some(ring) = self.ics.probe_port(s, port_ad, epoch) {
            if port_ad.rights.contains(need) {
                i432_trace::bump(i432_trace::Counter::IcHits);
                return Some(ring);
            }
            return None;
        }
        let ring = port::ring_for(space, port_ad, need)?;
        if let Some(e) = epoch {
            i432_trace::bump(i432_trace::Counter::IcMisses);
            self.ics.fill_port(s, port_ad, e, Arc::clone(&ring));
        }
        Some(ring)
    }

    fn exec_instr<S: SpaceAccess + ?Sized>(
        &mut self,
        env: &mut Env<'_, S>,
        proc_ref: ObjectRef,
        ctx: ObjectRef,
        instr: Instruction,
        site: Option<Site>,
        charge: &mut Charge,
    ) -> Result<Ctl, Fault> {
        let ctx_ad = env.space.mint(ctx, Rights::READ | Rights::WRITE);
        match instr {
            Instruction::Mov { src, dst } => {
                let v = self.read_ref(env, ctx_ad, src, charge)?;
                self.write_dst(env, ctx_ad, dst, v, charge)?;
                Ok(Ctl::Next)
            }
            Instruction::Alu { op, a, b, dst } => {
                charge.add(env.cost.alu);
                let av = self.read_ref(env, ctx_ad, a, charge)?;
                let bv = self.read_ref(env, ctx_ad, b, charge)?;
                let v = op
                    .apply(av, bv)
                    .ok_or_else(|| Fault::new(FaultKind::DivideByZero))?;
                self.write_dst(env, ctx_ad, dst, v, charge)?;
                Ok(Ctl::Next)
            }
            Instruction::Jump(t) => {
                charge.add(env.cost.branch);
                Ok(Ctl::Jump(t))
            }
            Instruction::JumpIf { cond, when, target } => {
                charge.add(env.cost.branch);
                let c = self.read_ref(env, ctx_ad, cond, charge)?;
                if (c != 0) == when {
                    Ok(Ctl::Jump(target))
                } else {
                    Ok(Ctl::Next)
                }
            }
            Instruction::MoveAd { src, dst } => {
                charge.ad(&env.cost);
                let ad = env.space.load_ad(ctx_ad, src as u32).map_err(Fault::from)?;
                env.space
                    .store_ad(ctx_ad, dst as u32, ad)
                    .map_err(Fault::from)?;
                Ok(Ctl::Next)
            }
            Instruction::LoadAd { obj, index, dst } => {
                charge.ot(&env.cost);
                charge.ad(&env.cost);
                let container = env
                    .space
                    .load_ad_required(ctx_ad, obj as u32)
                    .map_err(Fault::from)?;
                let idx = self.read_ref(env, ctx_ad, index, charge)? as u32;
                let ad = env.space.load_ad(container, idx).map_err(Fault::from)?;
                env.space
                    .store_ad(ctx_ad, dst as u32, ad)
                    .map_err(Fault::from)?;
                Ok(Ctl::Next)
            }
            Instruction::StoreAd { src, obj, index } => {
                charge.ot(&env.cost);
                charge.ad(&env.cost);
                let container = env
                    .space
                    .load_ad_required(ctx_ad, obj as u32)
                    .map_err(Fault::from)?;
                let idx = self.read_ref(env, ctx_ad, index, charge)? as u32;
                let ad = env.space.load_ad(ctx_ad, src as u32).map_err(Fault::from)?;
                env.space
                    .store_ad(container, idx, ad)
                    .map_err(Fault::from)?;
                Ok(Ctl::Next)
            }
            Instruction::NullAd { dst } => {
                charge.ad(&env.cost);
                env.space
                    .store_ad(ctx_ad, dst as u32, None)
                    .map_err(Fault::from)?;
                Ok(Ctl::Next)
            }
            Instruction::Restrict { slot, keep } => {
                charge.ad(&env.cost);
                let ad = env
                    .space
                    .load_ad_required(ctx_ad, slot as u32)
                    .map_err(Fault::from)?;
                env.space
                    .store_ad(ctx_ad, slot as u32, Some(ad.restricted(keep)))
                    .map_err(Fault::from)?;
                Ok(Ctl::Next)
            }
            Instruction::CreateObject {
                sro,
                data_len,
                access_len,
                dst,
            } => {
                let sro_ad = env
                    .space
                    .load_ad_required(ctx_ad, sro as u32)
                    .map_err(Fault::from)?;
                env.space
                    .qualify(sro_ad, Rights::ALLOCATE)
                    .map_err(Fault::from)?;
                let dl = self.read_ref(env, ctx_ad, data_len, charge)? as u32;
                let al = self.read_ref(env, ctx_ad, access_len, charge)? as u32;
                charge.add(env.cost.create_total(dl, al));
                charge.words += (dl / 4 + al) / 2;
                let new = env
                    .space
                    .create_object(sro_ad.obj, ObjectSpec::generic(dl, al))
                    .map_err(Fault::from)?;
                let new_ad = env.space.mint(new, Rights::ALL);
                env.space
                    .store_ad(ctx_ad, dst as u32, Some(new_ad))
                    .map_err(Fault::from)?;
                Ok(Ctl::Next)
            }
            Instruction::CreateTypedObject {
                sro,
                tdo,
                data_len,
                access_len,
                dst,
            } => {
                charge.ot(&env.cost);
                let sro_ad = env
                    .space
                    .load_ad_required(ctx_ad, sro as u32)
                    .map_err(Fault::from)?;
                env.space
                    .qualify(sro_ad, Rights::ALLOCATE)
                    .map_err(Fault::from)?;
                let tdo_ad = env
                    .space
                    .load_ad_required(ctx_ad, tdo as u32)
                    .map_err(Fault::from)?;
                env.space
                    .expect_type(tdo_ad, SystemType::TypeDefinition)
                    .map_err(Fault::from)?;
                env.space
                    .qualify(tdo_ad, Rights::CREATE_INSTANCE)
                    .map_err(Fault::from)?;
                let dl = self.read_ref(env, ctx_ad, data_len, charge)? as u32;
                let al = self.read_ref(env, ctx_ad, access_len, charge)? as u32;
                charge.add(env.cost.create_total(dl, al));
                let new = env
                    .space
                    .create_object(
                        sro_ad.obj,
                        ObjectSpec {
                            data_len: dl,
                            access_len: al,
                            otype: ObjectType::User(tdo_ad.obj),
                            level: None,
                            sys: SysState::Generic,
                        },
                    )
                    .map_err(Fault::from)?;
                env.space
                    .with_tdo_mut(tdo_ad.obj, |t| t.instances_created += 1)
                    .map_err(Fault::from)?;
                let new_ad = env.space.mint(new, Rights::ALL);
                env.space
                    .store_ad(ctx_ad, dst as u32, Some(new_ad))
                    .map_err(Fault::from)?;
                Ok(Ctl::Next)
            }
            Instruction::Amplify { slot, tdo, add } => {
                charge.ot(&env.cost);
                charge.ot(&env.cost);
                charge.ad(&env.cost);
                let tdo_ad = env
                    .space
                    .load_ad_required(ctx_ad, tdo as u32)
                    .map_err(Fault::from)?;
                env.space
                    .expect_type(tdo_ad, SystemType::TypeDefinition)
                    .map_err(Fault::from)?;
                env.space
                    .qualify(tdo_ad, Rights::AMPLIFY)
                    .map_err(Fault::from)?;
                let target = env
                    .space
                    .load_ad_required(ctx_ad, slot as u32)
                    .map_err(Fault::from)?;
                let otype = env.space.otype_of(target.obj).map_err(Fault::from)?;
                if otype.user_tdo() != Some(tdo_ad.obj) {
                    return Err(Fault::with_detail(
                        FaultKind::TypeMismatch,
                        "amplify: object is not an instance of the presented type",
                    ));
                }
                let amplified = AccessDescriptor::new(target.obj, target.rights.union(add));
                env.space
                    .store_ad(ctx_ad, slot as u32, Some(amplified))
                    .map_err(Fault::from)?;
                Ok(Ctl::Next)
            }
            Instruction::Call {
                domain,
                subprogram,
                arg,
                ret_ad,
                ret_val,
            } => self.exec_call(
                env, proc_ref, ctx, domain, subprogram, arg, ret_ad, ret_val, site, charge,
            ),
            Instruction::Return { ad, value } => {
                self.exec_return(env, proc_ref, ctx, ad, value, charge)
            }
            Instruction::Send { port: p, msg, key } => {
                charge.ot(&env.cost);
                charge.add(env.cost.send_fixed);
                let port_ad = env
                    .space
                    .load_ad_required(ctx_ad, p as u32)
                    .map_err(Fault::from)?;
                let msg_ad = env
                    .space
                    .load_ad_required(ctx_ad, msg as u32)
                    .map_err(Fault::from)?;
                let k = self.read_ref(env, ctx_ad, key, charge)?;
                // Ring fast path: a successful fast send is exactly the
                // locked path's Queued outcome, with no shard lock
                // taken. Any refusal falls through to the rendezvous.
                // The port-site inline cache short-circuits the ring
                // lookup when dispatch specialization is on.
                let ring = self.port_ring_ic(env.space, site, port_ad, Rights::SEND);
                if let Some(ring) = ring {
                    if port::fast_send_on(env.space, &ring, port_ad, msg_ad, k).is_some() {
                        return Ok(Ctl::Next);
                    }
                }
                let cpu = self.cpu;
                match env.space.atomically(|sm| -> Result<SendOutcome, Fault> {
                    match port::send(sm, Some(proc_ref), port_ad, msg_ad, k, true, false)? {
                        SendOutcome::Blocked => {
                            // Commit the block before the shard locks
                            // drop: a rendezvous on another processor
                            // may redispatch this process immediately,
                            // so ip must already point past the SEND
                            // and the processor must be unbound.
                            with_context_state(sm, ctx, |c| c.ip += 1)?;
                            unbind(sm, cpu)?;
                            Ok(SendOutcome::Blocked)
                        }
                        other => Ok(other),
                    }
                })? {
                    SendOutcome::Blocked => Ok(Ctl::Blocked),
                    _ => Ok(Ctl::Next),
                }
            }
            Instruction::CondSend {
                port: p,
                msg,
                key,
                done,
            } => {
                charge.ot(&env.cost);
                charge.add(env.cost.send_fixed);
                let port_ad = env
                    .space
                    .load_ad_required(ctx_ad, p as u32)
                    .map_err(Fault::from)?;
                let msg_ad = env
                    .space
                    .load_ad_required(ctx_ad, msg as u32)
                    .map_err(Fault::from)?;
                let k = self.read_ref(env, ctx_ad, key, charge)?;
                // Ring fast path (success == Queued, i.e. "sent").
                let ok = if port::fast_send(env.space, port_ad, msg_ad, k).is_some() {
                    1
                } else {
                    match env.space.atomically(|sm| {
                        port::send(sm, Some(proc_ref), port_ad, msg_ad, k, false, false)
                    })? {
                        SendOutcome::WouldBlock => 0,
                        _ => 1,
                    }
                };
                self.write_dst(env, ctx_ad, done, ok, charge)?;
                Ok(Ctl::Next)
            }
            Instruction::Receive { port: p, dst } => {
                charge.ot(&env.cost);
                charge.add(env.cost.recv_fixed);
                let port_ad = env
                    .space
                    .load_ad_required(ctx_ad, p as u32)
                    .map_err(Fault::from)?;
                // Ring fast path: a fast pop is the locked path's FIFO
                // dequeue, delivered to the same context slot. The
                // port-site inline cache short-circuits the ring lookup;
                // when a ring exists the port is FIFO by construction,
                // so the queue-scan cost the locked read would report is
                // exactly zero and the locked read itself is skipped.
                let ring = self.port_ring_ic(env.space, site, port_ad, Rights::RECEIVE);
                match &ring {
                    Some(ring) => {
                        if let Some(RecvOutcome::Received(msg)) =
                            port::fast_receive_on(ring, port_ad)
                        {
                            env.space
                                .store_ad(ctx_ad, dst as u32, Some(msg))
                                .map_err(Fault::from)?;
                            return Ok(Ctl::Next);
                        }
                    }
                    None => charge.add(queue_scan_cost(env.space, port_ad)),
                }
                let cpu = self.cpu;
                match env.space.atomically(|sm| -> Result<RecvOutcome, Fault> {
                    match port::receive(sm, Some((proc_ref, dst as u32)), port_ad, true, false)? {
                        RecvOutcome::Blocked => {
                            // Commit the block before the shard locks
                            // drop (see the SEND arm): a sender's
                            // rendezvous may redispatch this process
                            // immediately, and a stale ip would make it
                            // re-execute the RECEIVE and swallow the
                            // delivered message.
                            with_context_state(sm, ctx, |c| c.ip += 1)?;
                            unbind(sm, cpu)?;
                            Ok(RecvOutcome::Blocked)
                        }
                        other => Ok(other),
                    }
                })? {
                    RecvOutcome::Received(msg) => {
                        env.space
                            .store_ad(ctx_ad, dst as u32, Some(msg))
                            .map_err(Fault::from)?;
                        Ok(Ctl::Next)
                    }
                    RecvOutcome::Blocked => Ok(Ctl::Blocked),
                    RecvOutcome::WouldBlock => unreachable!("blocking receive cannot would-block"),
                }
            }
            Instruction::ReceiveTimeout {
                port: p,
                dst,
                timeout,
            } => {
                charge.ot(&env.cost);
                charge.add(env.cost.recv_fixed);
                let port_ad = env
                    .space
                    .load_ad_required(ctx_ad, p as u32)
                    .map_err(Fault::from)?;
                let t = self.read_ref(env, ctx_ad, timeout, charge)?;
                // Ring fast path: a fast pop neither blocks nor arms
                // the timer, exactly like a locked non-empty dequeue.
                if let Some(RecvOutcome::Received(msg)) = port::fast_receive(env.space, port_ad) {
                    env.space
                        .store_ad(ctx_ad, dst as u32, Some(msg))
                        .map_err(Fault::from)?;
                    return Ok(Ctl::Next);
                }
                let cpu = self.cpu;
                let deadline = self.clock + t;
                match env.space.atomically(|sm| -> Result<RecvOutcome, Fault> {
                    match port::receive(sm, Some((proc_ref, dst as u32)), port_ad, true, false)? {
                        RecvOutcome::Blocked => {
                            // Commit the block — including the armed
                            // timer — before the shard locks drop (see
                            // the SEND arm).
                            sm.with_process_mut(proc_ref, |ps| ps.timeout_at = deadline)
                                .map_err(Fault::from)?;
                            with_context_state(sm, ctx, |c| c.ip += 1)?;
                            unbind(sm, cpu)?;
                            Ok(RecvOutcome::Blocked)
                        }
                        other => Ok(other),
                    }
                })? {
                    RecvOutcome::Received(msg) => {
                        env.space
                            .store_ad(ctx_ad, dst as u32, Some(msg))
                            .map_err(Fault::from)?;
                        Ok(Ctl::Next)
                    }
                    RecvOutcome::Blocked => Ok(Ctl::Blocked),
                    RecvOutcome::WouldBlock => unreachable!("blocking receive cannot would-block"),
                }
            }
            Instruction::CondReceive { port: p, dst, done } => {
                charge.ot(&env.cost);
                charge.add(env.cost.recv_fixed);
                let port_ad = env
                    .space
                    .load_ad_required(ctx_ad, p as u32)
                    .map_err(Fault::from)?;
                // Ring fast path.
                if let Some(RecvOutcome::Received(msg)) = port::fast_receive(env.space, port_ad) {
                    env.space
                        .store_ad(ctx_ad, dst as u32, Some(msg))
                        .map_err(Fault::from)?;
                    self.write_dst(env, ctx_ad, done, 1, charge)?;
                    return Ok(Ctl::Next);
                }
                match env
                    .space
                    .atomically(|sm| port::receive(sm, None, port_ad, false, false))?
                {
                    RecvOutcome::Received(msg) => {
                        env.space
                            .store_ad(ctx_ad, dst as u32, Some(msg))
                            .map_err(Fault::from)?;
                        self.write_dst(env, ctx_ad, done, 1, charge)?;
                    }
                    RecvOutcome::WouldBlock => {
                        env.space
                            .store_ad(ctx_ad, dst as u32, None)
                            .map_err(Fault::from)?;
                        self.write_dst(env, ctx_ad, done, 0, charge)?;
                    }
                    RecvOutcome::Blocked => unreachable!("non-blocking receive cannot block"),
                }
                Ok(Ctl::Next)
            }
            Instruction::CopyData {
                src,
                src_off,
                dst,
                dst_off,
                len,
            } => {
                charge.ot(&env.cost);
                charge.ot(&env.cost);
                let src_ad = env
                    .space
                    .load_ad_required(ctx_ad, src as u32)
                    .map_err(Fault::from)?;
                let dst_ad = env
                    .space
                    .load_ad_required(ctx_ad, dst as u32)
                    .map_err(Fault::from)?;
                let s_off = self.read_ref(env, ctx_ad, src_off, charge)? as u32;
                let d_off = self.read_ref(env, ctx_ad, dst_off, charge)? as u32;
                let n = self.read_ref(env, ctx_ad, len, charge)? as u32;
                let mut buf = vec![0u8; n as usize];
                env.space
                    .read_data(src_ad, s_off, &mut buf)
                    .map_err(Fault::from)?;
                env.space
                    .write_data(dst_ad, d_off, &buf)
                    .map_err(Fault::from)?;
                // Word-granular transfer traffic in both directions.
                charge.mem(n.div_ceil(4) * 2, &env.cost);
                Ok(Ctl::Next)
            }
            Instruction::InspectAd { slot, dst } => {
                charge.ot(&env.cost);
                let word = match env
                    .space
                    .load_ad(ctx_ad, slot as u32)
                    .map_err(Fault::from)?
                {
                    None => 1u64 << 63,
                    Some(ad) => {
                        let (ad_otype, ad_level) = env
                            .space
                            .entry_view(ad.obj, |e| (e.desc.otype, e.desc.level))
                            .map_err(Fault::from)?;
                        let (tag, tdo_index) = match ad_otype {
                            ObjectType::System(t) => {
                                use i432_arch::SystemType as S;
                                let tag = match t {
                                    S::Generic => 0u64,
                                    S::Processor => 1,
                                    S::Process => 2,
                                    S::Context => 3,
                                    S::Domain => 4,
                                    S::Instructions => 5,
                                    S::Port => 6,
                                    S::StorageResource => 7,
                                    S::TypeDefinition => 8,
                                };
                                (tag, 0u64)
                            }
                            ObjectType::User(tdo) => (255, tdo.index.0 as u64),
                        };
                        ad.rights.bits() as u64
                            | (ad_level.0 as u64) << 8
                            | tag << 24
                            | tdo_index << 32
                    }
                };
                self.write_dst(env, ctx_ad, dst, word, charge)?;
                Ok(Ctl::Next)
            }
            Instruction::ReadClock { dst } => {
                let now = self.clock;
                self.write_dst(env, ctx_ad, dst, now, charge)?;
                Ok(Ctl::Next)
            }
            Instruction::Work { cycles } => {
                charge.add(cycles as u64);
                Ok(Ctl::Next)
            }
            Instruction::RaiseFault { code } => Err(Fault::new(FaultKind::Explicit(code))),
            Instruction::Halt => Ok(Ctl::Exited),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_call<S: SpaceAccess + ?Sized>(
        &mut self,
        env: &mut Env<'_, S>,
        proc_ref: ObjectRef,
        ctx: ObjectRef,
        domain: u16,
        subprogram: u32,
        arg: Option<u16>,
        ret_ad: Option<u16>,
        ret_val: Option<u32>,
        site: Option<Site>,
        charge: &mut Charge,
    ) -> Result<Ctl, Fault> {
        charge.add(env.cost.call_total() - env.cost.decode);
        charge.words += 24; // context allocation + linkage traffic
        if i432_trace::ENABLED {
            i432_trace::emit(i432_trace::EventKind::DomainCall, ctx.index.0);
            i432_trace::bump(i432_trace::Counter::DomainCalls);
            i432_trace::observe(i432_trace::Hist::DomainCallCycles, env.cost.call_total());
        }
        let ctx_ad = env.space.mint(ctx, Rights::READ | Rights::WRITE);
        let dom_ad = env
            .space
            .load_ad_required(ctx_ad, domain as u32)
            .map_err(Fault::from)?;
        // Call-site inline cache: on a hit, the Domain type check, CALL
        // qualification and subprogram-table resolution are served from
        // the cached line — valid only for the exact descriptor (object,
        // generation and rights), the exact subprogram index, and an
        // unchanged shard epoch. The epoch is read *before* resolution,
        // so a line filled while the domain mutates concurrently can
        // only be invalid, never stale-live. CALL's cost is fixed above
        // either way — the cycle model is untouched.
        let ic_site = site.filter(|_| self.fusion_enabled);
        let epoch = ic_site.and_then(|_| env.space.qual_epoch(dom_ad.obj));
        let hit =
            ic_site.is_some_and(|s| self.ics.probe_call(s, subprogram, dom_ad, epoch).is_some());
        let resolved: Option<Subprogram> = if hit {
            i432_trace::bump(i432_trace::Counter::IcHits);
            None
        } else {
            env.space
                .expect_type(dom_ad, SystemType::Domain)
                .map_err(Fault::from)?;
            env.space
                .qualify(dom_ad, Rights::CALL)
                .map_err(Fault::from)?;
            let s = subprogram_of(env.space, dom_ad.obj, subprogram)?;
            if let (Some(st), Some(e)) = (ic_site, epoch) {
                i432_trace::bump(i432_trace::Counter::IcMisses);
                self.ics.fill_call(st, subprogram, dom_ad, e, s.clone());
            }
            Some(s)
        };
        let sub: &Subprogram = match &resolved {
            Some(s) => s,
            None => self
                .ics
                .probe_call(
                    ic_site.expect("hit implies a site"),
                    subprogram,
                    dom_ad,
                    epoch,
                )
                .expect("hit implies a live line"),
        };
        let arg_ad = match arg {
            Some(slot) => env
                .space
                .load_ad(ctx_ad, slot as u32)
                .map_err(Fault::from)?,
            None => None,
        };
        let sro_ad = env
            .space
            .load_ad_required(ctx_ad, CTX_SLOT_SRO)
            .map_err(Fault::from)?;
        let cur_level = env.space.level_of(ctx).map_err(Fault::from)?;

        let callee = create_context(
            env.space,
            sro_ad.obj,
            dom_ad,
            subprogram,
            sub,
            arg_ad,
            Some(ctx_ad),
            cur_level,
            ret_ad.map(|s| s as u32),
            ret_val,
        )?;

        match sub.body {
            CodeBody::Interpreted(_) => {
                // Commit: the caller resumes after the CALL.
                with_context_state(env.space, ctx, |c| c.ip += 1)?;
                let callee_ad = env.space.mint(callee, Rights::READ | Rights::WRITE);
                env.space
                    .store_ad_hw(proc_ref, PROC_SLOT_CONTEXT, Some(callee_ad))
                    .map_err(Fault::from)?;
                Ok(Ctl::Switched)
            }
            CodeBody::Native(id) => {
                // Native services execute within the CALL and return
                // immediately; the caller pays the same domain-switch
                // price (uniformity of OS and user calls). The callee
                // context becomes the *current* context for the duration,
                // keeping the whole chain reachable — the garbage
                // collector itself may run inside this body.
                let callee_ad = env.space.mint(callee, Rights::READ | Rights::WRITE);
                env.space
                    .store_ad_hw(proc_ref, PROC_SLOT_CONTEXT, Some(callee_ad))
                    .map_err(Fault::from)?;
                let natives = env.natives;
                let (result, ncycles) = env.space.atomically(|sm| {
                    let mut ncx = NativeCtx {
                        space: sm,
                        process: proc_ref,
                        context: callee,
                        cycles: 0,
                    };
                    let r = natives.invoke(id, &mut ncx);
                    (r, ncx.cycles)
                });
                charge.add(ncycles);
                env.space
                    .store_ad_hw(proc_ref, PROC_SLOT_CONTEXT, Some(ctx_ad))
                    .map_err(Fault::from)?;
                match result {
                    Ok(ret) => {
                        if let Some(slot) = ret_ad {
                            env.space
                                .store_ad(ctx_ad, slot as u32, ret.ad)
                                .map_err(Fault::from)?;
                        }
                        if let (Some(off), Some(v)) = (ret_val, ret.value) {
                            env.space.write_u64(ctx_ad, off, v).map_err(Fault::from)?;
                        }
                        destroy_context(env.space, callee)?;
                        charge.add(env.cost.return_total());
                        with_context_state(env.space, ctx, |c| c.ip += 1)?;
                        Ok(Ctl::Switched)
                    }
                    Err(fault) => {
                        let _ = destroy_context(env.space, callee);
                        Err(fault)
                    }
                }
            }
        }
    }

    fn exec_return<S: SpaceAccess + ?Sized>(
        &mut self,
        env: &mut Env<'_, S>,
        proc_ref: ObjectRef,
        ctx: ObjectRef,
        ad: Option<u16>,
        value: Option<DataRef>,
        charge: &mut Charge,
    ) -> Result<Ctl, Fault> {
        charge.add(env.cost.return_total() - env.cost.decode);
        charge.words += 8;
        if i432_trace::ENABLED {
            i432_trace::emit(i432_trace::EventKind::DomainReturn, ctx.index.0);
            i432_trace::bump(i432_trace::Counter::DomainReturns);
            i432_trace::observe(
                i432_trace::Hist::DomainReturnCycles,
                env.cost.return_total(),
            );
        }
        let ctx_ad = env.space.mint(ctx, Rights::READ | Rights::WRITE);
        let cstate = context_state(env.space, ctx)?;
        let caller = env
            .space
            .load_ad(ctx_ad, CTX_SLOT_CALLER)
            .map_err(Fault::from)?;
        let ret_ad_value = match ad {
            Some(slot) => env
                .space
                .load_ad(ctx_ad, slot as u32)
                .map_err(Fault::from)?,
            None => None,
        };
        let ret_scalar = match value {
            Some(r) => Some(self.read_ref(env, ctx_ad, r, charge)?),
            None => None,
        };

        let Some(caller_ad) = caller else {
            // Root return: the process is done.
            return Ok(Ctl::Exited);
        };

        // Deliver results into the caller. The checked store enforces the
        // level rule: returning an access for a callee-local object to the
        // caller faults, exactly as Ada forbids returning a pointer to a
        // local.
        if let Some(slot) = cstate.ret_ad_slot {
            env.space
                .store_ad(caller_ad, slot, ret_ad_value)
                .map_err(Fault::from)?;
        }
        if let (Some(off), Some(v)) = (cstate.ret_val_off, ret_scalar) {
            env.space
                .write_u64(caller_ad, off, v)
                .map_err(Fault::from)?;
        }

        // Scope-exit reclamation of the local heap, if one was opened at
        // this depth or deeper (paper §5).
        let caller_level = env.space.level_of(caller_ad.obj).map_err(Fault::from)?;
        if let Some(lh) = env
            .space
            .load_ad_hw(proc_ref, PROC_SLOT_LOCAL_HEAP)
            .map_err(Fault::from)?
        {
            let lh_level = env.space.level_of(lh.obj).map_err(Fault::from)?;
            if lh_level > caller_level {
                let reclaimed = env.space.bulk_destroy_sro(lh.obj).map_err(Fault::from)?;
                charge.add(reclaimed as u64 * 20);
                env.space
                    .store_ad_hw(proc_ref, PROC_SLOT_LOCAL_HEAP, None)
                    .map_err(Fault::from)?;
            }
        }

        destroy_context(env.space, ctx)?;
        env.space
            .store_ad_hw(proc_ref, PROC_SLOT_CONTEXT, Some(caller_ad))
            .map_err(Fault::from)?;
        Ok(Ctl::Switched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        interconnect::NullInterconnect,
        isa::AluOp,
        process::{make_process, make_processor, ProcessSpec},
        program::ProgramBuilder,
    };
    use i432_arch::{
        sysobj::CTX_SLOT_FIRST_FREE, DomainState, Level, ObjectSpace, PortDiscipline, PortState,
        Subprogram,
    };

    /// A self-contained single-processor test rig.
    pub(crate) struct Rig {
        pub(crate) space: ObjectSpace,
        code: CodeStore,
        natives: NativeRegistry,
        bus: NullInterconnect,
        cost: CostModel,
        dispatch: AccessDescriptor,
        gdp: Option<Gdp>,
    }

    impl Rig {
        pub(crate) fn new() -> Rig {
            let mut space = ObjectSpace::new(256 * 1024, 16 * 1024, 4096);
            let root = space.root_sro();
            let port = space
                .create_object(
                    root,
                    ObjectSpec {
                        data_len: 0,
                        access_len: PortState::access_slots(64, 64),
                        otype: ObjectType::System(SystemType::Port),
                        level: None,
                        sys: SysState::Port(PortState::new(64, 64, PortDiscipline::Fifo)),
                    },
                )
                .unwrap();
            let dispatch = space.mint(port, Rights::NONE);
            Rig {
                space,
                code: CodeStore::new(),
                natives: NativeRegistry::new(),
                bus: NullInterconnect,
                cost: CostModel::default(),
                dispatch,
                gdp: None,
            }
        }

        pub(crate) fn domain(&mut self, name: &str, subs: Vec<Subprogram>) -> AccessDescriptor {
            let root = self.space.root_sro();
            let dom = self
                .space
                .create_object(
                    root,
                    ObjectSpec {
                        data_len: 0,
                        access_len: 4,
                        otype: ObjectType::System(SystemType::Domain),
                        level: None,
                        sys: SysState::Domain(DomainState {
                            name: name.into(),
                            subprograms: subs,
                        }),
                    },
                )
                .unwrap();
            self.space.mint(dom, Rights::CALL)
        }

        pub(crate) fn sub(&mut self, name: &str, code: Vec<Instruction>) -> Subprogram {
            let cr = self.code.install(code);
            Subprogram {
                name: name.into(),
                body: CodeBody::Interpreted(cr),
                ctx_data_len: 128,
                ctx_access_len: 16,
            }
        }

        pub(crate) fn spawn(&mut self, dom: AccessDescriptor, sub: u32) -> ObjectRef {
            let root = self.space.root_sro();
            let p = make_process(
                &mut self.space,
                root,
                dom,
                sub,
                None,
                ProcessSpec::new(self.dispatch),
            )
            .unwrap();
            port::make_ready(&mut self.space, p).unwrap();
            p
        }

        pub(crate) fn cpu(&mut self) -> &mut Gdp {
            if self.gdp.is_none() {
                let root = self.space.root_sro();
                let cpu = make_processor(&mut self.space, root, 0, self.dispatch).unwrap();
                self.gdp = Some(Gdp::new(cpu));
            }
            self.gdp.as_mut().unwrap()
        }

        /// Steps until the predicate holds or the step budget runs out.
        pub(crate) fn run_until(
            &mut self,
            max_steps: u32,
            mut stop: impl FnMut(&StepEvent) -> bool,
        ) -> Vec<StepEvent> {
            self.cpu();
            let mut events = Vec::new();
            let mut gdp = self.gdp.take().unwrap();
            for _ in 0..max_steps {
                let ev = {
                    let mut env = Env {
                        space: &mut self.space,
                        code: &self.code,
                        natives: &self.natives,
                        bus: &mut self.bus,
                        cost: self.cost,
                    };
                    gdp.step(&mut env)
                };
                let done = stop(&ev);
                events.push(ev);
                if done {
                    break;
                }
            }
            self.gdp = Some(gdp);
            events
        }
    }

    #[test]
    fn compute_loop_runs_to_exit() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(5), DataDst::Local(0));
        p.bind(top);
        p.alu(
            AluOp::Sub,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), top);
        p.halt();
        let sub = rig.sub("main", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let proc_ref = rig.spawn(dom, 0);
        let events = rig.run_until(100, |e| matches!(e, StepEvent::ProcessExited(_)));
        assert!(matches!(events.last(), Some(StepEvent::ProcessExited(p)) if *p == proc_ref));
        assert_eq!(
            rig.space.process(proc_ref).unwrap().status,
            ProcessStatus::Terminated
        );
    }

    #[test]
    fn call_and_return_pass_values() {
        let mut rig = Rig::new();
        // Callee: return 41 + 1.
        let mut callee = ProgramBuilder::new();
        callee.alu(
            AluOp::Add,
            DataRef::Imm(41),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        callee.ret(None, Some(DataRef::Local(0)));
        let callee_sub = rig.sub("callee", callee.finish());
        let callee_dom = rig.domain("svc", vec![callee_sub]);

        // Caller: call svc.0, stash result at local 8, then spin until it
        // is 42 and halt.
        let mut caller = ProgramBuilder::new();
        caller.call(CTX_SLOT_FIRST_FREE as u16, 0, None, None, Some(8));
        caller.halt();
        let caller_sub = rig.sub("caller", caller.finish());
        let caller_dom = rig.domain("app", vec![caller_sub]);

        let proc_ref = rig.spawn(caller_dom, 0);
        // Hand the callee domain AD to the caller's root context.
        let ctx = rig
            .space
            .load_ad_hw(proc_ref, PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap()
            .obj;
        rig.space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE, Some(callee_dom))
            .unwrap();

        rig.run_until(100, |e| matches!(e, StepEvent::ProcessExited(_)));
        // The result was written into the caller context before exit; the
        // context is gone now, so assert via accounting instead: the
        // process executed a call (two domains) and exited cleanly.
        assert_eq!(
            rig.space.process(proc_ref).unwrap().status,
            ProcessStatus::Terminated
        );
        assert_eq!(rig.space.process(proc_ref).unwrap().fault_code, 0);
    }

    #[test]
    fn call_costs_match_calibration() {
        let mut rig = Rig::new();
        let mut callee = ProgramBuilder::new();
        callee.ret(None, None);
        let callee_sub = rig.sub("callee", callee.finish());
        let dom2 = rig.domain("svc", vec![callee_sub]);

        let mut caller = ProgramBuilder::new();
        caller.call(CTX_SLOT_FIRST_FREE as u16, 0, None, None, None);
        caller.halt();
        let caller_sub = rig.sub("caller", caller.finish());
        let dom1 = rig.domain("app", vec![caller_sub]);

        let proc_ref = rig.spawn(dom1, 0);
        let ctx = rig
            .space
            .load_ad_hw(proc_ref, PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap()
            .obj;
        rig.space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE, Some(dom2))
            .unwrap();

        let mut call_cycles = None;
        rig.run_until(100, |e| {
            if let StepEvent::Executed { cycles, .. } = e {
                if call_cycles.is_none() {
                    call_cycles = Some(*cycles);
                }
            }
            matches!(e, StepEvent::ProcessExited(_))
        });
        // First executed instruction is the CALL; 520 cycles = 65us.
        let cycles = call_cycles.expect("call executed");
        assert!(
            (500..=560).contains(&cycles),
            "domain switch took {cycles} cycles, expected ~520"
        );
    }

    #[test]
    fn create_object_instruction_allocates() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        // The context's SRO slot designates the allocator.
        p.create_object(
            CTX_SLOT_SRO as u16,
            DataRef::Imm(64),
            DataRef::Imm(4),
            CTX_SLOT_FIRST_FREE as u16,
        );
        // Prove the object works: write/read through it.
        p.mov(
            DataRef::Imm(7),
            DataDst::Field(CTX_SLOT_FIRST_FREE as u16, 0),
        );
        p.halt();
        let sub = rig.sub("main", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let proc_ref = rig.spawn(dom, 0);
        let created_before = rig.space.stats.objects_created;
        rig.run_until(100, |e| matches!(e, StepEvent::ProcessExited(_)));
        assert!(rig.space.stats.objects_created > created_before);
        assert_eq!(rig.space.process(proc_ref).unwrap().fault_code, 0);
    }

    #[test]
    fn explicit_fault_is_delivered() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        p.push(Instruction::RaiseFault { code: 3 });
        let sub = rig.sub("main", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let proc_ref = rig.spawn(dom, 0);
        let events = rig.run_until(100, |e| matches!(e, StepEvent::ProcessFaulted { .. }));
        assert!(matches!(
            events.last(),
            Some(StepEvent::ProcessFaulted {
                kind: FaultKind::Explicit(3),
                ..
            })
        ));
        // No fault port: terminated.
        assert_eq!(
            rig.space.process(proc_ref).unwrap().status,
            ProcessStatus::Terminated
        );
        assert_eq!(rig.space.process(proc_ref).unwrap().fault_code, 1003);
    }

    #[test]
    fn low_system_level_fault_halts_processor() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        p.push(Instruction::RaiseFault { code: 1 });
        let sub = rig.sub("main", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let proc_ref = rig.spawn(dom, 0);
        rig.space.process_mut(proc_ref).unwrap().sys_level = 1;
        let events = rig.run_until(100, |e| matches!(e, StepEvent::SystemError { .. }));
        assert!(matches!(events.last(), Some(StepEvent::SystemError { .. })));
        let cpu = rig.gdp.unwrap().cpu;
        assert_eq!(
            rig.space.processor(cpu).unwrap().status,
            ProcessorStatus::Halted
        );
    }

    #[test]
    fn timeslice_end_requeues_process() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.bind(top);
        p.work(10_000);
        p.jump(top);
        let sub = rig.sub("spin", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let proc_ref = rig.spawn(dom, 0);
        rig.space.process_mut(proc_ref).unwrap().timeslice = 25_000;
        rig.space.process_mut(proc_ref).unwrap().slice_remaining = 25_000;
        let events = rig.run_until(100, |e| matches!(e, StepEvent::TimesliceEnd(_)));
        assert!(matches!(events.last(), Some(StepEvent::TimesliceEnd(p)) if *p == proc_ref));
        // The process is back in the dispatching mix: next steps
        // re-dispatch it.
        let events = rig.run_until(3, |e| matches!(e, StepEvent::Dispatched(_)));
        assert!(events
            .iter()
            .any(|e| matches!(e, StepEvent::Dispatched(p) if *p == proc_ref)));
    }

    #[test]
    fn two_processes_rendezvous_through_port() {
        let mut rig = Rig::new();
        // A user port both processes can reach.
        let root = rig.space.root_sro();
        let port = rig
            .space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: PortState::access_slots(2, 8),
                    otype: ObjectType::System(SystemType::Port),
                    level: None,
                    sys: SysState::Port(PortState::new(2, 8, PortDiscipline::Fifo)),
                },
            )
            .unwrap();
        let port_ad = rig.space.mint(port, Rights::SEND | Rights::RECEIVE);

        // Receiver: receive into slot 5, then read the message's first
        // word into local 0 and halt.
        let mut rx = ProgramBuilder::new();
        rx.receive(CTX_SLOT_FIRST_FREE as u16, 5);
        rx.mov(DataRef::Field(5, 0), DataDst::Local(0));
        rx.halt();
        let rx_sub = rig.sub("rx", rx.finish());

        // Sender: create a message object, tag it with 99, send it.
        let mut tx = ProgramBuilder::new();
        tx.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(16), DataRef::Imm(0), 6);
        tx.mov(DataRef::Imm(99), DataDst::Field(6, 0));
        tx.send(CTX_SLOT_FIRST_FREE as u16, 6);
        tx.halt();
        let tx_sub = rig.sub("tx", tx.finish());

        let dom = rig.domain("d", vec![rx_sub, tx_sub]);
        let rx_proc = rig.spawn(dom, 0);
        let tx_proc = rig.spawn(dom, 1);
        for p in [rx_proc, tx_proc] {
            let ctx = rig
                .space
                .load_ad_hw(p, PROC_SLOT_CONTEXT)
                .unwrap()
                .unwrap()
                .obj;
            rig.space
                .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE, Some(port_ad))
                .unwrap();
        }

        let mut exits = 0;
        rig.run_until(300, |e| {
            if matches!(e, StepEvent::ProcessExited(_)) {
                exits += 1;
            }
            exits == 2
        });
        assert_eq!(exits, 2, "both processes must finish");
        assert_eq!(rig.space.process(rx_proc).unwrap().fault_code, 0);
        assert_eq!(rig.space.process(tx_proc).unwrap().fault_code, 0);
        let st = rig.space.port(port).unwrap();
        assert_eq!(st.stats.sends, 1);
        assert_eq!(st.stats.receives, 1);
        assert_eq!(
            st.stats.blocked_receives, 1,
            "receiver ran first and blocked"
        );
    }

    #[test]
    fn native_service_called_like_user_code() {
        let mut rig = Rig::new();
        let nid = rig.natives.register("answer", |cx| {
            cx.charge(25);
            Ok(crate::native::NativeReturn::value(42))
        });
        let svc_sub = Subprogram {
            name: "answer".into(),
            body: CodeBody::Native(nid),
            ctx_data_len: 32,
            ctx_access_len: 8,
        };
        let svc_dom = rig.domain("os", vec![svc_sub]);

        let mut caller = ProgramBuilder::new();
        caller.call(CTX_SLOT_FIRST_FREE as u16, 0, None, None, Some(16));
        // Copy result somewhere observable before halt: store to the
        // message area of the process via a created object is overkill;
        // simply fault if the value is wrong.
        let ok = caller.new_label();
        caller.alu(
            AluOp::Eq,
            DataRef::Local(16),
            DataRef::Imm(42),
            DataDst::Local(24),
        );
        caller.jump_if_nonzero(DataRef::Local(24), ok);
        caller.push(Instruction::RaiseFault { code: 99 });
        caller.bind(ok);
        caller.halt();
        let caller_sub = rig.sub("main", caller.finish());
        let app_dom = rig.domain("app", vec![caller_sub]);

        let proc_ref = rig.spawn(app_dom, 0);
        let ctx = rig
            .space
            .load_ad_hw(proc_ref, PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap()
            .obj;
        rig.space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE, Some(svc_dom))
            .unwrap();

        let events = rig.run_until(100, |e| {
            matches!(
                e,
                StepEvent::ProcessExited(_) | StepEvent::ProcessFaulted { .. }
            )
        });
        assert!(
            matches!(events.last(), Some(StepEvent::ProcessExited(_))),
            "native call must return 42; events: {events:?}"
        );
    }

    #[test]
    fn returning_local_object_faults_on_level() {
        let mut rig = Rig::new();
        // Callee allocates from a *deep* local SRO and tries to return the
        // object. Build a local SRO at the callee's level by creating the
        // object with the context SRO but the callee's deeper level is
        // enforced via the context store on return.
        //
        // Simplest faithful setup: callee creates an object from an SRO
        // whose fixed level is deeper than the caller's context, then
        // RETURNs it. The delivery store into the caller must fault.
        let root = rig.space.root_sro();
        // A local SRO at level 10 carved from the root.
        let mut local_sro = i432_arch::SroState::new(Level(10));
        local_sro.parent = Some(root);
        // Donate some space.
        let (dbase, abase) = {
            let st = rig.space.sro_mut(root).unwrap();
            let dbase = st.data_free.allocate(4096).unwrap();
            let abase = st.access_free.allocate(128).unwrap();
            (dbase, abase)
        };
        local_sro.data_free.donate(dbase, 4096).unwrap();
        local_sro.access_free.donate(abase, 128).unwrap();
        let sro_obj = rig
            .space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: 0,
                    otype: ObjectType::System(SystemType::StorageResource),
                    level: None,
                    sys: SysState::Sro(local_sro),
                },
            )
            .unwrap();
        let local_sro_ad = rig.space.mint(sro_obj, Rights::ALLOCATE);

        let mut callee = ProgramBuilder::new();
        callee.create_object(6, DataRef::Imm(16), DataRef::Imm(0), 7);
        callee.ret(Some(7), None);
        let callee_sub = rig.sub("callee", callee.finish());
        let svc = rig.domain("svc", vec![callee_sub]);

        let mut caller = ProgramBuilder::new();
        caller.call(CTX_SLOT_FIRST_FREE as u16, 0, None, Some(5), None);
        caller.halt();
        let caller_sub = rig.sub("caller", caller.finish());
        let app = rig.domain("app", vec![caller_sub]);

        let proc_ref = rig.spawn(app, 0);
        let ctx = rig
            .space
            .load_ad_hw(proc_ref, PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap()
            .obj;
        rig.space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE, Some(svc))
            .unwrap();
        // Plant the deep SRO where the callee will find it: callee slot 6
        // is populated at call time via the argument? Simpler: poke it
        // after the dispatch+call steps by stepping until the callee's
        // context exists. Instead, pass it as the CALL argument (slot 3 of
        // the callee) and have the callee use slot 3.
        // Rebuild callee to use the argument slot.
        let mut callee2 = ProgramBuilder::new();
        callee2.create_object(
            i432_arch::sysobj::CTX_SLOT_ARG as u16,
            DataRef::Imm(16),
            DataRef::Imm(0),
            7,
        );
        callee2.ret(Some(7), None);
        let callee2_sub = rig.sub("callee2", callee2.finish());
        let svc2 = rig.domain("svc2", vec![callee2_sub]);
        rig.space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE, Some(svc2))
            .unwrap();
        rig.space
            .store_ad_hw(ctx, CTX_SLOT_FIRST_FREE + 1, Some(local_sro_ad))
            .unwrap();
        // Caller passes slot 5 (the SRO) as the argument.
        // Rewrite the caller program in place: call with arg.
        let mut caller2 = ProgramBuilder::new();
        caller2.call(
            CTX_SLOT_FIRST_FREE as u16,
            0,
            Some((CTX_SLOT_FIRST_FREE + 1) as u16),
            Some(6),
            None,
        );
        caller2.halt();
        let caller2_code = rig.code.install(caller2.finish());
        with_context_state(&mut rig.space, ctx, |c| {
            c.body = CodeBody::Interpreted(caller2_code);
        })
        .unwrap();

        let events = rig.run_until(100, |e| {
            matches!(
                e,
                StepEvent::ProcessFaulted { .. } | StepEvent::ProcessExited(_)
            )
        });
        assert!(
            matches!(
                events.last(),
                Some(StepEvent::ProcessFaulted {
                    kind: FaultKind::Level,
                    ..
                })
            ),
            "returning a local object must level-fault; events: {events:?}"
        );
    }
}

#[cfg(test)]
mod isa_extension_tests {
    use super::tests::Rig;
    use super::*;
    use crate::isa::AluOp;
    use crate::program::ProgramBuilder;
    use i432_arch::sysobj::{CTX_SLOT_FIRST_FREE, CTX_SLOT_SRO};

    #[test]
    fn copy_data_moves_blocks() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        // Two objects; fill the first, block-copy into the second, then
        // verify one word and halt (fault on mismatch).
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(64), DataRef::Imm(0), 5);
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(64), DataRef::Imm(0), 6);
        p.mov(DataRef::Imm(0xABCD), DataDst::Field(5, 8));
        p.mov(DataRef::Imm(0x1234), DataDst::Field(5, 16));
        p.push(Instruction::CopyData {
            src: 5,
            src_off: DataRef::Imm(8),
            dst: 6,
            dst_off: DataRef::Imm(0),
            len: DataRef::Imm(16),
        });
        let ok = p.new_label();
        p.alu(
            AluOp::Eq,
            DataRef::Field(6, 8),
            DataRef::Imm(0x1234),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), ok);
        p.push(Instruction::RaiseFault { code: 9 });
        p.bind(ok);
        p.halt();
        let sub = rig.sub("copier", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let proc_ref = rig.spawn(dom, 0);
        rig.run_until(100, |e| {
            matches!(
                e,
                StepEvent::ProcessExited(_) | StepEvent::ProcessFaulted { .. }
            )
        });
        assert_eq!(rig.space.process(proc_ref).unwrap().fault_code, 0);
    }

    #[test]
    fn copy_data_respects_rights_and_bounds() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(32), DataRef::Imm(0), 5);
        p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(32), DataRef::Imm(0), 6);
        // Drop write rights on the destination, then attempt the copy.
        p.restrict(6, i432_arch::Rights::READ);
        p.push(Instruction::CopyData {
            src: 5,
            src_off: DataRef::Imm(0),
            dst: 6,
            dst_off: DataRef::Imm(0),
            len: DataRef::Imm(8),
        });
        p.halt();
        let sub = rig.sub("thief", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let _ = rig.spawn(dom, 0);
        let events = rig.run_until(100, |e| {
            matches!(
                e,
                StepEvent::ProcessExited(_) | StepEvent::ProcessFaulted { .. }
            )
        });
        assert!(matches!(
            events.last(),
            Some(StepEvent::ProcessFaulted {
                kind: FaultKind::Rights,
                ..
            })
        ));
    }

    #[test]
    fn inspect_ad_reports_type_level_rights_null() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        // Inspect a null slot: bit 63.
        p.push(Instruction::InspectAd {
            slot: CTX_SLOT_FIRST_FREE as u16,
            dst: DataDst::Local(0),
        });
        // Create an object and inspect it: generic tag, full rights.
        p.create_object(
            CTX_SLOT_SRO as u16,
            DataRef::Imm(8),
            DataRef::Imm(0),
            CTX_SLOT_FIRST_FREE as u16,
        );
        p.push(Instruction::InspectAd {
            slot: CTX_SLOT_FIRST_FREE as u16,
            dst: DataDst::Local(8),
        });
        // Inspect the SRO slot: storage-resource tag (7).
        p.push(Instruction::InspectAd {
            slot: CTX_SLOT_SRO as u16,
            dst: DataDst::Local(16),
        });
        p.halt();
        let sub = rig.sub("inspector", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let proc_ref = rig.spawn(dom, 0);
        rig.run_until(100, |e| {
            matches!(
                e,
                StepEvent::ProcessExited(_) | StepEvent::ProcessFaulted { .. }
            )
        });
        assert_eq!(rig.space.process(proc_ref).unwrap().fault_code, 0);
        // Re-run, stopping right before Halt, to read the locals.
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        p.push(Instruction::InspectAd {
            slot: CTX_SLOT_FIRST_FREE as u16,
            dst: DataDst::Local(0),
        });
        p.create_object(
            CTX_SLOT_SRO as u16,
            DataRef::Imm(8),
            DataRef::Imm(0),
            CTX_SLOT_FIRST_FREE as u16,
        );
        p.push(Instruction::InspectAd {
            slot: CTX_SLOT_FIRST_FREE as u16,
            dst: DataDst::Local(8),
        });
        p.push(Instruction::InspectAd {
            slot: CTX_SLOT_SRO as u16,
            dst: DataDst::Local(16),
        });
        p.work(1);
        p.halt();
        let sub = rig.sub("inspector", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let proc_ref = rig.spawn(dom, 0);
        let mut executed = 0;
        rig.run_until(100, |e| {
            if matches!(e, StepEvent::Executed { .. }) {
                executed += 1;
            }
            executed == 5 // after the Work, before Halt
        });
        let ctx = rig
            .space
            .load_ad_hw(proc_ref, i432_arch::sysobj::PROC_SLOT_CONTEXT)
            .unwrap()
            .unwrap();
        let w_null = rig.space.read_u64(ctx, 0).unwrap();
        let w_obj = rig.space.read_u64(ctx, 8).unwrap();
        let w_sro = rig.space.read_u64(ctx, 16).unwrap();
        assert_eq!(w_null >> 63, 1, "null bit");
        assert_eq!(w_obj >> 63, 0);
        assert_eq!((w_obj >> 24) & 0xff, 0, "generic tag");
        assert_eq!(w_obj & 0x3f, i432_arch::Rights::ALL.bits() as u64);
        assert_eq!((w_sro >> 24) & 0xff, 7, "storage-resource tag");
    }
}

#[cfg(test)]
mod control_flow_edge_tests {
    use super::tests::Rig;
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn running_off_the_end_is_a_bad_ip_fault() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        p.work(10); // no Halt, no Return
        let sub = rig.sub("runaway", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let proc_ref = rig.spawn(dom, 0);
        let events = rig.run_until(50, |e| {
            matches!(
                e,
                StepEvent::ProcessFaulted { .. } | StepEvent::ProcessExited(_)
            )
        });
        assert!(matches!(
            events.last(),
            Some(StepEvent::ProcessFaulted {
                kind: FaultKind::BadIp,
                ..
            })
        ));
        assert_eq!(
            rig.space.process(proc_ref).unwrap().fault_code,
            FaultKind::BadIp.code()
        );
    }

    #[test]
    fn jump_outside_the_segment_faults_at_fetch() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        p.push(Instruction::Jump(999));
        p.halt();
        let sub = rig.sub("wild_jump", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let _ = rig.spawn(dom, 0);
        let events = rig.run_until(50, |e| {
            matches!(
                e,
                StepEvent::ProcessFaulted { .. } | StepEvent::ProcessExited(_)
            )
        });
        assert!(matches!(
            events.last(),
            Some(StepEvent::ProcessFaulted {
                kind: FaultKind::BadIp,
                ..
            })
        ));
    }

    #[test]
    fn call_through_a_non_domain_faults() {
        let mut rig = Rig::new();
        let mut p = ProgramBuilder::new();
        // Call "through" the context's SRO slot: not a domain.
        p.call(i432_arch::sysobj::CTX_SLOT_SRO as u16, 0, None, None, None);
        p.halt();
        let sub = rig.sub("confused", p.finish());
        let dom = rig.domain("d", vec![sub]);
        let _ = rig.spawn(dom, 0);
        let events = rig.run_until(50, |e| {
            matches!(
                e,
                StepEvent::ProcessFaulted { .. } | StepEvent::ProcessExited(_)
            )
        });
        assert!(matches!(
            events.last(),
            Some(StepEvent::ProcessFaulted {
                kind: FaultKind::TypeMismatch,
                ..
            })
        ));
    }
}
