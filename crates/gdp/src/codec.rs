//! Compact byte encoding for instruction streams.
//!
//! The conformance fuzzer (`crates/conform`) generates seeded programs
//! and must be able to persist a failing case as bytes and replay it
//! bit-exactly. This codec is a stable, self-contained wire format for
//! `Vec<Instruction>` — no external serializer, deterministic output,
//! strict decoding (any trailing or malformed byte is an error, never a
//! guess).
//!
//! Format: magic `"i432"`, format version byte, `u32` instruction
//! count, then one tag byte per instruction followed by its operands.
//! Scalars are little-endian; `Option` fields are a presence byte.

use crate::isa::{AluOp, DataDst, DataRef, Instruction};
use i432_arch::Rights;
use std::fmt;

/// Wire-format magic.
const MAGIC: &[u8; 4] = b"i432";
/// Wire-format version.
const VERSION: u8 = 1;

/// A malformed program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program image error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for CodecError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn data_ref(&mut self, r: DataRef) {
        match r {
            DataRef::Imm(v) => {
                self.u8(0);
                self.u64(v);
            }
            DataRef::Local(off) => {
                self.u8(1);
                self.u32(off);
            }
            DataRef::Field(slot, off) => {
                self.u8(2);
                self.u16(slot);
                self.u32(off);
            }
        }
    }
    fn data_dst(&mut self, d: DataDst) {
        match d {
            DataDst::Local(off) => {
                self.u8(0);
                self.u32(off);
            }
            DataDst::Field(slot, off) => {
                self.u8(1);
                self.u16(slot);
                self.u32(off);
            }
        }
    }
    fn opt_u16(&mut self, v: Option<u16>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u16(x);
            }
        }
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
    fn opt_data_ref(&mut self, v: Option<DataRef>) {
        match v {
            None => self.u8(0),
            Some(r) => {
                self.u8(1);
                self.data_ref(r);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, CodecError> {
        Err(CodecError {
            offset: self.at,
            reason: reason.into(),
        })
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.at + n > self.buf.len() {
            return self.err(format!("truncated: need {n} more bytes"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn data_ref(&mut self) -> Result<DataRef, CodecError> {
        match self.u8()? {
            0 => Ok(DataRef::Imm(self.u64()?)),
            1 => Ok(DataRef::Local(self.u32()?)),
            2 => Ok(DataRef::Field(self.u16()?, self.u32()?)),
            t => self.err(format!("bad DataRef tag {t}")),
        }
    }
    fn data_dst(&mut self) -> Result<DataDst, CodecError> {
        match self.u8()? {
            0 => Ok(DataDst::Local(self.u32()?)),
            1 => Ok(DataDst::Field(self.u16()?, self.u32()?)),
            t => self.err(format!("bad DataDst tag {t}")),
        }
    }
    fn opt_u16(&mut self) -> Result<Option<u16>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u16()?)),
            t => self.err(format!("bad Option tag {t}")),
        }
    }
    fn opt_u32(&mut self) -> Result<Option<u32>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => self.err(format!("bad Option tag {t}")),
        }
    }
    fn opt_data_ref(&mut self) -> Result<Option<DataRef>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.data_ref()?)),
            t => self.err(format!("bad Option tag {t}")),
        }
    }
    fn rights(&mut self) -> Result<Rights, CodecError> {
        Ok(Rights::from_bits(self.u8()?))
    }
    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => self.err(format!("bad bool {t}")),
        }
    }
    fn alu_op(&mut self) -> Result<AluOp, CodecError> {
        const OPS: [AluOp; 16] = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Eq,
            AluOp::Ne,
            AluOp::Lt,
            AluOp::Le,
            AluOp::Gt,
            AluOp::Ge,
        ];
        let t = self.u8()? as usize;
        OPS.get(t)
            .copied()
            .ok_or(())
            .or_else(|()| self.err(format!("bad AluOp tag {t}")))
    }
}

fn alu_tag(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Shl => 8,
        AluOp::Shr => 9,
        AluOp::Eq => 10,
        AluOp::Ne => 11,
        AluOp::Lt => 12,
        AluOp::Le => 13,
        AluOp::Gt => 14,
        AluOp::Ge => 15,
    }
}

/// Serializes a program to the stable wire format.
pub fn encode_program(program: &[Instruction]) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(8 + program.len() * 8),
    };
    w.buf.extend_from_slice(MAGIC);
    w.u8(VERSION);
    w.u32(program.len() as u32);
    for &i in program {
        match i {
            Instruction::Mov { src, dst } => {
                w.u8(1);
                w.data_ref(src);
                w.data_dst(dst);
            }
            Instruction::Alu { op, a, b, dst } => {
                w.u8(2);
                w.u8(alu_tag(op));
                w.data_ref(a);
                w.data_ref(b);
                w.data_dst(dst);
            }
            Instruction::Jump(t) => {
                w.u8(3);
                w.u32(t);
            }
            Instruction::JumpIf { cond, when, target } => {
                w.u8(4);
                w.data_ref(cond);
                w.u8(u8::from(when));
                w.u32(target);
            }
            Instruction::MoveAd { src, dst } => {
                w.u8(5);
                w.u16(src);
                w.u16(dst);
            }
            Instruction::LoadAd { obj, index, dst } => {
                w.u8(6);
                w.u16(obj);
                w.data_ref(index);
                w.u16(dst);
            }
            Instruction::StoreAd { src, obj, index } => {
                w.u8(7);
                w.u16(src);
                w.u16(obj);
                w.data_ref(index);
            }
            Instruction::NullAd { dst } => {
                w.u8(8);
                w.u16(dst);
            }
            Instruction::Restrict { slot, keep } => {
                w.u8(9);
                w.u16(slot);
                w.u8(keep.bits());
            }
            Instruction::CreateObject {
                sro,
                data_len,
                access_len,
                dst,
            } => {
                w.u8(10);
                w.u16(sro);
                w.data_ref(data_len);
                w.data_ref(access_len);
                w.u16(dst);
            }
            Instruction::CreateTypedObject {
                sro,
                tdo,
                data_len,
                access_len,
                dst,
            } => {
                w.u8(11);
                w.u16(sro);
                w.u16(tdo);
                w.data_ref(data_len);
                w.data_ref(access_len);
                w.u16(dst);
            }
            Instruction::Amplify { slot, tdo, add } => {
                w.u8(12);
                w.u16(slot);
                w.u16(tdo);
                w.u8(add.bits());
            }
            Instruction::Call {
                domain,
                subprogram,
                arg,
                ret_ad,
                ret_val,
            } => {
                w.u8(13);
                w.u16(domain);
                w.u32(subprogram);
                w.opt_u16(arg);
                w.opt_u16(ret_ad);
                w.opt_u32(ret_val);
            }
            Instruction::Return { ad, value } => {
                w.u8(14);
                w.opt_u16(ad);
                w.opt_data_ref(value);
            }
            Instruction::Send { port, msg, key } => {
                w.u8(15);
                w.u16(port);
                w.u16(msg);
                w.data_ref(key);
            }
            Instruction::CondSend {
                port,
                msg,
                key,
                done,
            } => {
                w.u8(16);
                w.u16(port);
                w.u16(msg);
                w.data_ref(key);
                w.data_dst(done);
            }
            Instruction::Receive { port, dst } => {
                w.u8(17);
                w.u16(port);
                w.u16(dst);
            }
            Instruction::ReceiveTimeout { port, dst, timeout } => {
                w.u8(18);
                w.u16(port);
                w.u16(dst);
                w.data_ref(timeout);
            }
            Instruction::CondReceive { port, dst, done } => {
                w.u8(19);
                w.u16(port);
                w.u16(dst);
                w.data_dst(done);
            }
            Instruction::CopyData {
                src,
                src_off,
                dst,
                dst_off,
                len,
            } => {
                w.u8(20);
                w.u16(src);
                w.data_ref(src_off);
                w.u16(dst);
                w.data_ref(dst_off);
                w.data_ref(len);
            }
            Instruction::InspectAd { slot, dst } => {
                w.u8(21);
                w.u16(slot);
                w.data_dst(dst);
            }
            Instruction::ReadClock { dst } => {
                w.u8(22);
                w.data_dst(dst);
            }
            Instruction::Work { cycles } => {
                w.u8(23);
                w.u32(cycles);
            }
            Instruction::RaiseFault { code } => {
                w.u8(24);
                w.u16(code);
            }
            Instruction::Halt => w.u8(25),
        }
    }
    w.buf
}

/// Decodes a program image produced by [`encode_program`]. Strict: bad
/// magic, unknown tags, truncation and trailing bytes are all errors.
pub fn decode_program(bytes: &[u8]) -> Result<Vec<Instruction>, CodecError> {
    let mut r = Reader { buf: bytes, at: 0 };
    if r.take(4)? != MAGIC {
        return Err(CodecError {
            offset: 0,
            reason: "bad magic".into(),
        });
    }
    let v = r.u8()?;
    if v != VERSION {
        return r.err(format!("unsupported version {v}"));
    }
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let i = match r.u8()? {
            1 => Instruction::Mov {
                src: r.data_ref()?,
                dst: r.data_dst()?,
            },
            2 => Instruction::Alu {
                op: r.alu_op()?,
                a: r.data_ref()?,
                b: r.data_ref()?,
                dst: r.data_dst()?,
            },
            3 => Instruction::Jump(r.u32()?),
            4 => Instruction::JumpIf {
                cond: r.data_ref()?,
                when: r.bool()?,
                target: r.u32()?,
            },
            5 => Instruction::MoveAd {
                src: r.u16()?,
                dst: r.u16()?,
            },
            6 => Instruction::LoadAd {
                obj: r.u16()?,
                index: r.data_ref()?,
                dst: r.u16()?,
            },
            7 => Instruction::StoreAd {
                src: r.u16()?,
                obj: r.u16()?,
                index: r.data_ref()?,
            },
            8 => Instruction::NullAd { dst: r.u16()? },
            9 => Instruction::Restrict {
                slot: r.u16()?,
                keep: r.rights()?,
            },
            10 => Instruction::CreateObject {
                sro: r.u16()?,
                data_len: r.data_ref()?,
                access_len: r.data_ref()?,
                dst: r.u16()?,
            },
            11 => Instruction::CreateTypedObject {
                sro: r.u16()?,
                tdo: r.u16()?,
                data_len: r.data_ref()?,
                access_len: r.data_ref()?,
                dst: r.u16()?,
            },
            12 => Instruction::Amplify {
                slot: r.u16()?,
                tdo: r.u16()?,
                add: r.rights()?,
            },
            13 => Instruction::Call {
                domain: r.u16()?,
                subprogram: r.u32()?,
                arg: r.opt_u16()?,
                ret_ad: r.opt_u16()?,
                ret_val: r.opt_u32()?,
            },
            14 => Instruction::Return {
                ad: r.opt_u16()?,
                value: r.opt_data_ref()?,
            },
            15 => Instruction::Send {
                port: r.u16()?,
                msg: r.u16()?,
                key: r.data_ref()?,
            },
            16 => Instruction::CondSend {
                port: r.u16()?,
                msg: r.u16()?,
                key: r.data_ref()?,
                done: r.data_dst()?,
            },
            17 => Instruction::Receive {
                port: r.u16()?,
                dst: r.u16()?,
            },
            18 => Instruction::ReceiveTimeout {
                port: r.u16()?,
                dst: r.u16()?,
                timeout: r.data_ref()?,
            },
            19 => Instruction::CondReceive {
                port: r.u16()?,
                dst: r.u16()?,
                done: r.data_dst()?,
            },
            20 => Instruction::CopyData {
                src: r.u16()?,
                src_off: r.data_ref()?,
                dst: r.u16()?,
                dst_off: r.data_ref()?,
                len: r.data_ref()?,
            },
            21 => Instruction::InspectAd {
                slot: r.u16()?,
                dst: r.data_dst()?,
            },
            22 => Instruction::ReadClock { dst: r.data_dst()? },
            23 => Instruction::Work { cycles: r.u32()? },
            24 => Instruction::RaiseFault { code: r.u16()? },
            25 => Instruction::Halt,
            t => return r.err(format!("bad instruction tag {t}")),
        };
        out.push(i);
    }
    if r.at != bytes.len() {
        return r.err(format!("{} trailing bytes", bytes.len() - r.at));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_all_variants() -> Vec<Instruction> {
        vec![
            Instruction::Mov {
                src: DataRef::Imm(0xDEAD),
                dst: DataDst::Local(8),
            },
            Instruction::Alu {
                op: AluOp::Xor,
                a: DataRef::Local(0),
                b: DataRef::Field(5, 16),
                dst: DataDst::Field(6, 24),
            },
            Instruction::Jump(7),
            Instruction::JumpIf {
                cond: DataRef::Local(4),
                when: false,
                target: 2,
            },
            Instruction::MoveAd { src: 3, dst: 9 },
            Instruction::LoadAd {
                obj: 4,
                index: DataRef::Imm(1),
                dst: 10,
            },
            Instruction::StoreAd {
                src: 10,
                obj: 4,
                index: DataRef::Local(32),
            },
            Instruction::NullAd { dst: 11 },
            Instruction::Restrict {
                slot: 4,
                keep: Rights::READ | Rights::TYPE2,
            },
            Instruction::CreateObject {
                sro: 2,
                data_len: DataRef::Imm(64),
                access_len: DataRef::Imm(4),
                dst: 8,
            },
            Instruction::CreateTypedObject {
                sro: 2,
                tdo: 7,
                data_len: DataRef::Imm(16),
                access_len: DataRef::Imm(0),
                dst: 9,
            },
            Instruction::Amplify {
                slot: 9,
                tdo: 7,
                add: Rights::WRITE,
            },
            Instruction::Call {
                domain: 0,
                subprogram: 3,
                arg: Some(8),
                ret_ad: None,
                ret_val: Some(48),
            },
            Instruction::Return {
                ad: Some(5),
                value: Some(DataRef::Imm(1)),
            },
            Instruction::Send {
                port: 3,
                msg: 6,
                key: DataRef::Imm(0),
            },
            Instruction::CondSend {
                port: 3,
                msg: 6,
                key: DataRef::Local(0),
                done: DataDst::Local(8),
            },
            Instruction::Receive { port: 3, dst: 6 },
            Instruction::ReceiveTimeout {
                port: 3,
                dst: 6,
                timeout: DataRef::Imm(1000),
            },
            Instruction::CondReceive {
                port: 3,
                dst: 6,
                done: DataDst::Local(16),
            },
            Instruction::CopyData {
                src: 5,
                src_off: DataRef::Imm(0),
                dst: 6,
                dst_off: DataRef::Imm(8),
                len: DataRef::Imm(16),
            },
            Instruction::InspectAd {
                slot: 5,
                dst: DataDst::Local(24),
            },
            Instruction::ReadClock {
                dst: DataDst::Local(40),
            },
            Instruction::Work { cycles: 123 },
            Instruction::RaiseFault { code: 7 },
            Instruction::Halt,
        ]
    }

    #[test]
    fn round_trips_every_variant() {
        let p = sample_all_variants();
        let bytes = encode_program(&p);
        assert_eq!(decode_program(&bytes).unwrap(), p);
    }

    #[test]
    fn encoding_is_deterministic() {
        let p = sample_all_variants();
        assert_eq!(encode_program(&p), encode_program(&p));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_program(&[Instruction::Halt]);
        bytes[0] = b'x';
        assert!(decode_program(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        let bytes = encode_program(&sample_all_variants());
        assert!(decode_program(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_program(&extended).is_err());
    }

    #[test]
    fn rejects_unknown_tags() {
        let mut bytes = encode_program(&[Instruction::Halt]);
        let last = bytes.len() - 1;
        bytes[last] = 200;
        assert!(decode_program(&bytes).is_err());
    }
}
