//! The processor-memory interconnect abstraction.
//!
//! Paper §3: "With the bussing schemes designed for the 432, a factor of
//! 10 in total processing power of a single 432 system is realizable."
//! The GDP charges every instruction's memory traffic through this trait;
//! `i432-sim` provides the interleaved-bus contention model that
//! reproduces the scaling claim, while unit tests use the contention-free
//! [`NullInterconnect`].

/// A model of bus delay for shared-memory traffic.
pub trait Interconnect {
    /// Called once per instruction with the number of 4-byte words the
    /// instruction moved over the bus. Returns *additional wait cycles*
    /// the processor stalls beyond the base memory charge.
    ///
    /// `proc_id` identifies the requesting processor; `now` is its local
    /// cycle clock at the start of the access.
    fn access(&mut self, proc_id: u32, now: u64, words: u32) -> u64;
}

/// A contention-free interconnect (single-processor behaviour).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullInterconnect;

impl Interconnect for NullInterconnect {
    fn access(&mut self, _proc_id: u32, _now: u64, _words: u32) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_interconnect_never_stalls() {
        let mut n = NullInterconnect;
        assert_eq!(n.access(0, 0, 100), 0);
        assert_eq!(n.access(3, 1_000_000, 1), 0);
    }
}
