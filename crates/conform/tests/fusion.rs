//! Tier-1 smoke for the dispatch-specialization arms: seed replays
//! through the fused threaded runner (pre-decoded blocks,
//! superinstruction fusion, call/port-site inline caches) must be
//! invisible to the differential oracle — same digests, same counter,
//! same per-process verdicts as the deterministic reference and the
//! unfused arm. CI's `conform` job runs the full 256-seed sweep with
//! `--fusion both`; this is the slice sized for a 1-core test host.

use i432_conform::{
    check_seed_fusion, generate, run_threaded_sys_full, CacheModes, FusionModes, QueueModes,
    QUICK_MATRIX,
};

/// Seed replay, full quadruple product on the quick matrix: every
/// (matrix point × cache × queue × fusion) arm against the reference.
#[test]
fn fusion_arms_match_the_oracle() {
    for seed in 0..8 {
        let report = check_seed_fusion(
            seed,
            QUICK_MATRIX,
            CacheModes::Both,
            QueueModes::Both,
            FusionModes::Both,
        );
        assert!(
            report.passed(),
            "seed {seed} diverged:\n{}",
            report.mismatches.join("\n")
        );
    }
}

/// The fused arm is deterministic in the workload-visible sense: two
/// fused replays of one seed at one matrix point agree with each other.
#[test]
fn fused_replays_are_self_consistent() {
    for seed in [0, 5, 19] {
        let case = generate(seed);
        let (_, a) = run_threaded_sys_full(&case, 4, 2, true, true, true);
        let (_, b) = run_threaded_sys_full(&case, 4, 2, true, true, true);
        assert_eq!(a, b, "seed {seed}: fused replays diverged");
    }
}
