//! System-level checks for the port-ring fast path (the "queued ports"
//! subsystem): the lock-free per-port rings consulted ahead of the
//! shard locks must be observably indistinguishable from the locked
//! rendezvous path.
//!
//! The unit mechanics (wraparound, capacity, freeze/drain, concurrent
//! conservation) live in `i432_arch::portring`; this suite exercises
//! the *protocol* — ring lifecycle against the locked path, fallback on
//! full rings, seeded mixed-path interleavings, and the differential
//! oracle's queue arms. The trace assertions bite under `--features
//! trace` and hold vacuously otherwise.

use i432_arch::{ObjectSpec, PortDiscipline, Rights, SharedSpace, SpaceAccessExt};
use i432_conform::{check_seed_full, CacheModes, QueueModes, QUICK_MATRIX};
use i432_gdp::port::{self, RecvOutcome, SendOutcome};
use i432_sim::{System, SystemConfig};
use imax_ipc::create_port;

fn small_system() -> System {
    System::new(&SystemConfig::small().with_shards(4).with_processors(1))
}

/// The ring only exists after the locked path has created it, and only
/// accepts fast operations after the locked path has reopened it with
/// an empty message area (the FAST-mode invariant).
#[test]
fn fast_path_engages_only_after_the_locked_path_reopens_the_ring() {
    let mut sys = small_system();
    let root = sys.space.root_sro();
    let prt = create_port(&mut sys.space, root, 4, PortDiscipline::Fifo).expect("port fits");
    sys.space.port_ring_registry().set_enabled(true);

    let msg = sys
        .space
        .create_object(root, ObjectSpec::generic(8, 0))
        .expect("message fits");
    let msg_ad = sys.space.mint(msg, Rights::READ | Rights::WRITE);

    // No locked operation has touched the port yet: no ring, no fast path.
    assert_eq!(port::fast_send(&mut sys.space, prt.ad(), msg_ad, 0), None);

    // The locked send creates the ring but leaves it frozen — the
    // message area is non-empty, so FAST mode is off.
    imax_ipc::untyped::send(&mut sys.space, prt, msg_ad).expect("locked send");
    assert_eq!(port::fast_send(&mut sys.space, prt.ad(), msg_ad, 0), None);

    // The locked receive empties the area and reopens the ring.
    let got = imax_ipc::untyped::receive(&mut sys.space, prt).expect("locked receive");
    assert_eq!(got.map(|ad| ad.obj), Some(msg));

    // Now the fast path carries the rendezvous: Queued is exactly what
    // the locked path would answer in FAST mode.
    assert_eq!(
        port::fast_send(&mut sys.space, prt.ad(), msg_ad, 7),
        Some(SendOutcome::Queued)
    );
    match port::fast_receive(&mut sys.space, prt.ad()) {
        Some(RecvOutcome::Received(ad)) => assert_eq!(ad.obj, msg),
        other => panic!("expected a fast receive, got {other:?}"),
    }

    if i432_trace::ENABLED {
        let c = i432_trace::snapshot();
        assert!(c.get(i432_trace::Counter::PortFastSends) >= 1);
        assert!(c.get(i432_trace::Counter::PortFastReceives) >= 1);
        // Every fast op also counts as a semantic port op, so the
        // schedule-deterministic totals are path-independent.
        assert!(c.get(i432_trace::Counter::PortSends) >= c.get(i432_trace::Counter::PortFastSends));
    }
}

/// A full ring refuses the fast send and the locked fallback answers
/// with the canonical full-queue outcome — the fallback must never
/// invent capacity the rendezvous path would deny.
#[test]
fn full_ring_falls_back_to_the_locked_path_verdict() {
    let mut sys = small_system();
    let root = sys.space.root_sro();
    let prt = create_port(&mut sys.space, root, 2, PortDiscipline::Fifo).expect("port fits");
    sys.space.port_ring_registry().set_enabled(true);

    let mut ads = Vec::new();
    for _ in 0..3 {
        let m = sys
            .space
            .create_object(root, ObjectSpec::generic(8, 0))
            .expect("message fits");
        ads.push(sys.space.mint(m, Rights::READ | Rights::WRITE));
    }

    // Prime: locked send + receive puts the port in FAST mode.
    imax_ipc::untyped::send(&mut sys.space, prt, ads[0]).expect("prime send");
    imax_ipc::untyped::receive(&mut sys.space, prt).expect("prime receive");

    // Fill the ring to the port's logical capacity (2), not the ring's
    // physical slot count.
    assert_eq!(
        port::fast_send(&mut sys.space, prt.ad(), ads[0], 0),
        Some(SendOutcome::Queued)
    );
    assert_eq!(
        port::fast_send(&mut sys.space, prt.ad(), ads[1], 0),
        Some(SendOutcome::Queued)
    );
    // Third send: ring full → fast path refuses → locked path gives the
    // same answer a rendezvous-only build would (queue overflow).
    assert_eq!(port::fast_send(&mut sys.space, prt.ad(), ads[2], 0), None);
    assert!(
        imax_ipc::untyped::send(&mut sys.space, prt, ads[2]).is_err(),
        "locked fallback on a full port must report overflow"
    );

    // The two queued messages are still there, in order, via the locked
    // path (which drains the ring before looking at the area).
    let a = imax_ipc::untyped::receive(&mut sys.space, prt).expect("drain 1");
    let b = imax_ipc::untyped::receive(&mut sys.space, prt).expect("drain 2");
    assert_eq!(a.map(|ad| ad.obj), Some(ads[0].obj));
    assert_eq!(b.map(|ad| ad.obj), Some(ads[1].obj));
}

/// Seeded schedule exploration of queue-vs-rendezvous ordering: two
/// producers and one consumer hammer one port over real threads, each
/// operation choosing the fast or locked path by a seeded coin. Every
/// message must arrive exactly once and the port must end empty — the
/// mixed schedule may reorder *between* producers but can neither lose,
/// duplicate, nor invent a message.
#[test]
fn seeded_mixed_path_interleavings_conserve_messages() {
    const PRODUCERS: usize = 2;
    const PER_PRODUCER: usize = 100;
    for seed in [1u64, 7, 23] {
        let mut sys = small_system();
        let root = sys.space.root_sro();
        let prt = create_port(&mut sys.space, root, 8, PortDiscipline::Fifo).expect("port fits");
        sys.space.port_ring_registry().set_enabled(true);

        let mut batches = Vec::new();
        let mut sent = std::collections::HashSet::new();
        for _ in 0..PRODUCERS {
            let mut ads = Vec::new();
            for _ in 0..PER_PRODUCER {
                let m = sys
                    .space
                    .create_object(root, ObjectSpec::generic(8, 0))
                    .expect("message fits");
                let ad = sys.space.mint(m, Rights::READ | Rights::WRITE);
                sent.insert(ad.obj);
                ads.push(ad);
            }
            batches.push(ads);
        }
        // Prime FAST mode before the threads race.
        imax_ipc::untyped::send(&mut sys.space, prt, batches[0][0]).expect("prime");
        imax_ipc::untyped::receive(&mut sys.space, prt).expect("prime");

        let space = std::mem::replace(
            &mut sys.space,
            i432_arch::ShardedSpace::new(4096, 64, 16, 1),
        );
        let shared = SharedSpace::new(space);
        let received = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (p, ads) in batches.iter().enumerate() {
                let shared = &shared;
                scope.spawn(move || {
                    let mut agent = shared.agent();
                    // Deterministic per-thread LCG picks the path.
                    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (p as u64 + 1);
                    for &ad in ads {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        loop {
                            let fast = (x >> 33) & 1 == 0;
                            let ok = if fast {
                                port::fast_send(&mut agent, prt.ad(), ad, 0).is_some()
                            } else {
                                // The locked path needs the all-shard
                                // atomic section, exactly as the SEND
                                // instruction's slow path takes it.
                                agent
                                    .atomically(|sm| imax_ipc::untyped::send(sm, prt, ad))
                                    .is_ok()
                            };
                            if ok {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let shared = &shared;
            let received = &received;
            scope.spawn(move || {
                let mut agent = shared.agent();
                let mut got = Vec::new();
                let mut x = seed ^ 0xdead_beef;
                while got.len() < PRODUCERS * PER_PRODUCER {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let fast = (x >> 33) & 1 == 0;
                    let msg = if fast {
                        match port::fast_receive(&mut agent, prt.ad()) {
                            Some(RecvOutcome::Received(m)) => Some(m),
                            _ => None,
                        }
                    } else {
                        agent
                            .atomically(|sm| imax_ipc::untyped::receive(sm, prt))
                            .expect("locked receive")
                    };
                    match msg {
                        Some(m) => got.push(m.obj),
                        None => std::thread::yield_now(),
                    }
                }
                received.lock().unwrap().extend(got);
            });
        });
        sys.space = shared.into_inner();
        port::flush_rings(&mut sys.space).expect("quiesced flush");

        let got = received.into_inner().unwrap();
        let unique: std::collections::HashSet<_> = got.iter().copied().collect();
        assert_eq!(
            got.len(),
            PRODUCERS * PER_PRODUCER,
            "seed {seed}: lost messages"
        );
        assert_eq!(unique.len(), got.len(), "seed {seed}: duplicated messages");
        assert!(
            unique.is_subset(&sent),
            "seed {seed}: received a message nobody sent"
        );
        // Port drained: one more locked receive sees an empty queue.
        assert_eq!(
            imax_ipc::untyped::receive(&mut sys.space, prt).expect("final receive"),
            None,
            "seed {seed}: port not empty after conservation check"
        );
    }
}

/// The differential oracle's queue arms: queued and locked runs of the
/// same generated case must both be bit-identical to the deterministic
/// reference. (The fuzz binary sweeps this over hundreds of seeds and
/// the full matrix; this is the tier-1 sentinel.)
#[test]
fn queued_and_locked_arms_agree_with_the_reference() {
    for seed in [11u64, 42] {
        let r = check_seed_full(seed, QUICK_MATRIX, CacheModes::On, QueueModes::Both);
        assert!(r.passed(), "{:#?}", r.mismatches);
    }
}
