//! Huge-table conformance: the demand-grown two-level directory under
//! allocation patterns no generated *program* can produce (the ISA has
//! no destroy instruction), driven through the space API directly.
//!
//! Three families from the acceptance criteria:
//!
//! * **sparse high indices** — a table whose few survivors sit on late
//!   leaf pages must enumerate exactly them, in ascending index order,
//!   at a cost bounded by allocated pages;
//! * **near-ceiling allocation** — the per-space capacity ceiling faults
//!   `TableExhausted` at exactly the configured limit, and reclaiming
//!   reopens exactly that many slots;
//! * **reclaim/reinstall churn across leaf pages** — a seeded
//!   create/destroy storm produces the identical success/failure
//!   pattern and identical (slot, generation) end state on 1 shard and
//!   on 4, because install/reclaim semantics are per-shard-table and
//!   the harness keeps per-shard capacity constant.

use i432_arch::{ArchError, ObjectRef, ObjectSpec, ShardedSpace, SpaceMut};
use rand::{rngs::StdRng, RngExt, SeedableRng};

const LEAF: u32 = i432_arch::object_table::LEAF_ENTRIES;

/// A space whose (single-SRO-visible) shard spans four leaf pages, with
/// per-shard capacity constant across shard counts — the same scaling
/// rule the differential oracle uses.
fn sharded(shards: u32) -> ShardedSpace {
    ShardedSpace::new(64 * 1024 * shards, 4096 * shards, 4 * LEAF * shards, shards)
}

/// Shard-local slot of a global index in shard 0 (offset 0, stride n).
fn slot_of(r: ObjectRef, shards: u32) -> u32 {
    assert_eq!(r.index.0 % shards, 0, "root-SRO objects live in shard 0");
    r.index.0 / shards
}

#[test]
fn sparse_high_indices_enumerate_exactly() {
    let mut s = sharded(1);
    let root = s.root_sro();
    let boot = SpaceMut::live_count(&s);

    // Fill three and a half pages, then reclaim everything except every
    // 512th object — survivors end up spread across all four pages.
    let objs: Vec<ObjectRef> = (0..(3 * LEAF + LEAF / 2))
        .map(|_| s.create_object(root, ObjectSpec::generic(0, 0)).unwrap())
        .collect();
    let mut survivors = Vec::new();
    for (i, r) in objs.iter().enumerate() {
        if i % 512 == 0 {
            survivors.push(*r);
        } else {
            s.destroy_object(*r).unwrap();
        }
    }
    assert_eq!(SpaceMut::live_count(&s), boot + survivors.len() as u32);

    // for_each_live sees exactly boot objects + survivors, ascending.
    let mut seen = Vec::new();
    s.for_each_live(&mut |i, e| seen.push((i.0, e.generation)));
    assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "ascending order");
    let expected: Vec<u32> = survivors.iter().map(|r| r.index.0).collect();
    let seen_mine: Vec<u32> = seen
        .iter()
        .map(|(i, _)| *i)
        .filter(|i| expected.contains(i))
        .collect();
    assert_eq!(seen_mine, expected, "survivors enumerate exactly once");
    assert_eq!(seen.len() as u32, boot + survivors.len() as u32);

    // The window walk's page-probe count is bounded by allocated pages.
    let end = s.index_space_end();
    let mut n = 0u32;
    let pages = s.for_live_in_range(0, end, &mut |_, _| n += 1);
    assert_eq!(n as usize, seen.len());
    assert!(
        pages <= SpaceMut::leaf_pages(&s),
        "probed {pages} pages with only {} allocated",
        SpaceMut::leaf_pages(&s)
    );

    // Every survivor still qualifies; every reclaimed ref faults.
    for r in &survivors {
        assert!(s.entry(*r).is_ok());
    }
    for (i, r) in objs.iter().enumerate() {
        if i % 512 != 0 {
            assert!(matches!(
                s.entry(*r),
                Err(ArchError::FreeEntry(_) | ArchError::StaleRef(_))
            ));
        }
    }
}

#[test]
fn near_ceiling_allocation_faults_at_exactly_the_limit() {
    let mut s = sharded(1);
    let root = s.root_sro();
    let boot = SpaceMut::live_count(&s);
    let capacity = 4 * LEAF - boot;

    let mut objs = Vec::new();
    for _ in 0..capacity {
        objs.push(s.create_object(root, ObjectSpec::generic(0, 0)).unwrap());
    }
    assert!(
        matches!(
            s.create_object(root, ObjectSpec::generic(0, 0)),
            Err(ArchError::TableExhausted)
        ),
        "slot {} must trip the ceiling",
        4 * LEAF
    );

    // Reclaim a handful from middle pages; exactly that many reopen.
    for r in objs.iter().skip(LEAF as usize + 100).take(5) {
        s.destroy_object(*r).unwrap();
    }
    for _ in 0..5 {
        s.create_object(root, ObjectSpec::generic(0, 0)).unwrap();
    }
    assert!(matches!(
        s.create_object(root, ObjectSpec::generic(0, 0)),
        Err(ArchError::TableExhausted)
    ));
    assert_eq!(SpaceMut::live_count(&s), 4 * LEAF);
    assert_eq!(SpaceMut::leaf_pages(&s), 4, "the whole directory is built");
}

/// One seeded churn run: the success/failure pattern of every op plus
/// the final (shard-local slot, generation) population of shard 0.
fn churn(shards: u32, seed: u64, ops: u32) -> (Vec<bool>, Vec<(u32, u32)>) {
    let mut s = sharded(shards);
    let root = s.root_sro();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<ObjectRef> = Vec::new();
    let mut pattern = Vec::new();
    for _ in 0..ops {
        // Create-biased: the net drift (~0.4 objects/op) is enough to
        // reach the four-page ceiling well within the op budget.
        if live.is_empty() || rng.random_bool(0.7) {
            match s.create_object(root, ObjectSpec::generic(0, 0)) {
                Ok(r) => {
                    live.push(r);
                    pattern.push(true);
                }
                Err(ArchError::TableExhausted) => pattern.push(false),
                Err(e) => panic!("only the ceiling may fault a churn create: {e:?}"),
            }
        } else {
            let k = rng.random_range(0usize..live.len());
            s.destroy_object(live.swap_remove(k)).unwrap();
            pattern.push(true);
        }
    }
    // Maintained counters reconcile against a full directory scan.
    for k in 0..shards {
        s.shard(k).table.debug_validate();
    }
    let mut end_state: Vec<(u32, u32)> = live
        .iter()
        .map(|r| (slot_of(*r, shards), r.generation))
        .collect();
    end_state.sort_unstable();
    (pattern, end_state)
}

#[test]
fn churn_across_leaf_pages_is_shard_count_independent() {
    for seed in [7u64, 21, 1234] {
        let (p1, e1) = churn(1, seed, 20_000);
        let (p4, e4) = churn(4, seed, 20_000);
        assert_eq!(
            p1, p4,
            "seed {seed}: op outcomes diverged across shard counts"
        );
        assert_eq!(
            e1, e4,
            "seed {seed}: end states diverged across shard counts"
        );
        assert!(
            p1.iter().any(|ok| !ok),
            "seed {seed}: churn is meant to bounce off the ceiling"
        );
        assert!(
            e1.iter().any(|(slot, _)| *slot >= LEAF),
            "seed {seed}: churn is meant to cross leaf pages"
        );
        assert!(
            e1.iter().any(|(_, generation)| *generation > 0),
            "seed {seed}: churn is meant to reuse slots"
        );
    }
}
