//! Tier-1 differential smoke: a slice of the fuzz space small enough for
//! test time on a 1-core host. CI's `conform` job runs the full 256-seed
//! sweep over the {1,4,16} × {1,4,8} matrix via the `conform_fuzz` bin.

use i432_conform::{
    check_seed, gen::generate, oracle::run_deterministic, replay_command, QUICK_MATRIX,
};

#[test]
fn fuzz_seeds_match_deterministic_quick() {
    for seed in 0..12 {
        let report = check_seed(seed, QUICK_MATRIX);
        assert!(
            report.passed(),
            "seed {seed} diverged:\n{}",
            report.mismatches.join("\n")
        );
    }
}

#[test]
fn reference_arm_is_self_consistent() {
    // Two reference runs of the same seed must agree bit-for-bit — if
    // they don't, the oracle has no baseline to differ from.
    for seed in [0, 7, 23] {
        let case = generate(seed);
        assert_eq!(
            run_deterministic(&case),
            run_deterministic(&case),
            "seed {seed}"
        );
    }
}

#[test]
fn counter_matches_generator_prediction() {
    for seed in 0..8 {
        let case = generate(seed);
        let got = run_deterministic(&case);
        assert_eq!(
            got.counter,
            case.expected_counter(),
            "seed {seed}: the mutex protocol lost or duplicated updates"
        );
    }
}

#[test]
fn faulty_processes_report_their_faults() {
    // Find seeds whose cases include deliberate faults and check the
    // reference arm records a nonzero fault code for exactly those
    // processes, with everyone else terminating cleanly.
    let mut checked = 0;
    for seed in 0..64 {
        let case = generate(seed);
        if !case.processes.iter().any(|p| p.faulty) {
            continue;
        }
        let got = run_deterministic(&case);
        for (i, p) in case.processes.iter().enumerate() {
            let (status, fault_code) = got.proc_states[i];
            if p.faulty {
                assert_ne!(
                    fault_code, 0,
                    "seed {seed} process {i} ({:?}) should fault",
                    p.fault_name
                );
            } else {
                assert_eq!(
                    fault_code, 0,
                    "seed {seed} process {i} faulted unexpectedly"
                );
                assert_eq!(status, 6, "seed {seed} process {i} should terminate");
            }
        }
        checked += 1;
        if checked >= 6 {
            return;
        }
    }
    assert!(checked > 0, "no faulty case in the first 64 seeds");
}

#[test]
fn replay_command_names_the_seed() {
    let cmd = replay_command(42);
    assert!(cmd.contains("--seed 42"), "{cmd}");
    assert!(cmd.contains("conform_fuzz"), "{cmd}");
}
