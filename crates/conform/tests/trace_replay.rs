//! Replay determinism of the traced explorer: two runs of the same
//! seeded schedule must merge to the identical timeline.
//!
//! Worker `w` of the explorer stamps its records with processor id
//! `w + 1` and the operation number as the simulated cycle, so every
//! per-processor event stream is a pure function of the seed. The merge
//! rule (cycle, cpu, seq, kind, obj) is a pure function of record
//! values — therefore the merged `replay_view` (the projection to
//! schedule-deterministic event kinds) must be bit-identical across
//! replays, no matter how the host scheduler interleaved the threads.
//!
//! The suite runs in both feature configurations: without `trace` the
//! timelines are empty and equality holds trivially; CI runs it with
//! `--features trace` where the assertions bite.

use i432_conform::{explore_traced, ExploreConfig};
use i432_trace::EventKind;

#[test]
fn replaying_a_seed_reproduces_the_merged_timeline() {
    let _guard = i432_trace::test_guard();
    for seed in [3u64, 17] {
        let cfg = ExploreConfig::smoke(seed);
        let (r1, t1) = explore_traced(&cfg).unwrap_or_else(|e| panic!("{e}"));
        let (r2, t2) = explore_traced(&cfg).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r1, r2, "seed {seed}: reports diverged");
        assert_eq!(
            t1.replay_view(),
            t2.replay_view(),
            "seed {seed}: two replays of the same explorer schedule merged \
             to different timelines"
        );
        assert_eq!(t1.dropped, 0, "seed {seed}: ring overflow in replay 1");
        assert_eq!(t2.dropped, 0, "seed {seed}: ring overflow in replay 2");
        if i432_trace::ENABLED {
            // Non-vacuity: the timeline really carries the lock traffic
            // the explorer hammers (single, paired, and all-shard).
            assert!(
                !t1.of_kind(EventKind::ShardLockPair).is_empty(),
                "seed {seed}"
            );
            assert!(
                !t1.of_kind(EventKind::ShardLockAll).is_empty(),
                "seed {seed}"
            );
        }
    }
    i432_trace::reset();
}

#[test]
fn different_seeds_trace_different_schedules() {
    let _guard = i432_trace::test_guard();
    if !i432_trace::ENABLED {
        return;
    }
    let (_, ta) = explore_traced(&ExploreConfig::smoke(1)).unwrap_or_else(|e| panic!("{e}"));
    let (_, tb) = explore_traced(&ExploreConfig::smoke(2)).unwrap_or_else(|e| panic!("{e}"));
    assert_ne!(
        ta.replay_view(),
        tb.replay_view(),
        "distinct seeds drive distinct operation streams"
    );
    i432_trace::reset();
}
