//! Schedule-explorer smoke: seeded cross-shard lock-pair hammering must
//! complete (deadlock-free), actually exercise the two-lock path, and
//! leave a space whose per-shard accounting and structural invariants
//! hold.

use i432_conform::{explore, ExploreConfig};
use std::time::Duration;

#[test]
fn exploration_is_deadlock_free_across_seeds() {
    for seed in 0..3 {
        let report = explore(&ExploreConfig::smoke(seed)).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.ops, 4 * 2_000, "seed {seed}");
    }
}

#[test]
fn exploration_exercises_cross_shard_pairs_and_atomics() {
    let report = explore(&ExploreConfig::smoke(11)).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        report.cross_shard_pairs > 0,
        "no cross-shard pair was ever locked: {report:?}"
    );
    assert!(
        report.atomic_sections > 0,
        "no all-shard atomic section ran: {report:?}"
    );
}

#[test]
fn exploration_scales_to_more_stripes_and_workers() {
    let cfg = ExploreConfig {
        seed: 5,
        shards: 8,
        workers: 8,
        ops_per_worker: 1_000,
        timeout: Duration::from_secs(60),
    };
    let report = explore(&cfg).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(report.ops, 8 * 1_000);
    assert!(report.cross_shard_pairs > 0);
}
