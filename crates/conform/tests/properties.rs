//! Property tests for kernel invariants, driven by the generated
//! workloads: rights amplification is gated on the amplify right,
//! generated runs leave structurally sound spaces, per-shard accounting
//! sums to the merged view, and the tricolor invariant survives a mark
//! phase over a fuzz-built heap.

use i432_arch::{check_invariants, sysobj::CTX_SLOT_SRO, ProcessStatus, Rights, SpaceStats};
use i432_conform::gen::generate;
use i432_conform::oracle::{run_deterministic_sys, run_threaded_sys};
use i432_gdp::isa::{DataDst, DataRef};
use i432_gdp::ProgramBuilder;
use i432_sim::{System, SystemConfig};
use imax_gc::{check_tricolor, Collector, GcPhase};
use imax_typemgr::create_tdo;

/// Context slot the amplification programs find the TDO in.
const S_TDO: u16 = 8;
/// Context slot the typed instance lands in.
const S_OBJ: u16 = 9;

/// Builds a system running one process that creates a typed instance,
/// restricts its own AD for it to READ, then amplifies WRITE back and
/// proves it by writing — poking `tdo_rights` into the TDO slot.
fn run_amplify_program(tdo_rights: Rights) -> (ProcessStatus, u16) {
    let mut sys = System::new(&SystemConfig::small());
    let root = sys.space.root_sro();
    let tdo_ad = create_tdo(&mut sys.space, root, "conform-type").expect("tdo fits");
    sys.anchor(tdo_ad);
    // A fault port keeps a faulted process observable as `Faulted`
    // (without one, fault delivery terminates it).
    let fault_port =
        imax_ipc::create_port(&mut sys.space, root, 4, i432_arch::PortDiscipline::Fifo)
            .expect("fault port fits");
    sys.anchor(fault_port.ad());

    let mut p = ProgramBuilder::new();
    p.create_typed_object(
        CTX_SLOT_SRO as u16,
        S_TDO,
        DataRef::Imm(16),
        DataRef::Imm(0),
        S_OBJ,
    );
    p.restrict(S_OBJ, Rights::READ);
    p.amplify(S_OBJ, S_TDO, Rights::WRITE);
    p.mov(DataRef::Imm(7), DataDst::Field(S_OBJ, 0));
    p.halt();
    let sub = sys.subprogram("amplifier", p.finish(), 64, 16);
    let dom = sys.install_domain("typed", vec![sub], 0);
    let mut spec = i432_gdp::process::ProcessSpec::new(sys.dispatch_ad());
    spec.fault_port = Some(fault_port.ad());
    let proc_ref = sys.spawn_with(dom, 0, None, spec);
    let ctx = sys
        .space
        .load_ad_hw(proc_ref, i432_arch::sysobj::PROC_SLOT_CONTEXT)
        .unwrap()
        .unwrap()
        .obj;
    sys.space
        .store_ad_hw(ctx, u32::from(S_TDO), Some(tdo_ad.restricted(tdo_rights)))
        .unwrap();
    sys.run_to_quiescence(1_000_000);
    let ps = sys.space.process(proc_ref).unwrap();
    (ps.status, ps.fault_code)
}

#[test]
fn amplify_requires_the_amplify_right() {
    // With the full type-manager rights the program terminates cleanly.
    let (status, fault) = run_amplify_program(Rights::ALL);
    assert_eq!(status, ProcessStatus::Terminated, "fault code {fault}");
    assert_eq!(fault, 0);

    // Without AMPLIFY the amplification itself must rights-fault: a
    // restriction would be meaningless if any holder could undo it.
    let (status, fault) = run_amplify_program(Rights::READ | Rights::CREATE_INSTANCE);
    assert_eq!(status, ProcessStatus::Faulted);
    assert_ne!(fault, 0, "amplify without the right must fault");
}

#[test]
fn generated_runs_leave_sound_spaces() {
    for seed in 0..16 {
        let case = generate(seed);
        let (sys, _) = run_deterministic_sys(&case);
        let problems = check_invariants(&sys.space);
        assert!(problems.is_empty(), "seed {seed}: {problems:?}");
    }
}

#[test]
fn threaded_runs_leave_sound_spaces() {
    for seed in 0..6 {
        let case = generate(seed);
        let (sys, _) = run_threaded_sys(&case, 4, 4);
        let problems = check_invariants(&sys.space);
        assert!(problems.is_empty(), "seed {seed}: {problems:?}");
    }
}

#[test]
fn per_shard_stats_sum_to_the_merged_view() {
    for seed in [3u64, 9] {
        let case = generate(seed);
        let (sys, _) = run_threaded_sys(&case, 4, 4);
        let merged = sys.space.stats();
        let mut summed = SpaceStats::default();
        for k in 0..sys.space.shard_count() {
            summed.merge(&sys.space.stats_of_shard(k));
        }
        assert_eq!(summed, merged, "seed {seed}");
    }
}

#[test]
fn tricolor_invariant_holds_marking_a_fuzz_built_heap() {
    // Run a generated workload, then drive a full mark phase over the
    // resulting object graph, checking the black-to-white exclusion
    // after every collector increment.
    let case = generate(4);
    let (sys, _) = run_deterministic_sys(&case);
    let mut space = sys.space;
    let mut gc = Collector::new();
    gc.start_cycle(&mut space).expect("cycle starts");
    let mut steps = 0;
    while gc.phase() == GcPhase::Mark {
        gc.step(&mut space).expect("mark step");
        steps += 1;
        let v = check_tricolor(&mut space);
        assert!(v.is_empty(), "after mark step {steps}: {v:?}");
        assert!(steps < 100_000, "mark did not terminate");
    }
    assert!(steps > 0);
}
