//! Seeded, deterministic generation of GDP conformance programs.
//!
//! A generated *case* is a small multiprocess workload: each process runs
//! a distinct program that (1) builds and mutates a private object graph
//! through the checked ISA paths — creation, data movement, AD movement,
//! rights restriction, inspection — then (2) optionally raises exactly one
//! deliberate fault, then (3) joins a token-mutex protocol bumping a
//! shared counter by a per-process delta, and finally (4) publishes its
//! private checksum and a rights-restricted view of its graph into an
//! output object the oracle digests.
//!
//! The generator tracks a model of every context slot it touches (object
//! size, access-part occupancy, remaining rights), so the *non*-fault
//! phases are fault-free by construction and the fault phase faults at a
//! fixed instruction. That makes every program's end state a pure
//! function of the seed — independent of scheduling — which is exactly
//! what the differential oracle needs: private state commutes trivially,
//! the shared counter is a sum of commuting increments under a port
//! mutex, and the token parks back in the port either way.

use i432_arch::{sysobj::CTX_SLOT_ARG, sysobj::CTX_SLOT_SRO, Rights};
use i432_gdp::isa::{AluOp, DataDst, DataRef, Instruction};
use i432_gdp::ProgramBuilder;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::HashMap;

/// Context slot the harness pokes with the per-process output object.
pub const S_OUT: u16 = 4;
/// Context slot the harness pokes with the shared counter cell.
pub const S_SHARED: u16 = 5;
/// Context slot the mutex token is received into.
pub const S_TOKEN: u16 = 6;
/// Context slot the harness pokes with a deep (short-lived-level) object.
pub const S_DEEP: u16 = 7;
/// First of the work slots the generator allocates into.
const S_WORK0: u16 = 8;
/// Number of work slots.
const N_WORK: u16 = 6;
/// Scratch slot for restrict-a-copy sequences.
const S_SCRATCH: u16 = 14;
/// Reserved slot that is *never* written: reads through it null-fault.
pub const S_NULL: u16 = 15;
/// Context slot the harness pokes with a per-process *tight* SRO whose
/// object-table quota is [`TIGHT_QUOTA`] (the table-ceiling fault
/// family allocates through it until it trips).
pub const S_TIGHT: u16 = 16;
/// Object-table quota of the tight SRO in [`S_TIGHT`].
pub const TIGHT_QUOTA: u32 = 6;
/// Access-part slots every generated context needs.
pub const CTX_ACCESS: u32 = 17;
/// Data-part bytes every generated context needs.
pub const CTX_DATA: u32 = 64;
/// Access-part slots of each per-process output object.
pub const OUT_ACCESS: u32 = 4;

const L_CHK: u32 = 0; // running checksum local
const L_TMP: u32 = 8; // scratch local
const L_ROUND: u32 = 16; // mutex round counter
const L_CMP: u32 = 24; // loop comparison result

/// One generated process program plus what the oracle needs to know
/// about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenProcess {
    /// The instruction body.
    pub program: Vec<Instruction>,
    /// Whether the program deliberately faults (before the mutex phase).
    pub faulty: bool,
    /// Human-readable name of the injected fault, if any.
    pub fault_name: Option<&'static str>,
    /// Per-round increment this process applies to the shared counter
    /// (zero when faulty — it never reaches the mutex phase).
    pub delta: u64,
}

/// A complete generated conformance case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenCase {
    /// The seed that produced this case.
    pub seed: u64,
    /// One program per process, in spawn order.
    pub processes: Vec<GenProcess>,
    /// Mutex rounds each non-faulty process performs.
    pub rounds: u64,
}

impl GenCase {
    /// The shared-counter value every conforming run must end with.
    pub fn expected_counter(&self) -> u64 {
        self.processes
            .iter()
            .filter(|p| !p.faulty)
            .map(|p| p.delta * self.rounds)
            .sum()
    }
}

/// Generator model of an access descriptor held in a context work slot:
/// the object's generator-assigned identity and shape, plus the rights
/// *this particular AD* carries (copies of one object can differ).
#[derive(Debug, Clone, Copy)]
struct ObjModel {
    /// Generator-unique object identity. Two slots may alias one object
    /// (a slot's AD stored into a reachable container and loaded back
    /// elsewhere), so occupancy must be keyed by identity, never by the
    /// slot name — a store through one alias is visible through all.
    id: u32,
    data_len: u32,
    access_len: u32,
    rights: Rights,
}

/// Per-program generation state: the slot models plus which access-part
/// indices of which *objects* are known to be filled, and with what.
struct Model {
    slots: [Option<ObjModel>; N_WORK as usize],
    filled: HashMap<(u32, u32), ObjModel>,
    next_id: u32,
}

impl Model {
    fn new() -> Model {
        Model {
            slots: [None; N_WORK as usize],
            filled: HashMap::new(),
            next_id: 0,
        }
    }

    fn get(&self, slot: u16) -> Option<ObjModel> {
        self.slots[(slot - S_WORK0) as usize]
    }

    fn set(&mut self, slot: u16, m: Option<ObjModel>) {
        self.slots[(slot - S_WORK0) as usize] = m;
    }

    fn fresh_id(&mut self) -> u32 {
        self.next_id += 1;
        self.next_id
    }

    fn pick_slot(&self, rng: &mut StdRng, pred: impl Fn(&ObjModel) -> bool) -> Option<u16> {
        let eligible: Vec<u16> = (0..N_WORK)
            .filter_map(|i| {
                let slot = S_WORK0 + i;
                self.slots[i as usize].filter(&pred).map(|_| slot)
            })
            .collect();
        if eligible.is_empty() {
            None
        } else {
            Some(eligible[rng.random_range(0usize..eligible.len())])
        }
    }

    /// A loadable entry: a readable container slot together with a
    /// known-filled index of the object it currently names.
    fn pick_load(&self, rng: &mut StdRng) -> Option<(u16, u32, ObjModel)> {
        let mut eligible: Vec<(u16, u32)> = Vec::new();
        for i in 0..N_WORK {
            let slot = S_WORK0 + i;
            let Some(m) = self.slots[i as usize] else {
                continue;
            };
            if !m.rights.contains(Rights::READ) {
                continue;
            }
            for &(id, idx) in self.filled.keys() {
                if id == m.id {
                    eligible.push((slot, idx));
                }
            }
        }
        if eligible.is_empty() {
            return None;
        }
        // HashMap iteration order is not deterministic across runs; sort
        // so the same seed always picks the same entry.
        eligible.sort_unstable();
        let (slot, idx) = eligible[rng.random_range(0usize..eligible.len())];
        let id = self.get(slot).expect("eligible slot is live").id;
        Some((slot, idx, self.filled[&(id, idx)]))
    }
}

/// Emits one CreateObject into a random work slot and updates the model.
fn emit_create(p: &mut ProgramBuilder, rng: &mut StdRng, model: &mut Model) {
    let slot = S_WORK0 + rng.random_range(0u16..N_WORK);
    let data_len = 8 * rng.random_range(1u32..8);
    let access_len = rng.random_range(0u32..4);
    p.create_object(
        CTX_SLOT_SRO as u16,
        DataRef::Imm(u64::from(data_len)),
        DataRef::Imm(u64::from(access_len)),
        slot,
    );
    let id = model.fresh_id();
    model.set(
        slot,
        Some(ObjModel {
            id,
            data_len,
            access_len,
            rights: Rights::ALL,
        }),
    );
}

/// Emits the private-graph phase: `n_ops` model-guarded operations.
fn emit_private_ops(p: &mut ProgramBuilder, rng: &mut StdRng, model: &mut Model, n_ops: u32) {
    const FOLD_OPS: [AluOp; 6] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
    ];
    for _ in 0..n_ops {
        match rng.random_range(0u32..100) {
            // Create a fresh object.
            0..18 => emit_create(p, rng, model),
            // Write an immediate into a writable object.
            18..36 => match model.pick_slot(rng, |m| m.rights.contains(Rights::WRITE)) {
                Some(slot) => {
                    let m = model.get(slot).expect("picked slot is live");
                    let off = 8 * rng.random_range(0u32..m.data_len / 8);
                    let v = rng.random_range(0u64..1 << 32);
                    p.mov(DataRef::Imm(v), DataDst::Field(slot, off));
                }
                None => emit_create(p, rng, model),
            },
            // Read a readable object and fold into the checksum.
            36..52 => match model.pick_slot(rng, |m| m.rights.contains(Rights::READ)) {
                Some(slot) => {
                    let m = model.get(slot).expect("picked slot is live");
                    let off = 8 * rng.random_range(0u32..m.data_len / 8);
                    p.mov(DataRef::Field(slot, off), DataDst::Local(L_TMP));
                    p.alu(
                        AluOp::Xor,
                        DataRef::Local(L_CHK),
                        DataRef::Local(L_TMP),
                        DataDst::Local(L_CHK),
                    );
                }
                None => emit_create(p, rng, model),
            },
            // Store one held AD into a writable container.
            52..62 => {
                let container = model.pick_slot(rng, |m| {
                    m.rights.contains(Rights::WRITE) && m.access_len > 0
                });
                let src = model.pick_slot(rng, |_| true);
                match (container, src) {
                    (Some(c), Some(s)) => {
                        let cm = model.get(c).expect("picked slot is live");
                        let sm = model.get(s).expect("picked slot is live");
                        let idx = rng.random_range(0u32..cm.access_len);
                        p.store_ad(s, c, DataRef::Imm(u64::from(idx)));
                        model.filled.insert((cm.id, idx), sm);
                    }
                    _ => emit_create(p, rng, model),
                }
            }
            // Load a known-filled AD back into a work slot.
            62..70 => match model.pick_load(rng) {
                Some((c, idx, stored)) => {
                    let dst = S_WORK0 + rng.random_range(0u16..N_WORK);
                    p.load_ad(c, DataRef::Imm(u64::from(idx)), dst);
                    model.set(dst, Some(stored));
                }
                None => emit_create(p, rng, model),
            },
            // Restrict a copy and store the weakened AD somewhere: the
            // digest is sensitive to edge rights, so this is the case
            // that catches a runner dropping or widening a restriction.
            70..78 => {
                let src = model.pick_slot(rng, |_| true);
                let container = model.pick_slot(rng, |m| {
                    m.rights.contains(Rights::WRITE) && m.access_len > 0
                });
                match (src, container) {
                    (Some(s), Some(c)) => {
                        let sm = model.get(s).expect("picked slot is live");
                        let cm = model.get(c).expect("picked slot is live");
                        let keep = if rng.random_bool(0.5) {
                            Rights::READ
                        } else {
                            Rights::READ | Rights::WRITE
                        };
                        let idx = rng.random_range(0u32..cm.access_len);
                        p.move_ad(s, S_SCRATCH);
                        p.restrict(S_SCRATCH, keep);
                        p.store_ad(S_SCRATCH, c, DataRef::Imm(u64::from(idx)));
                        model.filled.insert(
                            (cm.id, idx),
                            ObjModel {
                                rights: sm.rights.restrict(keep),
                                ..sm
                            },
                        );
                    }
                    _ => emit_create(p, rng, model),
                }
            }
            // Null the scratch slot.
            78..84 => {
                p.null_ad(S_SCRATCH);
            }
            // Inspect an AD whose word is deterministic and fold it in.
            84..90 => {
                let mut candidates = vec![S_OUT, S_SHARED, S_DEEP];
                if let Some(s) = model.pick_slot(rng, |_| true) {
                    candidates.push(s);
                }
                let slot = candidates[rng.random_range(0usize..candidates.len())];
                p.inspect_ad(slot, DataDst::Local(L_TMP));
                p.alu(
                    AluOp::Add,
                    DataRef::Local(L_CHK),
                    DataRef::Local(L_TMP),
                    DataDst::Local(L_CHK),
                );
            }
            // Pure ALU fold.
            90..96 => {
                let op = FOLD_OPS[rng.random_range(0usize..FOLD_OPS.len())];
                let v = rng.random_range(1u64..1 << 16);
                p.alu(
                    op,
                    DataRef::Local(L_CHK),
                    DataRef::Imm(v),
                    DataDst::Local(L_CHK),
                );
            }
            // Burn cycles (perturbs interleaving, not state).
            _ => {
                p.work(rng.random_range(10u32..200));
            }
        }
    }
}

/// Emits exactly one deliberately-faulting instruction. Returns the
/// fault's name. Falls back to an explicit fault when the model has no
/// object shaped for the drawn variant.
fn emit_fault(p: &mut ProgramBuilder, rng: &mut StdRng, model: &mut Model) -> &'static str {
    match rng.random_range(0u32..7) {
        // Data write one word past the end.
        0 => {
            if let Some(slot) = model.pick_slot(rng, |m| m.rights.contains(Rights::WRITE)) {
                let m = model.get(slot).expect("picked slot is live");
                p.mov(DataRef::Imm(1), DataDst::Field(slot, m.data_len));
                return "bounds";
            }
            p.raise_fault(901);
            "explicit-fallback"
        }
        // Write through a read-only restriction.
        1 => {
            if let Some(slot) = model.pick_slot(rng, |_| true) {
                p.move_ad(slot, S_SCRATCH);
                p.restrict(S_SCRATCH, Rights::READ);
                p.mov(DataRef::Imm(1), DataDst::Field(S_SCRATCH, 0));
                return "rights";
            }
            p.raise_fault(902);
            "explicit-fallback"
        }
        // Store a short-lived AD into a long-lived container.
        2 => {
            if let Some(c) = model.pick_slot(rng, |m| {
                m.rights.contains(Rights::WRITE) && m.access_len > 0
            }) {
                p.store_ad(S_DEEP, c, DataRef::Imm(0));
                return "level";
            }
            p.raise_fault(903);
            "explicit-fallback"
        }
        // Read through the never-written slot.
        3 => {
            p.mov(DataRef::Field(S_NULL, 0), DataDst::Local(L_TMP));
            "null-access"
        }
        // Divide by zero.
        4 => {
            p.alu(
                AluOp::Div,
                DataRef::Local(L_CHK),
                DataRef::Imm(0),
                DataDst::Local(L_TMP),
            );
            "divide-by-zero"
        }
        // Software-raised fault with a seeded code.
        5 => {
            p.raise_fault(1 + rng.random_range(0u16..100));
            "explicit"
        }
        // Exhaust the tight SRO's object-table quota: exactly
        // TIGHT_QUOTA zero-size creates succeed (parked in the work
        // slots so the objects stay context-reachable and no collector
        // can perturb the SRO's live count mid-run), then one more
        // trips the ceiling. Schedule- and shard-independent: the quota
        // is per-SRO, not a property of the global table.
        _ => {
            for i in 0..TIGHT_QUOTA {
                let slot = S_WORK0 + (i as u16 % N_WORK);
                p.create_object(S_TIGHT, DataRef::Imm(0), DataRef::Imm(0), slot);
                let id = model.fresh_id();
                model.set(
                    slot,
                    Some(ObjModel {
                        id,
                        data_len: 0,
                        access_len: 0,
                        rights: Rights::ALL,
                    }),
                );
            }
            p.create_object(S_TIGHT, DataRef::Imm(0), DataRef::Imm(0), S_SCRATCH);
            "table-ceiling"
        }
    }
}

/// Emits the token-mutex phase: `rounds` × (receive token, add `delta`
/// to the shared cell, send token back).
fn emit_mutex_rounds(p: &mut ProgramBuilder, rounds: u64, delta: u64) {
    let top = p.new_label();
    p.mov(DataRef::Imm(0), DataDst::Local(L_ROUND));
    p.bind(top);
    p.receive(CTX_SLOT_ARG as u16, S_TOKEN);
    p.mov(DataRef::Field(S_SHARED, 0), DataDst::Local(L_TMP));
    p.alu(
        AluOp::Add,
        DataRef::Local(L_TMP),
        DataRef::Imm(delta),
        DataDst::Local(L_TMP),
    );
    p.mov(DataRef::Local(L_TMP), DataDst::Field(S_SHARED, 0));
    p.send(CTX_SLOT_ARG as u16, S_TOKEN);
    p.alu(
        AluOp::Add,
        DataRef::Local(L_ROUND),
        DataRef::Imm(1),
        DataDst::Local(L_ROUND),
    );
    p.alu(
        AluOp::Lt,
        DataRef::Local(L_ROUND),
        DataRef::Imm(rounds),
        DataDst::Local(L_CMP),
    );
    p.jump_if_nonzero(DataRef::Local(L_CMP), top);
}

/// Emits the publication phase: checksum into the output object's data
/// part, and (when the model holds anything) a read-restricted AD for
/// part of the private graph into the output object's access part — so
/// the oracle's root digest reaches into the graph each process built.
fn emit_publish(p: &mut ProgramBuilder, rng: &mut StdRng, model: &mut Model) {
    p.mov(DataRef::Local(L_CHK), DataDst::Field(S_OUT, 0));
    if let Some(slot) = model.pick_slot(rng, |_| true) {
        let idx = rng.random_range(0u32..OUT_ACCESS);
        p.move_ad(slot, S_SCRATCH);
        p.restrict(S_SCRATCH, Rights::READ);
        p.store_ad(S_SCRATCH, S_OUT, DataRef::Imm(u64::from(idx)));
    }
}

/// Generates the case for `seed`. Pure: the same seed always produces
/// the same [`GenCase`].
pub fn generate(seed: u64) -> GenCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_procs = rng.random_range(2usize..5);
    let rounds = rng.random_range(2u64..7);
    let mut processes = Vec::with_capacity(n_procs);
    for _ in 0..n_procs {
        let mut p = ProgramBuilder::new();
        let mut model = Model::new();
        let n_ops = rng.random_range(16u32..32);
        emit_private_ops(&mut p, &mut rng, &mut model, n_ops);
        let faulty = rng.random_bool(0.25);
        let mut fault_name = None;
        let mut delta = 0;
        if faulty {
            fault_name = Some(emit_fault(&mut p, &mut rng, &mut model));
        } else {
            delta = rng.random_range(1u64..10);
            emit_mutex_rounds(&mut p, rounds, delta);
            emit_publish(&mut p, &mut rng, &mut model);
        }
        p.halt();
        processes.push(GenProcess {
            program: p.finish(),
            faulty,
            fault_name,
            delta,
        });
    }
    GenCase {
        seed,
        processes,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_case() {
        for seed in 0..64 {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn faulty_processes_carry_no_delta() {
        for seed in 0..64 {
            for p in generate(seed).processes {
                if p.faulty {
                    assert_eq!(p.delta, 0);
                    assert!(p.fault_name.is_some());
                } else {
                    assert!(p.delta > 0);
                }
            }
        }
    }

    #[test]
    fn generated_programs_round_trip_the_codec() {
        for seed in 0..128 {
            for (i, p) in generate(seed).processes.iter().enumerate() {
                let bytes = i432_gdp::encode_program(&p.program);
                let back = i432_gdp::decode_program(&bytes)
                    .unwrap_or_else(|e| panic!("seed {seed} program {i}: {e}"));
                assert_eq!(back, p.program, "seed {seed} program {i}");
            }
        }
    }
}
