//! Differential conformance fuzzer CLI.
//!
//! ```text
//! conform_fuzz [--seed N | --start N --count N] [--matrix full|quick]
//!              [--workload gen|filing]
//!              [--cache on|off|both] [--port-queue on|off|both]
//!              [--fusion on|off|both]
//!              [--explore N] [--out PATH] [--trace] [--gc]
//! ```
//!
//! Default: seeds 0..256 on the full {1,4,16} shards × {1,4,8} threads
//! matrix, with every point run cache-on *and* cache-off (`--cache
//! both`). `--seed N` replays exactly one seed (the form every failure
//! report prints). `--port-queue` selects the port-ring arms: `on`
//! (runner default, lock-free rings ahead of the shard locks), `off`
//! (every port operation on the locked rendezvous path), or `both`
//! (each matrix × cache point diffed queued *and* locked against the
//! reference). `--fusion` selects the dispatch-specialization arms the
//! same way: `on` (runner default where the cache is on — pre-decoded
//! blocks, superinstruction fusion and call/port-site inline caches),
//! `off` (plain cached dispatch), or `both` (each matrix × cache ×
//! queue point diffed fused *and* unfused against the reference).
//! `--explore N` additionally runs N seeded schedule
//! explorations. `--gc` switches every matrix point to the
//! parallel-collector arm: the per-shard collector workers mark and
//! sweep on real threads *while* the workload runs, and the end state
//! must still match the (GC-free) deterministic reference bit-for-bit.
//! Failing seeds are written to `--out` (default
//! `CONFORM_FAILURES.json`) and the process exits nonzero.
//!
//! `--workload filing` switches from the generated ISA cases to the
//! object-filing differential workload: the full filing stack (typed
//! ports, swapping storage, the async virtio block device, worker
//! natives) runs deterministically and threaded at every matrix point,
//! each point diffed with the device descriptor ring on *and* off; the
//! matrix's thread column sets the filing worker count. `--cache`,
//! `--port-queue`, `--fusion` and `--gc` apply only to the generated
//! workload.
//!
//! `--trace` (needs a `--features trace` build; warns otherwise)
//! replays every failing differential seed once on the threaded runner
//! with the flight recorder on and writes its merged timeline to
//! `TRACE_seed_<n>.json` — schedule-level evidence to read next to the
//! digest mismatch.

use i432_conform::{
    check_filing_seed, check_seed_fusion, check_seed_pargc, explore, generate, run_filing_threaded,
    run_threaded_case, CacheModes, ExploreConfig, FusionModes, QueueModes, FULL_MATRIX,
    QUICK_MATRIX,
};
use std::fmt::Write as _;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Gen,
    Filing,
}

struct Args {
    workload: Workload,
    start: u64,
    count: u64,
    matrix: &'static [(u32, u32)],
    cache: CacheModes,
    queue: QueueModes,
    fusion: FusionModes,
    explore_seeds: u64,
    out: String,
    trace: bool,
    gc: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: Workload::Gen,
        start: 0,
        count: 256,
        matrix: FULL_MATRIX,
        cache: CacheModes::Both,
        queue: QueueModes::On,
        fusion: FusionModes::On,
        explore_seeds: 0,
        out: "CONFORM_FAILURES.json".into(),
        trace: false,
        gc: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.start = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                args.count = 1;
                i += 2;
            }
            "--start" => {
                args.start = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?;
                i += 2;
            }
            "--count" => {
                args.count = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--count: {e}"))?;
                i += 2;
            }
            "--workload" => {
                args.workload = match need_value(i)? {
                    "gen" => Workload::Gen,
                    "filing" => Workload::Filing,
                    other => return Err(format!("--workload: expected gen|filing, got {other:?}")),
                };
                i += 2;
            }
            "--matrix" => {
                args.matrix = match need_value(i)? {
                    "full" => FULL_MATRIX,
                    "quick" => QUICK_MATRIX,
                    other => return Err(format!("--matrix: unknown matrix {other:?}")),
                };
                i += 2;
            }
            "--cache" => {
                args.cache = match need_value(i)? {
                    "on" => CacheModes::On,
                    "off" => CacheModes::Off,
                    "both" => CacheModes::Both,
                    other => return Err(format!("--cache: expected on|off|both, got {other:?}")),
                };
                i += 2;
            }
            "--port-queue" => {
                args.queue = match QueueModes::parse(need_value(i)?) {
                    Some(q) => q,
                    None => {
                        return Err(format!(
                            "--port-queue: expected on|off|both, got {:?}",
                            need_value(i)?
                        ))
                    }
                };
                i += 2;
            }
            "--fusion" => {
                args.fusion = match FusionModes::parse(need_value(i)?) {
                    Some(f) => f,
                    None => {
                        return Err(format!(
                            "--fusion: expected on|off|both, got {:?}",
                            need_value(i)?
                        ))
                    }
                };
                i += 2;
            }
            "--explore" => {
                args.explore_seeds = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--explore: {e}"))?;
                i += 2;
            }
            "--out" => {
                args.out = need_value(i)?.to_string();
                i += 2;
            }
            "--trace" => {
                args.trace = true;
                i += 1;
            }
            "--gc" => {
                args.gc = true;
                i += 1;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("conform_fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    if args.workload == Workload::Filing && args.gc {
        eprintln!("conform_fuzz: --gc applies only to --workload gen");
        return ExitCode::from(2);
    }
    println!(
        "i432 differential conformance fuzz ({} workload): seeds {}..{}, {} matrix points/seed, \
         {} cache arm(s), {} port-queue arm(s), {} fusion arm(s){}",
        match args.workload {
            Workload::Gen => "generated",
            Workload::Filing => "filing",
        },
        args.start,
        args.start + args.count,
        args.matrix.len(),
        args.cache.arms().len(),
        args.queue.arms().len(),
        args.fusion.arms().len(),
        if args.gc {
            ", concurrent parallel-GC arm"
        } else {
            ""
        }
    );
    let mut failures = Vec::new();
    for seed in args.start..args.start + args.count {
        let report = match args.workload {
            Workload::Filing => check_filing_seed(seed, args.matrix),
            Workload::Gen if args.gc => check_seed_pargc(seed, args.matrix, args.cache),
            Workload::Gen => {
                check_seed_fusion(seed, args.matrix, args.cache, args.queue, args.fusion)
            }
        };
        if report.passed() {
            if (seed - args.start + 1) % 32 == 0 {
                println!(
                    "  {}/{} seeds conformant (latest digest {:#018x})",
                    seed - args.start + 1,
                    args.count,
                    report.reference.digest
                );
            }
        } else {
            for m in &report.mismatches {
                eprintln!("FAIL: {m}");
            }
            failures.push(report);
        }
    }

    let mut explore_failures = Vec::new();
    for seed in args.start..args.start + args.explore_seeds {
        match explore(&ExploreConfig::smoke(seed)) {
            Ok(r) => println!(
                "  explore seed {seed}: {} ops, {} cross-shard pairs, {} atomic sections",
                r.ops, r.cross_shard_pairs, r.atomic_sections
            ),
            Err(e) => {
                eprintln!("FAIL: {e}");
                explore_failures.push(e);
            }
        }
    }

    if failures.is_empty() && explore_failures.is_empty() {
        println!(
            "pass: {} seeds conformant, {} explorations deadlock-free",
            args.count, args.explore_seeds
        );
        return ExitCode::SUCCESS;
    }

    // `--trace`: replay each failing differential seed once on the
    // threaded runner with the recorder on, and keep its timeline as a
    // debugging artifact next to the failure list.
    let mut trace_files: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    if args.trace {
        if i432_trace::ENABLED {
            for f in &failures {
                i432_trace::reset();
                i432_trace::set_context(0, 0);
                // A failing seed's replay may itself assert (hang,
                // system error); the partial timeline is exactly what
                // we want then, so keep going either way.
                let replay = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match args
                    .workload
                {
                    Workload::Filing => {
                        run_filing_threaded(f.seed, 4, 4, true);
                    }
                    Workload::Gen => {
                        let case = generate(f.seed);
                        run_threaded_case(&case, 4, 4);
                    }
                }));
                if replay.is_err() {
                    eprintln!("seed {}: traced replay panicked (timeline kept)", f.seed);
                }
                let t = i432_trace::drain_timeline();
                let path = format!("TRACE_seed_{}.json", f.seed);
                match std::fs::write(&path, t.to_json()) {
                    Ok(()) => {
                        eprintln!(
                            "wrote {path} ({} events, {} dropped)",
                            t.events.len(),
                            t.dropped
                        );
                        trace_files.insert(f.seed, path);
                    }
                    Err(e) => eprintln!("conform_fuzz: could not write {path}: {e}"),
                }
            }
        } else {
            eprintln!(
                "conform_fuzz: --trace ignored — this binary was built without the \
                 flight recorder; rebuild with --features trace"
            );
        }
    }

    // Persist the failing seeds as a replayable artifact.
    let mut json = String::from("{\n  \"failures\": [\n");
    let total = failures.len() + explore_failures.len();
    let mut emitted = 0;
    for f in &failures {
        emitted += 1;
        let trace = trace_files
            .get(&f.seed)
            .map_or("null".to_string(), |p| format!("\"{p}\""));
        let _ = writeln!(
            json,
            "    {{\"seed\": {}, \"kind\": \"{}\", \"mismatches\": {}, \"trace\": {}}}{}",
            f.seed,
            match args.workload {
                Workload::Gen => "differential",
                Workload::Filing => "filing",
            },
            f.mismatches.len(),
            trace,
            if emitted < total { "," } else { "" }
        );
    }
    for e in &explore_failures {
        emitted += 1;
        let _ = writeln!(
            json,
            "    {{\"kind\": \"explore\", \"detail\": \"{}\"}}{}",
            e.replace('"', "'"),
            if emitted < total { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("conform_fuzz: could not write {}: {e}", args.out);
    } else {
        eprintln!("wrote failing seeds to {}", args.out);
    }
    eprintln!(
        "FAILED: {} differential seed(s), {} exploration(s)",
        failures.len(),
        explore_failures.len()
    );
    ExitCode::FAILURE
}
