//! The differential oracle: one generated case, two execution engines,
//! one logical answer.
//!
//! The *reference arm* runs the case on the deterministic discrete-event
//! runner with a single processor and a single shard. The *subject arm*
//! runs the identical construction on [`i432_sim::run_threaded`] — real
//! host threads over the lock-striped space — across a shards × threads
//! matrix. Conformance means the workload-visible end state is
//! bit-identical everywhere:
//!
//! * a placement-independent digest of the graph reachable from the
//!   per-process output objects, the shared counter cell, and the mutex
//!   port ([`i432_arch::digest_from_roots`]);
//! * the shared counter's value (the generator predicts it exactly);
//! * each process's final status and fault code, in spawn order.
//!
//! Any mismatch is reported with a one-line `cargo` command that replays
//! the exact seed locally.

use crate::gen::{
    GenCase, CTX_ACCESS, CTX_DATA, OUT_ACCESS, S_DEEP, S_OUT, S_SHARED, S_TIGHT, TIGHT_QUOTA,
};
use i432_arch::{
    digest_from_roots,
    sysobj::{SroState, PROC_SLOT_CONTEXT},
    AccessDescriptor, Level, ObjectRef, ObjectSpec, ObjectType, PortDiscipline, ProcessStatus,
    Rights, SysState, SystemType,
};
use i432_gdp::process::ProcessSpec;
use i432_sim::{RunOutcome, System, SystemConfig};
use imax_ipc::create_port;

/// The full conformance matrix from the acceptance criteria:
/// {1, 4, 16} shards × {1, 4, 8} host threads.
pub const FULL_MATRIX: &[(u32, u32)] = &[
    (1, 1),
    (1, 4),
    (1, 8),
    (4, 1),
    (4, 4),
    (4, 8),
    (16, 1),
    (16, 4),
    (16, 8),
];

/// A reduced matrix for tier-1 test time on small hosts.
pub const QUICK_MATRIX: &[(u32, u32)] = &[(1, 1), (4, 4)];

/// Step budget for the reference arm.
const DET_BUDGET: u64 = 50_000_000;
/// Step budget for the threaded arm (polls are steps too).
const THR_BUDGET: u64 = 50_000_000;

/// The workload-visible end state of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseOutcome {
    /// Digest of the graph reachable from the oracle's roots.
    pub digest: u64,
    /// Final shared-counter value.
    pub counter: u64,
    /// `(status, fault_code)` per process, in spawn order.
    pub proc_states: Vec<(u8, u16)>,
}

/// Everything [`build`] wires up besides the [`System`] itself.
struct Harness {
    processes: Vec<ObjectRef>,
    roots: Vec<AccessDescriptor>,
    shared_ad: AccessDescriptor,
}

/// The one-line command that reproduces a failing seed locally.
pub fn replay_command(seed: u64) -> String {
    format!("cargo run --release -p i432-conform --bin conform_fuzz -- --seed {seed}")
}

fn status_code(s: ProcessStatus) -> u8 {
    match s {
        ProcessStatus::Ready => 0,
        ProcessStatus::Running => 1,
        ProcessStatus::BlockedSend => 2,
        ProcessStatus::BlockedReceive => 3,
        ProcessStatus::Stopped => 4,
        ProcessStatus::Faulted => 5,
        ProcessStatus::Terminated => 6,
    }
}

/// Builds a system running `case` on the given stripe/processor counts.
/// The construction is identical for both arms — only the engine and the
/// matrix point differ.
fn build(case: &GenCase, shards: u32, cpus: u32) -> (System, Harness) {
    let mut cfg = SystemConfig::small()
        .with_processors(cpus)
        .with_shards(shards);
    // Keep per-shard capacity constant as the stripe count grows.
    cfg.data_bytes *= shards;
    cfg.access_slots *= shards;
    cfg.table_limit *= shards;
    let mut sys = System::new(&cfg);
    let root = sys.space.root_sro();

    // The token mutex: capacity-1 FIFO port primed with one token.
    let mutex = create_port(&mut sys.space, root, 1, PortDiscipline::Fifo)
        .expect("mutex port fits a fresh arena");
    sys.anchor(mutex.ad());
    let token = sys
        .space
        .create_object(root, ObjectSpec::generic(8, 0))
        .expect("token fits");
    let token_ad = sys.space.mint(token, Rights::READ | Rights::WRITE);
    imax_ipc::untyped::send(&mut sys.space, mutex, token_ad).expect("token primes the mutex");

    // Shared counter cell.
    let shared = sys
        .space
        .create_object(root, ObjectSpec::generic(8, 0))
        .expect("counter fits");
    let shared_ad = sys.space.mint(shared, Rights::READ | Rights::WRITE);
    sys.anchor(shared_ad);

    // Faulted processes park here instead of terminating silently.
    let fault_port = create_port(
        &mut sys.space,
        root,
        case.processes.len() as u32 + 1,
        PortDiscipline::Fifo,
    )
    .expect("fault port fits");
    sys.anchor(fault_port.ad());

    // A short-lived-level object: storing it into any global container
    // must level-fault (the generator's "level" fault variant).
    let deep = sys
        .space
        .create_object(
            root,
            ObjectSpec {
                data_len: 8,
                access_len: 0,
                otype: ObjectType::GENERIC,
                level: Some(Level(5)),
                sys: SysState::Generic,
            },
        )
        .expect("deep object fits");
    // Deliberately NOT anchored: the root directory is a program-visible
    // generic container at GLOBAL level, so holding a Level(5) AD there
    // would itself violate the level rule `check_invariants` audits. The
    // object stays live through the context slots (system objects, which
    // the hardware-store path legitimately exempts), and no collector
    // runs inside the oracle.
    let deep_ad = sys.space.mint(deep, Rights::READ | Rights::WRITE);

    let subs: Vec<_> = case
        .processes
        .iter()
        .enumerate()
        .map(|(i, p)| sys.subprogram(&format!("fuzz{i}"), p.program.clone(), CTX_DATA, CTX_ACCESS))
        .collect();
    let dom = sys.install_domain("conform", subs, 0);

    let mut processes = Vec::new();
    let mut roots = Vec::new();
    for i in 0..case.processes.len() {
        let out = sys
            .space
            .create_object(root, ObjectSpec::generic(16, OUT_ACCESS))
            .expect("output object fits");
        let out_ad = sys.space.mint(out, Rights::READ | Rights::WRITE);
        sys.anchor(out_ad);
        // A per-process "tight" SRO: no storage of its own (zero-size
        // creates need none) and a table quota of TIGHT_QUOTA, so the
        // table-ceiling fault family trips at a fixed instruction
        // regardless of shard count or schedule.
        let tight = {
            let mut st = SroState::new(Level(0));
            st.parent = Some(root);
            st.table_quota = TIGHT_QUOTA;
            sys.space
                .create_object(
                    root,
                    ObjectSpec {
                        data_len: 0,
                        access_len: 0,
                        otype: ObjectType::System(SystemType::StorageResource),
                        level: None,
                        sys: SysState::Sro(st),
                    },
                )
                .expect("tight SRO fits")
        };
        let tight_ad = sys.space.mint(tight, Rights::ALLOCATE);
        let mut spec = ProcessSpec::new(sys.dispatch_ad());
        spec.fault_port = Some(fault_port.ad());
        let p = sys.spawn_with(dom, i as u32, Some(mutex.ad()), spec);
        // Poke the well-known context slots the generated programs use.
        let ctx = sys
            .space
            .load_ad_hw(p, PROC_SLOT_CONTEXT)
            .expect("fresh process")
            .expect("fresh process has a context")
            .obj;
        for (slot, ad) in [
            (S_OUT, out_ad),
            (S_SHARED, shared_ad),
            (S_DEEP, deep_ad),
            (S_TIGHT, tight_ad),
        ] {
            sys.space
                .store_ad_hw(ctx, u32::from(slot), Some(ad))
                .expect("context slot poke");
        }
        processes.push(p);
        roots.push(out_ad);
    }
    roots.push(shared_ad);
    roots.push(mutex.ad());
    let harness = Harness {
        processes,
        roots,
        shared_ad,
    };
    (sys, harness)
}

fn outcome_of(sys: &mut System, h: &Harness) -> CaseOutcome {
    let counter = sys
        .space
        .read_u64(h.shared_ad, 0)
        .expect("counter cell is live");
    let digest = digest_from_roots(&sys.space, &h.roots);
    let proc_states = h
        .processes
        .iter()
        .map(|p| {
            let s = sys.space.process(*p).expect("registered process is live");
            (status_code(s.status), s.fault_code)
        })
        .collect();
    CaseOutcome {
        digest,
        counter,
        proc_states,
    }
}

/// Runs the reference arm: deterministic runner, 1 shard, 1 processor.
/// Returns the system too so callers can audit the final space.
pub fn run_deterministic_sys(case: &GenCase) -> (System, CaseOutcome) {
    let (mut sys, h) = build(case, 1, 1);
    let outcome = sys.run_to_quiescence(DET_BUDGET);
    assert_eq!(
        outcome,
        RunOutcome::Quiescent,
        "seed {}: reference arm did not quiesce; replay: {}",
        case.seed,
        replay_command(case.seed)
    );
    let o = outcome_of(&mut sys, &h);
    (sys, o)
}

/// Runs the reference arm and returns its end state.
pub fn run_deterministic(case: &GenCase) -> CaseOutcome {
    run_deterministic_sys(case).1
}

/// Runs the subject arm at one matrix point with the qualification and
/// binding-register caches explicitly on or off. Returns the system too.
pub fn run_threaded_sys_with(
    case: &GenCase,
    shards: u32,
    cpus: u32,
    cache: bool,
) -> (System, CaseOutcome) {
    run_threaded_sys_opts(case, shards, cpus, cache, true)
}

/// [`run_threaded_sys_with`] with the port-ring fast path made explicit:
/// `queue = false` keeps every port operation on the locked rendezvous
/// path, `queue = true` (the runner default) lets non-blocking FIFO
/// sends and receives go through the per-port rings. The two must be
/// digest-identical — the rings are drained back into the message areas
/// before the space is handed back.
pub fn run_threaded_sys_opts(
    case: &GenCase,
    shards: u32,
    cpus: u32,
    cache: bool,
    queue: bool,
) -> (System, CaseOutcome) {
    // The runner default: dispatch specialization follows the cache
    // flag (a caching threaded runner is a fused one).
    run_threaded_sys_full(case, shards, cpus, cache, queue, cache)
}

/// [`run_threaded_sys_opts`] with dispatch specialization (the block
/// cache, superinstruction fusion and the call/port-site inline caches)
/// made explicit. `fusion` rides on the unlocked fast path, so it is
/// inert when `cache` is off. Every arm must be digest-identical to the
/// reference — fused dispatch charges the per-instruction cycle model
/// unchanged by construction.
pub fn run_threaded_sys_full(
    case: &GenCase,
    shards: u32,
    cpus: u32,
    cache: bool,
    queue: bool,
    fusion: bool,
) -> (System, CaseOutcome) {
    let (sys, h) = build(case, shards, cpus);
    let (mut sys, outcome) = i432_sim::run_threaded_full(sys, THR_BUDGET, cache, queue, fusion);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "seed {}: threaded arm ({shards} shards x {cpus} threads, cache {}, queue {}, fusion {}) failed: {outcome:?}; replay: {}",
        case.seed,
        if cache { "on" } else { "off" },
        if queue { "on" } else { "off" },
        if fusion { "on" } else { "off" },
        replay_command(case.seed)
    );
    let o = outcome_of(&mut sys, &h);
    (sys, o)
}

/// Runs the subject arm at one matrix point with an on-the-fly GC
/// daemon time-slicing against the workload (increments per daemon
/// call as given). Returns the collector so callers can audit its
/// statistics and the trace timeline against them.
///
/// The daemon is a system service: completion tracking ignores it, so
/// the run ends when the workload processes do.
pub fn run_threaded_sys_gc(
    case: &GenCase,
    shards: u32,
    cpus: u32,
    cache: bool,
    increments_per_call: u32,
) -> (
    System,
    CaseOutcome,
    std::sync::Arc<parking_lot::Mutex<imax_gc::Collector>>,
) {
    let (mut sys, h) = build(case, shards, cpus);
    let collector = std::sync::Arc::new(parking_lot::Mutex::new(imax_gc::Collector::new()));
    let daemon = imax_gc::install_gc_daemon(
        &mut sys,
        std::sync::Arc::clone(&collector),
        increments_per_call,
        128,
    );
    // Equal footing with the workload: the daemon time-slices rather
    // than monopolising a processor.
    if let Ok(ps) = sys.space.process_mut(daemon) {
        ps.timeslice = 5_000;
        ps.slice_remaining = 5_000;
    }
    // Short workload slices force preemption even on one processor;
    // otherwise small cases run sequentially to completion and the
    // daemon (queued behind them at equal priority) never executes a
    // single increment before the run ends.
    for p in sys.processes().to_vec() {
        if let Ok(ps) = sys.space.process_mut(p) {
            ps.timeslice = 500;
            ps.slice_remaining = 500;
        }
    }
    // Unbounded, unlike the plain arm: the cap counts idle dispatch
    // spins and here the daemon also steps continuously, so no finite
    // total-step budget is schedule-independent. The run still ends —
    // the workload halts and completion tracking ignores the daemon.
    let (mut sys, outcome) = i432_sim::run_threaded_with(sys, u64::MAX, cache);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "seed {}: threaded+GC arm ({shards} shards x {cpus} threads) failed: {outcome:?}; replay: {}",
        case.seed,
        replay_command(case.seed)
    );
    let o = outcome_of(&mut sys, &h);
    (sys, o, collector)
}

/// Runs the subject arm at one matrix point with the **parallel
/// per-shard collector** ([`imax_gc::ParallelGc`]) marking and sweeping
/// on real host threads concurrently with the mutator GDPs — the
/// strongest concurrency the system offers. Returns the collector's
/// statistics so callers can audit how much collection really ran.
///
/// The workers always finish the cycle in progress when the workload
/// completes, so the space is handed back at a cycle boundary and the
/// end-state digest must still be bit-identical to the reference arm:
/// an on-the-fly collector only ever removes unreachable objects, and
/// the digest walks the reachable graph.
pub fn run_threaded_sys_pargc(
    case: &GenCase,
    shards: u32,
    cpus: u32,
    cache: bool,
) -> (System, CaseOutcome, imax_gc::ParGcStats) {
    let (mut sys, h) = build(case, shards, cpus);
    // Short workload slices, as in the daemon arm: collector cycles
    // should interleave with allocation and barrier traffic, not run
    // against an already-quiescent space.
    for p in sys.processes().to_vec() {
        if let Ok(ps) = sys.space.process_mut(p) {
            ps.timeslice = 500;
            ps.slice_remaining = 500;
        }
    }
    let gc = imax_gc::ParallelGc::new(shards, imax_gc::GcConfig::default());
    // Unbounded for the same reason as the daemon arm: epoch bumps from
    // concurrent sweeps perturb idle-spin counts, so no finite
    // total-step budget is schedule-independent.
    let (mut sys, outcome) = imax_gc::run_threaded_parallel_gc(sys, u64::MAX, cache, &gc);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "seed {}: threaded+parallel-GC arm ({shards} shards x {cpus} threads) failed: {outcome:?}; replay: {}",
        case.seed,
        replay_command(case.seed)
    );
    let stats = gc.snapshot();
    assert!(
        stats.errors.is_empty(),
        "seed {}: parallel collector faulted: {:?}; replay: {}",
        case.seed,
        stats.errors,
        replay_command(case.seed)
    );
    let o = outcome_of(&mut sys, &h);
    (sys, o, stats)
}

/// Differential check of the parallel-collector arm: the reference
/// deterministic run (no GC at all) and every matrix point running
/// under concurrent per-shard collection must agree bit-for-bit on the
/// workload-visible end state.
pub fn check_seed_pargc(seed: u64, matrix: &[(u32, u32)], modes: CacheModes) -> SeedReport {
    let case = crate::gen::generate(seed);
    let reference = run_deterministic(&case);
    let mut mismatches = Vec::new();
    for &(shards, cpus) in matrix {
        for &cache in modes.arms() {
            let (_sys, got, stats) = run_threaded_sys_pargc(&case, shards, cpus, cache);
            if got != reference {
                mismatches.push(format!(
                    "seed {seed}: {shards} shards x {cpus} threads (cache {}, parallel GC: \
                     {} cycles, {} reclaimed, {} steals) diverged \
                     (digest {:#018x} vs {:#018x}, counter {} vs {}, states {:?} vs {:?}); replay: {}",
                    if cache { "on" } else { "off" },
                    stats.cycles,
                    stats.reclaimed,
                    stats.steals,
                    got.digest,
                    reference.digest,
                    got.counter,
                    reference.counter,
                    got.proc_states,
                    reference.proc_states,
                    replay_command(seed)
                ));
            }
        }
    }
    SeedReport {
        seed,
        reference,
        mismatches,
    }
}

/// Runs the subject arm at one matrix point (caches on, the default
/// runner configuration). Returns the system too.
pub fn run_threaded_sys(case: &GenCase, shards: u32, cpus: u32) -> (System, CaseOutcome) {
    run_threaded_sys_with(case, shards, cpus, true)
}

/// Runs the subject arm at one matrix point and returns its end state.
pub fn run_threaded_case(case: &GenCase, shards: u32, cpus: u32) -> CaseOutcome {
    run_threaded_sys(case, shards, cpus).1
}

/// Which cache arms [`check_seed_modes`] exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheModes {
    /// Caches on only (the default runner configuration).
    On,
    /// Caches forced off only (every operation on the locked path).
    Off,
    /// Both — every matrix point runs twice, and the cached run must be
    /// digest-identical to both the uncached run and the reference.
    Both,
}

impl CacheModes {
    /// The cache settings this mode expands to.
    pub fn arms(self) -> &'static [bool] {
        match self {
            CacheModes::On => &[true],
            CacheModes::Off => &[false],
            CacheModes::Both => &[true, false],
        }
    }
}

/// Which port-ring arms [`check_seed_full`] exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueModes {
    /// Port rings on only (the default runner configuration).
    On,
    /// Port rings forced off only (every port operation on the locked
    /// rendezvous path).
    Off,
    /// Both — every matrix × cache point runs twice, and the queued run
    /// must be digest-identical to both the locked run and the
    /// reference.
    Both,
}

impl QueueModes {
    /// The queue settings this mode expands to.
    pub fn arms(self) -> &'static [bool] {
        match self {
            QueueModes::On => &[true],
            QueueModes::Off => &[false],
            QueueModes::Both => &[true, false],
        }
    }

    /// Parses a `--port-queue` flag value.
    pub fn parse(s: &str) -> Option<QueueModes> {
        match s {
            "on" => Some(QueueModes::On),
            "off" => Some(QueueModes::Off),
            "both" => Some(QueueModes::Both),
            _ => None,
        }
    }
}

/// Which dispatch-specialization arms [`check_seed_fusion`] exercises.
/// Fusion rides on the binding-register cache's fast path, so a fusion-on
/// arm is only distinct from the plain cached arm when the cache arm is
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionModes {
    /// Dispatch specialization on only (the default runner
    /// configuration when the cache is on).
    On,
    /// Dispatch specialization forced off only (plain cached or locked
    /// dispatch).
    Off,
    /// Both — every matrix × cache × queue point runs twice, and the
    /// fused run must be digest-identical to both the unfused run and
    /// the reference.
    Both,
}

impl FusionModes {
    /// The fusion settings this mode expands to.
    pub fn arms(self) -> &'static [bool] {
        match self {
            FusionModes::On => &[true],
            FusionModes::Off => &[false],
            FusionModes::Both => &[true, false],
        }
    }

    /// Parses a `--fusion` flag value.
    pub fn parse(s: &str) -> Option<FusionModes> {
        match s {
            "on" => Some(FusionModes::On),
            "off" => Some(FusionModes::Off),
            "both" => Some(FusionModes::Both),
            _ => None,
        }
    }
}

/// The oracle's verdict for one seed across a matrix.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The seed checked.
    pub seed: u64,
    /// The reference arm's end state.
    pub reference: CaseOutcome,
    /// One line per divergence (empty = conformant).
    pub mismatches: Vec<String>,
}

impl SeedReport {
    /// True when every matrix point matched the reference arm.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Checks one seed: generates the case, runs the reference arm, then the
/// subject arm at every `matrix` point, comparing end states. Also
/// round-trips every generated program through the wire codec — a failing
/// seed must be storable as a replayable artifact.
///
/// Runs both cache arms (see [`check_seed_modes`]): the qualification
/// and binding-register caches must be semantically invisible, so every
/// matrix point is diffed bit-for-bit cache-on *and* cache-off.
pub fn check_seed(seed: u64, matrix: &[(u32, u32)]) -> SeedReport {
    check_seed_modes(seed, matrix, CacheModes::Both)
}

/// [`check_seed`] restricted to the given cache arms. Port rings stay
/// in the runner's default configuration (on); use [`check_seed_full`]
/// to diff the queue arms too.
pub fn check_seed_modes(seed: u64, matrix: &[(u32, u32)], modes: CacheModes) -> SeedReport {
    check_seed_full(seed, matrix, modes, QueueModes::On)
}

/// [`check_seed`] across an explicit cache × port-queue arm product:
/// every matrix point runs once per (cache, queue) combination and each
/// end state must be bit-identical to the deterministic reference.
/// Dispatch specialization follows the runner default (on wherever the
/// cache arm is on); use [`check_seed_fusion`] to diff the fusion arms
/// explicitly.
pub fn check_seed_full(
    seed: u64,
    matrix: &[(u32, u32)],
    modes: CacheModes,
    queues: QueueModes,
) -> SeedReport {
    check_seed_fusion(seed, matrix, modes, queues, FusionModes::On)
}

/// [`check_seed`] across the full cache × port-queue × fusion arm
/// product: every matrix point runs once per combination and each end
/// state must be bit-identical to the deterministic reference. This is
/// the differential battery that proves superinstruction fusion and the
/// inline caches semantically invisible — digests, counters and fault
/// verdicts agree bit-for-bit with fusion on and off.
pub fn check_seed_fusion(
    seed: u64,
    matrix: &[(u32, u32)],
    modes: CacheModes,
    queues: QueueModes,
    fusions: FusionModes,
) -> SeedReport {
    let case = crate::gen::generate(seed);
    let mut mismatches = Vec::new();

    for (i, p) in case.processes.iter().enumerate() {
        let bytes = i432_gdp::encode_program(&p.program);
        match i432_gdp::decode_program(&bytes) {
            Ok(back) if back == p.program => {}
            Ok(_) => mismatches.push(format!(
                "seed {seed} program {i}: codec round-trip altered the program; replay: {}",
                replay_command(seed)
            )),
            Err(e) => mismatches.push(format!(
                "seed {seed} program {i}: codec rejected its own encoding ({e}); replay: {}",
                replay_command(seed)
            )),
        }
    }

    let reference = run_deterministic(&case);
    let expected = case.expected_counter();
    if reference.counter != expected {
        mismatches.push(format!(
            "seed {seed}: reference counter {} != predicted {expected}; replay: {}",
            reference.counter,
            replay_command(seed)
        ));
    }

    for &(shards, cpus) in matrix {
        for &cache in modes.arms() {
            for &queue in queues.arms() {
                for &fusion in fusions.arms() {
                    let got = run_threaded_sys_full(&case, shards, cpus, cache, queue, fusion).1;
                    if got != reference {
                        mismatches.push(format!(
                            "seed {seed}: {shards} shards x {cpus} threads (cache {}, queue {}, fusion {}) diverged \
                             (digest {:#018x} vs {:#018x}, counter {} vs {}, states {:?} vs {:?}); replay: {}",
                            if cache { "on" } else { "off" },
                            if queue { "on" } else { "off" },
                            if fusion { "on" } else { "off" },
                            got.digest,
                            reference.digest,
                            got.counter,
                            reference.counter,
                            got.proc_states,
                            reference.proc_states,
                            replay_command(seed)
                        ));
                    }
                }
            }
        }
    }
    SeedReport {
        seed,
        reference,
        mismatches,
    }
}
