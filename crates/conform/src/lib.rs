//! # i432-conform — differential conformance & concurrency fuzzing
//!
//! The sharded capability kernel makes a strong claim: the *logical*
//! outcome of a workload is independent of how the object space is
//! striped and how many host threads drive it. Paper §3's design rule —
//! "all synchronization within the system must be explicit" — is exactly
//! the property that makes the claim testable. This crate tests it, hard:
//!
//! * [`gen`] — a seeded, deterministic generator of GDP programs over the
//!   full user-visible ISA (data movement, AD movement, rights
//!   restriction, object creation, port rendezvous, deliberate faults).
//!   The same seed always yields the same programs.
//! * [`oracle`] — the differential oracle: each generated case runs on
//!   the deterministic single-processor runner *and* on the threaded
//!   lock-striped runner across a shards × threads matrix, and the
//!   workload-visible end state (a placement-independent graph digest,
//!   the shared counter, and per-process status/fault codes) must be
//!   bit-identical everywhere.
//! * [`explore`] — a bounded schedule explorer for the shard-lock hot
//!   paths: seeded cross-shard lock-pair orders interleaved with
//!   all-shard atomic sections, with wall-clock deadlock detection.
//!
//! Every failure reports a one-line `cargo` replay command carrying the
//! exact seed, so any divergence found in CI reproduces locally.

#![warn(missing_docs)]

pub mod explore;
pub mod filing;
pub mod gen;
pub mod oracle;

pub use explore::{explore, explore_traced, ExploreConfig, ExploreReport};
pub use filing::{
    check_filing_seed, filing_replay_command, filing_workload, run_filing_deterministic,
    run_filing_threaded,
};
pub use gen::{generate, GenCase, GenProcess};
pub use oracle::{
    check_seed, check_seed_full, check_seed_fusion, check_seed_modes, check_seed_pargc,
    replay_command, run_deterministic, run_threaded_case, run_threaded_sys_full,
    run_threaded_sys_gc, run_threaded_sys_opts, run_threaded_sys_pargc, CacheModes, CaseOutcome,
    FusionModes, QueueModes, SeedReport, FULL_MATRIX, QUICK_MATRIX,
};
