//! The filing differential workload: the whole object-filing stack —
//! typed/untyped ports, the swapping storage manager, the async virtio
//! block device, worker natives — driven deterministically and on the
//! threaded runner, with the device queues on *and* off, and the end
//! states diffed bit-for-bit.
//!
//! This is a different animal from [`crate::gen`]'s synthetic ISA
//! cases: the programs are fixed (the filing client protocol), but the
//! machinery under them is the deepest composition in the workspace.
//! What the oracle checks is the filing system's core determinism
//! claim: each client blocks on its private reply port after every
//! request, so *no* schedule — worker count, shard count, host-thread
//! interleaving, descriptor ring on or off — may change what any client
//! observes.
//!
//! The comparable end state is: a digest over the per-client
//! out-objects, the served-request count (exactly the issued total),
//! bytes moved, device and protocol error counts, the device completion
//! count, and each client's final status/fault pair. Simulated cycles
//! are deliberately *not* compared across runners — swap traffic
//! depends on request arrival order — but the deterministic arm is
//! still exact and the `c13_filing` bench pins it.

use crate::oracle::SeedReport;
use i432_arch::{digest_from_roots, ProcessStatus};
use i432_sim::RunOutcome;
use imax_filing::{build_filing_system, client_checksums, FilingWorkload};

use crate::oracle::CaseOutcome;

/// Deterministic-arm step budget.
const DET_BUDGET: u64 = 200_000_000;

/// The one-line command that reproduces a failing filing seed locally.
pub fn filing_replay_command(seed: u64) -> String {
    format!(
        "cargo run --release -p i432-conform --bin conform_fuzz -- --workload filing --seed {seed}"
    )
}

/// Derives the workload shape from a seed: 2–4 clients, 2–5 WRITE/READ
/// round trips each, payloads scrambled by the seed itself.
pub fn filing_workload(seed: u64, shards: u32, workers: u32, use_queue: bool) -> FilingWorkload {
    let mut w = FilingWorkload::small(2 + (seed % 3) as u32, 2 + (seed / 3 % 4));
    w.workers = workers;
    w.shards = shards;
    w.use_queue = use_queue;
    // Half the seeds consume device completions through the typed port
    // package — Figure 2 says the arms are indistinguishable, so the
    // differential diff crosses it too.
    w.typed_completion = seed % 2 == 1;
    w.seed = seed;
    w
}

fn status_code(s: ProcessStatus) -> u8 {
    match s {
        ProcessStatus::Ready => 0,
        ProcessStatus::Running => 1,
        ProcessStatus::BlockedSend => 2,
        ProcessStatus::BlockedReceive => 3,
        ProcessStatus::Stopped => 4,
        ProcessStatus::Faulted => 5,
        ProcessStatus::Terminated => 6,
    }
}

/// Folds a filing run's end state into a [`CaseOutcome`] so the filing
/// arm rides the same reporting plumbing as the generated cases. The
/// `counter` slot carries the served-request count; the digest mixes
/// the out-object graph digest with the deterministic counters.
fn outcome_of(sys: &mut i432_sim::System, handles: &imax_filing::FilingHandles) -> CaseOutcome {
    let chk = client_checksums(sys, handles);
    let stats = handles.server.stats();
    let mut digest = digest_from_roots(&sys.space, &handles.outs);
    // Fold the deterministic device/transfer counters into the digest:
    // a runner that served every request but moved different bytes or
    // completed a different number of device commands must diverge.
    for v in [
        stats.bytes_moved,
        stats.device_errors,
        stats.protocol_errors,
        stats.device.completed,
    ] {
        digest = digest.wrapping_mul(0x100000001B3) ^ v;
    }
    for c in &chk {
        digest = digest.wrapping_mul(0x100000001B3) ^ *c;
    }
    let proc_states = handles
        .clients
        .iter()
        .map(|p| {
            let s = sys.space.process(*p).expect("client process is live");
            (status_code(s.status), s.fault_code)
        })
        .collect();
    CaseOutcome {
        digest,
        counter: stats.requests_served,
        proc_states,
    }
}

/// Runs the reference arm: deterministic runner, one shard, one worker,
/// descriptor ring on.
pub fn run_filing_deterministic(seed: u64) -> CaseOutcome {
    let w = filing_workload(seed, 1, 1, true);
    let (mut sys, handles) = build_filing_system(&w);
    let outcome = sys.run_to_completion(DET_BUDGET);
    assert!(
        matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
        "seed {seed}: filing reference arm did not complete ({outcome:?}); replay: {}",
        filing_replay_command(seed)
    );
    // The reference is also checked against the host-side protocol
    // model — a deterministic run that diverges from the protocol is a
    // filing bug even if every threaded run agrees with it.
    let expect = handles.expected_checksums(w.seed, w.iters);
    let got = client_checksums(&mut sys, &handles);
    assert_eq!(
        got,
        expect,
        "seed {seed}: filing reference run broke the protocol model; replay: {}",
        filing_replay_command(seed)
    );
    outcome_of(&mut sys, &handles)
}

/// Runs the subject arm: threaded runner at one matrix point, with the
/// device descriptor ring on or off.
pub fn run_filing_threaded(seed: u64, shards: u32, workers: u32, use_queue: bool) -> CaseOutcome {
    let w = filing_workload(seed, shards, workers, use_queue);
    let (sys, handles) = build_filing_system(&w);
    let (mut back, outcome) = i432_sim::run_threaded_full(sys, u64::MAX, true, true, true);
    assert!(
        outcome.completed,
        "seed {seed}: threaded filing arm did not complete ({outcome:?}); replay: {}",
        filing_replay_command(seed)
    );
    outcome_of(&mut back, &handles)
}

/// Checks one filing seed: the deterministic reference against the
/// threaded runner at every matrix point, each point run with the
/// device queues on *and* off. The matrix's `cpus` column sets the
/// worker count (total host threads = clients + workers).
pub fn check_filing_seed(seed: u64, matrix: &[(u32, u32)]) -> SeedReport {
    let reference = run_filing_deterministic(seed);
    let mut mismatches = Vec::new();
    for &(shards, cpus) in matrix {
        for use_queue in [true, false] {
            let got = run_filing_threaded(seed, shards, cpus.max(1), use_queue);
            if got != reference {
                mismatches.push(format!(
                    "seed {seed}: filing {shards} shards x {cpus} workers (device queue {}) \
                     diverged (digest {:#018x} vs {:#018x}, served {} vs {}, states {:?} vs {:?}); replay: {}",
                    if use_queue { "on" } else { "off" },
                    got.digest,
                    reference.digest,
                    got.counter,
                    reference.counter,
                    got.proc_states,
                    reference.proc_states,
                    filing_replay_command(seed)
                ));
            }
        }
    }
    SeedReport {
        seed,
        reference,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::QUICK_MATRIX;

    #[test]
    fn filing_quick_matrix_is_conformant() {
        for seed in 0..4 {
            let r = check_filing_seed(seed, QUICK_MATRIX);
            assert!(r.passed(), "{:?}", r.mismatches);
        }
    }

    #[test]
    fn filing_workload_shape_tracks_the_seed() {
        let a = filing_workload(0, 1, 1, true);
        let b = filing_workload(1, 1, 1, true);
        assert_eq!(a.clients, 2);
        assert_eq!(b.clients, 3);
        assert!(!a.typed_completion);
        assert!(b.typed_completion);
    }
}
