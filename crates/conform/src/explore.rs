//! Bounded schedule exploration of the shard-lock hot paths.
//!
//! The lock-striped space has exactly one multi-lock pattern on its hot
//! path: a cross-shard AD store locks the container's and the target's
//! shards in canonical ascending order. Its cold path — `atomic` — takes
//! *every* shard lock, also in ascending order. Deadlock freedom rests
//! entirely on that ordering discipline, so this explorer attacks it:
//! seeded worker threads hammer random cross-shard lock *pairs* (both
//! orders of shard identity, which the canonical ordering must
//! normalise) interleaved with periodic all-shard atomic sections, while
//! the main thread watches a wall clock. A run that stops making
//! progress past the timeout is reported as a suspected deadlock with a
//! replay seed; a run that completes is then audited (per-shard counters
//! must sum to the merged view, structural invariants must hold).

use i432_arch::{
    check_invariants, AccessDescriptor, ObjectSpec, Rights, ShardedSpace, SharedSpace, SpaceAccess,
    SpaceAccessExt,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Parameters for one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Seed for the per-worker operation streams.
    pub seed: u64,
    /// Lock stripes in the space under test.
    pub shards: u32,
    /// Concurrent worker threads.
    pub workers: u32,
    /// Lock-pair operations per worker.
    pub ops_per_worker: u32,
    /// Wall-clock budget per worker before declaring a deadlock.
    pub timeout: Duration,
}

impl ExploreConfig {
    /// A small default: enough to cross every shard pair many times.
    pub fn smoke(seed: u64) -> ExploreConfig {
        ExploreConfig {
            seed,
            shards: 4,
            workers: 4,
            ops_per_worker: 2_000,
            timeout: Duration::from_secs(30),
        }
    }
}

/// What a completed (non-deadlocked) exploration observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport {
    /// The seed explored.
    pub seed: u64,
    /// Total store operations performed.
    pub ops: u64,
    /// How many of them crossed shards (two-lock path).
    pub cross_shard_pairs: u64,
    /// All-shard atomic sections executed.
    pub atomic_sections: u64,
}

/// Objects pre-created per shard for the workers to link between.
const OBJS_PER_SHARD: u32 = 8;

/// Runs one bounded exploration. `Err` carries a human-readable reason —
/// a suspected deadlock (worker past the timeout) or a post-run audit
/// failure — always ending with the replay seed.
pub fn explore(cfg: &ExploreConfig) -> Result<ExploreReport, String> {
    assert!(cfg.shards >= 2, "exploration needs at least two stripes");
    // Setup allocations below are emitted under the host context.
    i432_trace::set_context(0, 0);
    let mut space = ShardedSpace::new(
        64 * 1024 * cfg.shards,
        2048 * cfg.shards,
        512 * cfg.shards,
        cfg.shards,
    );
    // Per-shard target objects, minted with full rights so any of them
    // can serve as the container of a cross-shard edge.
    let mut objs: Vec<AccessDescriptor> = Vec::new();
    for k in 0..cfg.shards {
        let sro = space.root_sro_of(k);
        for _ in 0..OBJS_PER_SHARD {
            let o = space
                .create_object(sro, ObjectSpec::generic(16, OBJS_PER_SHARD))
                .map_err(|e| format!("seed {}: setup allocation failed: {e:?}", cfg.seed))?;
            objs.push(space.mint(o, Rights::ALL));
        }
    }
    let shards = cfg.shards;
    let shared = Arc::new(SharedSpace::new(space));
    let objs = Arc::new(objs);
    let (tx, rx) = mpsc::channel::<(u32, u64, u64, u64)>();

    let mut handles = Vec::new();
    for w in 0..cfg.workers {
        let shared = Arc::clone(&shared);
        let objs = Arc::clone(&objs);
        let tx = tx.clone();
        let seed = cfg.seed ^ (u64::from(w) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let ops = cfg.ops_per_worker;
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut agent = shared.agent();
            let mut cross = 0u64;
            let mut atomics = 0u64;
            for i in 0..ops {
                // Stamp the trace context with (worker, operation number)
                // so a traced run merges into a schedule-independent
                // timeline: every emitted record is a pure function of
                // this worker's seeded operation stream. No-op without
                // the `trace` feature.
                i432_trace::set_context(w as u16 + 1, u64::from(i));
                let container = objs[rng.random_range(0usize..objs.len())];
                let target = objs[rng.random_range(0usize..objs.len())];
                let slot = rng.random_range(0u32..OBJS_PER_SHARD);
                agent
                    .store_ad_hw(container.obj, slot, Some(target))
                    .expect("pre-created objects stay live");
                if container.obj.index.0 % shards != target.obj.index.0 % shards {
                    cross += 1;
                }
                // Periodically grab every shard lock while peers hold
                // single and paired locks — the classic deadlock recipe
                // if the ordering discipline were ever violated.
                if i % 64 == 63 {
                    agent.atomically(|sm| {
                        let _ = sm.stats();
                    });
                    atomics += 1;
                }
            }
            let _ = tx.send((w, u64::from(ops), cross, atomics));
        }));
    }
    drop(tx);

    let mut ops = 0u64;
    let mut cross_shard_pairs = 0u64;
    let mut atomic_sections = 0u64;
    for _ in 0..cfg.workers {
        match rx.recv_timeout(cfg.timeout) {
            Ok((_, o, c, a)) => {
                ops += o;
                cross_shard_pairs += c;
                atomic_sections += a;
            }
            Err(_) => {
                // Do not join: the stuck threads hold their Arcs, and the
                // space stays alive with them. Report and get out.
                return Err(format!(
                    "seed {}: suspected deadlock — a worker made no progress for {:?}; \
                     replay: cargo run --release -p i432-conform --bin conform_fuzz -- \
                     --explore 1 --start {}",
                    cfg.seed, cfg.timeout, cfg.seed
                ));
            }
        }
    }
    for h in handles {
        h.join().map_err(|_| {
            format!(
                "seed {}: a worker panicked after reporting completion",
                cfg.seed
            )
        })?;
    }

    // All workers are done and joined: ours is the only Arc left.
    let shared = Arc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("all workers joined; the handle cannot be shared"));
    let space = shared.into_inner();

    // Audit 1: the merged counters equal the sum of the per-shard views.
    let merged = space.stats();
    let mut summed = i432_arch::SpaceStats::default();
    for k in 0..space.shard_count() {
        summed.merge(&space.stats_of_shard(k));
    }
    if summed != merged {
        return Err(format!(
            "seed {}: per-shard stats sum {summed:?} != merged view {merged:?}",
            cfg.seed
        ));
    }
    // Audit 2: structural invariants of the final space.
    let problems = check_invariants(&space);
    if !problems.is_empty() {
        return Err(format!(
            "seed {}: invariants violated after exploration: {problems:?}",
            cfg.seed
        ));
    }
    Ok(ExploreReport {
        seed: cfg.seed,
        ops,
        cross_shard_pairs,
        atomic_sections,
    })
}

/// Runs one exploration with the flight recorder armed and returns the
/// merged timeline next to the report.
///
/// Determinism contract: worker `w` stamps every record with processor
/// id `w + 1` and its operation number as the cycle, so each
/// per-processor event stream is a pure function of the seed. Two
/// replays of the same seed therefore agree exactly on
/// [`i432_trace::Timeline::replay_view`] — the projection to
/// schedule-deterministic kinds. (Kinds like the write-barrier shade
/// fire only on the first store to reach an object, which depends on
/// the host interleaving; `replay_view` excludes them.)
///
/// The recorder is process-global: callers that assert on the returned
/// timeline must hold [`i432_trace::test_guard`].
pub fn explore_traced(
    cfg: &ExploreConfig,
) -> Result<(ExploreReport, i432_trace::Timeline), String> {
    i432_trace::reset();
    let report = explore(cfg)?;
    Ok((report, i432_trace::drain_timeline()))
}
