//! # imax-ipc — the iMAX interprocess-communication packages
//!
//! This crate renders the paper's two figures in Rust, preserving their
//! structure and their central claim:
//!
//! * [`untyped`] — **Figure 1**, `package Untyped_Ports`: `Create_port`
//!   (software implemented), `Send` and `Receive` (single hardware
//!   instructions), over `any_access` (an untyped access descriptor).
//! * [`typed`] — **Figure 2**, `generic package Typed_Ports`: a generic
//!   (compile-time typed) view over the same mechanism. "The inline
//!   facility allows the code generated for any instance of this package
//!   to be *identical* to that generated for the untyped port package.
//!   Thus the user of typed ports suffers no penalty relative to even a
//!   hypothetical assembly language programmer." Rust generics and
//!   `#[inline]` zero-sized wrappers reproduce this: benchmark C4 shows
//!   equal simulated cost.
//! * [`checked`] — the paper's "one step further ... to provide the type
//!   checking dynamically at runtime. The implementation would require a
//!   few more generated instructions making use of user-defined types":
//!   ports bound to a type definition object that verify each message's
//!   hardware type identity.

#![warn(missing_docs)]

pub mod checked;
pub mod typed;
pub mod untyped;

pub use checked::CheckedPort;
pub use typed::{PortMessage, TypedPort};
pub use untyped::{create_port, register_port_services, Port, PortServiceIds};
