//! `generic package Typed_Ports` — Figure 2 of the paper.
//!
//! ```text
//! generic
//!     type user_message is private;
//! package Typed_Ports is
//!     type user_port is private;
//!     function Create(message_count ...; port_discipline ...) return user_port;
//!     procedure Send(prt: user_port; msg: user_message);
//!     procedure Receive(prt: user_port; msg: out user_message);
//! private
//!     pragma inline (Send, Receive);
//!     type user_port is new port;
//! end Typed_Ports;
//! ```
//!
//! "The user may create an instance of this package for any access type,
//! thus creating a new Ada level type `user_port` that can be type checked
//! at compile time ... The implementation of this package is in terms of
//! `Untyped_Ports` and an `unchecked_conversion` ... the code generated
//! for any instance of this package \[is\] *identical* to that generated for
//! the untyped port package."
//!
//! The Rust rendering: [`TypedPort<M>`] is a zero-sized-wrapper over
//! [`Port`] whose `send`/`receive` are `#[inline]` calls to the untyped
//! operations — the monomorphized code *is* the untyped code (benchmark C4
//! verifies equal simulated cycles). Rust's `PhantomData` plays the role
//! of the generic formal; moving between `M` and `any_access` inside the
//! body is the `unchecked_conversion`.

use crate::untyped::{self, Port};
use i432_arch::{
    AccessDescriptor, ObjectRef, ObjectSpec, PortDiscipline, Rights, SpaceAccess, SpaceMut,
};
use i432_gdp::Fault;
use std::marker::PhantomData;

/// The generic formal: a message type that knows its object layout.
///
/// A `user_message` is represented as an object whose data part holds the
/// value. Implementations define the marshalling; the port machinery
/// never inspects it (that is the point of Figure 2: typing is purely a
/// compile-time wrapper). Marshalling is generic over the capability
/// boundary, so typed ports work identically over the unsharded space,
/// the striped shared space, and the `&mut dyn SpaceMut` view native
/// services receive.
pub trait PortMessage: Sized {
    /// Data-part bytes an instance needs.
    const DATA_LEN: u32;
    /// Access-part slots an instance needs.
    const ACCESS_LEN: u32 = 0;

    /// Writes `self` into the object behind `ad`.
    fn store<S: SpaceAccess + ?Sized>(
        &self,
        space: &mut S,
        ad: AccessDescriptor,
    ) -> Result<(), Fault>;

    /// Reads an instance from the object behind `ad`.
    fn load<S: SpaceAccess + ?Sized>(space: &mut S, ad: AccessDescriptor) -> Result<Self, Fault>;
}

impl PortMessage for u64 {
    const DATA_LEN: u32 = 8;

    fn store<S: SpaceAccess + ?Sized>(
        &self,
        space: &mut S,
        ad: AccessDescriptor,
    ) -> Result<(), Fault> {
        space.write_u64(ad, 0, *self).map_err(Fault::from)
    }

    fn load<S: SpaceAccess + ?Sized>(space: &mut S, ad: AccessDescriptor) -> Result<u64, Fault> {
        space.read_u64(ad, 0).map_err(Fault::from)
    }
}

impl<const N: usize> PortMessage for [u8; N] {
    const DATA_LEN: u32 = N as u32;

    fn store<S: SpaceAccess + ?Sized>(
        &self,
        space: &mut S,
        ad: AccessDescriptor,
    ) -> Result<(), Fault> {
        space.write_data(ad, 0, self).map_err(Fault::from)
    }

    fn load<S: SpaceAccess + ?Sized>(
        space: &mut S,
        ad: AccessDescriptor,
    ) -> Result<[u8; N], Fault> {
        let mut buf = [0u8; N];
        space.read_data(ad, 0, &mut buf).map_err(Fault::from)?;
        Ok(buf)
    }
}

/// Figure 2's `user_port`: a compile-time-typed port.
///
/// `TypedPort<M>` is the same size as [`Port`]; the type parameter exists
/// only at compile time.
#[derive(Debug, PartialEq, Eq)]
pub struct TypedPort<M: PortMessage> {
    port: Port,
    _user_message: PhantomData<fn(M) -> M>,
}

// Manual impls: `derive` would bound them on `M`.
impl<M: PortMessage> Clone for TypedPort<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M: PortMessage> Copy for TypedPort<M> {}

impl<M: PortMessage> TypedPort<M> {
    /// Figure 2's `Create`.
    pub fn create<S: SpaceAccess + ?Sized>(
        space: &mut S,
        sro: ObjectRef,
        message_count: u32,
        discipline: PortDiscipline,
    ) -> Result<TypedPort<M>, Fault> {
        Ok(TypedPort {
            port: untyped::create_port(space, sro, message_count, discipline)?,
            _user_message: PhantomData,
        })
    }

    /// Views an untyped port as typed (the package-private
    /// `type user_port is new port`). The caller asserts the discipline
    /// by construction — this is exactly Ada's derived-type conversion,
    /// checked at compile time thereafter.
    pub fn from_port(port: Port) -> TypedPort<M> {
        TypedPort {
            port,
            _user_message: PhantomData,
        }
    }

    /// The underlying untyped port.
    #[inline]
    pub fn as_port(&self) -> Port {
        self.port
    }

    /// Figure 2's `Send`: marshals `msg` into a fresh object from `sro`
    /// and sends its access descriptor. Compiles to the untyped send.
    #[inline]
    pub fn send<S: SpaceMut + ?Sized>(
        &self,
        space: &mut S,
        sro: ObjectRef,
        msg: &M,
    ) -> Result<(), Fault> {
        let obj = space
            .create_object(sro, ObjectSpec::generic(M::DATA_LEN, M::ACCESS_LEN))
            .map_err(Fault::from)?;
        let ad = space.mint(obj, Rights::READ | Rights::WRITE);
        msg.store(space, ad)?;
        untyped::send(space, self.port, ad)
    }

    /// Sends an already-marshalled message object (the zero-copy path —
    /// byte-for-byte the untyped send; benchmark C4 measures this one).
    #[inline]
    pub fn send_ad<S: SpaceMut + ?Sized>(
        &self,
        space: &mut S,
        msg: AccessDescriptor,
    ) -> Result<(), Fault> {
        untyped::send(space, self.port, msg)
    }

    /// Figure 2's `Receive`: receives and unmarshals one message.
    /// Returns `Ok(None)` when the queue is empty (host-level view).
    #[inline]
    pub fn receive<S: SpaceMut + ?Sized>(&self, space: &mut S) -> Result<Option<M>, Fault> {
        match untyped::receive(space, self.port)? {
            Some(ad) => Ok(Some(M::load(space, ad)?)),
            None => Ok(None),
        }
    }

    /// Receives without unmarshalling (zero-copy path).
    #[inline]
    pub fn receive_ad<S: SpaceMut + ?Sized>(
        &self,
        space: &mut S,
    ) -> Result<Option<AccessDescriptor>, Fault> {
        untyped::receive(space, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::ObjectSpace;

    fn space() -> ObjectSpace {
        ObjectSpace::new(64 * 1024, 8 * 1024, 1024)
    }

    #[test]
    fn figure2_typed_roundtrip() {
        let mut s = space();
        let root = s.root_sro();
        let prt: TypedPort<u64> = TypedPort::create(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
        prt.send(&mut s, root, &12345).unwrap();
        prt.send(&mut s, root, &67890).unwrap();
        assert_eq!(prt.receive(&mut s).unwrap(), Some(12345));
        assert_eq!(prt.receive(&mut s).unwrap(), Some(67890));
        assert_eq!(prt.receive(&mut s).unwrap(), None);
    }

    #[test]
    fn array_messages() {
        let mut s = space();
        let root = s.root_sro();
        let prt: TypedPort<[u8; 12]> =
            TypedPort::create(&mut s, root, 2, PortDiscipline::Fifo).unwrap();
        prt.send(&mut s, root, b"hello world!").unwrap();
        assert_eq!(prt.receive(&mut s).unwrap(), Some(*b"hello world!"));
    }

    #[test]
    fn typed_port_is_zero_cost_wrapper() {
        // The compile-time claim: a TypedPort is exactly a Port.
        assert_eq!(
            std::mem::size_of::<TypedPort<u64>>(),
            std::mem::size_of::<Port>()
        );
    }

    #[test]
    fn typed_and_untyped_share_hardware_stats() {
        // Both views drive the identical hardware op: the port's counters
        // cannot tell them apart.
        let mut s = space();
        let root = s.root_sro();
        let prt: TypedPort<u64> = TypedPort::create(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
        prt.send(&mut s, root, &1).unwrap();
        // Untyped view of the same port.
        let raw = prt.as_port();
        let got = untyped::receive(&mut s, raw).unwrap().unwrap();
        assert_eq!(s.read_u64(got, 0).unwrap(), 1);
        let st = s.port(prt.as_port().object()).unwrap();
        assert_eq!(st.stats.sends, 1);
        assert_eq!(st.stats.receives, 1);
    }
}
