//! Runtime-checked typed ports.
//!
//! Paper §4: "It is possible to take the idea of typed ports one step
//! further in the 432 to provide the type checking dynamically at
//! runtime. The implementation would require a few more generated
//! instructions making use of user-defined types but would otherwise be
//! the same as above."
//!
//! A [`CheckedPort`] is bound to a type definition object; every send and
//! receive verifies the message's *hardware* type identity against that
//! TDO — protection that holds even for messages produced by non-Ada code
//! or resurrected from storage (paper §7.2).

use crate::untyped::{self, Port};
use i432_arch::{AccessDescriptor, ObjectRef, ObjectSpace};
use i432_gdp::{Fault, FaultKind};

/// A port that admits only instances of one user-defined type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckedPort {
    port: Port,
    tdo: ObjectRef,
}

impl CheckedPort {
    /// Binds an untyped port to a type definition object.
    pub fn bind(port: Port, tdo: ObjectRef) -> CheckedPort {
        CheckedPort { port, tdo }
    }

    /// The underlying untyped port.
    pub fn as_port(&self) -> Port {
        self.port
    }

    /// The type this port admits.
    pub fn tdo(&self) -> ObjectRef {
        self.tdo
    }

    /// The "few more generated instructions": one object-table lookup
    /// comparing the message's type identity against the bound TDO.
    fn check(&self, space: &ObjectSpace, msg: AccessDescriptor) -> Result<(), Fault> {
        i432_trace::emit(i432_trace::EventKind::TypeCheck, msg.obj.index.0);
        i432_trace::bump(i432_trace::Counter::TypeChecks);
        let otype = space.table.get(msg.obj).map_err(Fault::from)?.desc.otype;
        if otype.user_tdo() != Some(self.tdo) {
            return Err(Fault::with_detail(
                FaultKind::TypeMismatch,
                "message is not an instance of the port's bound type",
            ));
        }
        Ok(())
    }

    /// Sends after verifying the message's hardware type identity.
    pub fn send(&self, space: &mut ObjectSpace, msg: AccessDescriptor) -> Result<(), Fault> {
        self.check(space, msg)?;
        untyped::send(space, self.port, msg)
    }

    /// Receives and verifies the message's hardware type identity.
    ///
    /// A mismatch faults rather than silently delivering — the queue held
    /// an object that should never have entered it (possible only if a
    /// holder of raw send rights bypassed this wrapper, which the rights
    /// system exists to prevent).
    pub fn receive(&self, space: &mut ObjectSpace) -> Result<Option<AccessDescriptor>, Fault> {
        match untyped::receive(space, self.port)? {
            Some(msg) => {
                self.check(space, msg)?;
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{
        ObjectSpec, ObjectType, PortDiscipline, Rights, SysState, SystemType, TdoState,
    };

    fn space_with_tdo() -> (ObjectSpace, ObjectRef) {
        let mut s = ObjectSpace::new(64 * 1024, 8 * 1024, 1024);
        let root = s.root_sro();
        let tdo = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::TDO_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::TypeDefinition),
                    level: None,
                    sys: SysState::TypeDef(TdoState::new("parcel")),
                },
            )
            .unwrap();
        (s, tdo)
    }

    fn instance(s: &mut ObjectSpace, tdo: ObjectRef) -> AccessDescriptor {
        let root = s.root_sro();
        let o = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 16,
                    access_len: 0,
                    otype: ObjectType::User(tdo),
                    level: None,
                    sys: SysState::Generic,
                },
            )
            .unwrap();
        s.mint(o, Rights::READ | Rights::WRITE)
    }

    #[test]
    fn accepts_instances_of_bound_type() {
        let (mut s, tdo) = space_with_tdo();
        let root = s.root_sro();
        let raw = untyped::create_port(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
        let prt = CheckedPort::bind(raw, tdo);
        let msg = instance(&mut s, tdo);
        prt.send(&mut s, msg).unwrap();
        assert_eq!(prt.receive(&mut s).unwrap(), Some(msg));
    }

    #[test]
    fn rejects_generic_objects() {
        let (mut s, tdo) = space_with_tdo();
        let root = s.root_sro();
        let raw = untyped::create_port(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
        let prt = CheckedPort::bind(raw, tdo);
        let generic = s.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
        let msg = s.mint(generic, Rights::READ);
        let e = prt.send(&mut s, msg).unwrap_err();
        assert_eq!(e.kind, FaultKind::TypeMismatch);
    }

    #[test]
    fn rejects_instances_of_other_types() {
        let (mut s, tdo_a) = space_with_tdo();
        let root = s.root_sro();
        let tdo_b = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::TDO_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::TypeDefinition),
                    level: None,
                    sys: SysState::TypeDef(TdoState::new("other")),
                },
            )
            .unwrap();
        let raw = untyped::create_port(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
        let prt = CheckedPort::bind(raw, tdo_a);
        let msg = instance(&mut s, tdo_b);
        assert!(prt.send(&mut s, msg).is_err());
    }

    #[test]
    fn receive_detects_smuggled_messages() {
        let (mut s, tdo) = space_with_tdo();
        let root = s.root_sro();
        let raw = untyped::create_port(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
        let prt = CheckedPort::bind(raw, tdo);
        // Someone with raw send rights bypasses the wrapper.
        let generic = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let msg = s.mint(generic, Rights::READ);
        untyped::send(&mut s, raw, msg).unwrap();
        assert!(prt.receive(&mut s).is_err());
    }
}
