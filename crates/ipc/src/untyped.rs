//! `package Untyped_Ports` — Figure 1 of the paper.
//!
//! ```text
//! package Untyped_Ports is
//!     function Create_port(
//!         message_count: short_ordinal range 1 .. max_msg_cnt;
//!         port_discipline: q_discipline := FIFO) return port;
//!     procedure Send(prt: port; msg: any_access);
//!     procedure Receive(prt: port; msg: out any_access);
//! private
//!     pragma inline (Send, Receive);
//! end Untyped_Ports;
//! ```
//!
//! `Send` and `Receive` "will correspond to single instructions, while
//! `Create` is software implemented": here `send`/`receive` are `#[inline]`
//! shims over the hardware port operations of `i432-gdp`, and
//! [`create_port`] is the software constructor ("The 432 protection
//! structures guarantee that only this package has the necessary access
//! environment to create port objects") — also exposed to interpreted
//! programs as a native iMAX service via [`register_port_services`].

use i432_arch::{
    AccessDescriptor, NativeId, ObjectRef, ObjectSpec, ObjectType, PortDiscipline, PortState,
    Rights, SpaceAccess, SpaceMut, SysState, SystemType,
};
use i432_gdp::{
    native::{NativeRegistry, NativeReturn},
    port::{self, RecvOutcome, SendOutcome},
    Fault, FaultKind,
};

/// Figure 1's `max_msg_cnt`: the largest message queue a port may have.
pub const MAX_MSG_CNT: u32 = 4096;

/// Default waiting-process capacity for created ports.
pub const DEFAULT_WAIT_CAPACITY: u32 = 64;

/// Figure 1's `port` type: an Ada access to a hardware port object.
///
/// The wrapper is `Copy` and carries the send+receive rights the creator
/// received; restricted views are made with [`Port::send_only`] /
/// [`Port::receive_only`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Port {
    ad: AccessDescriptor,
}

impl Port {
    /// Wraps an existing port access descriptor (e.g. one received as a
    /// message).
    pub fn from_ad(ad: AccessDescriptor) -> Port {
        Port { ad }
    }

    /// The underlying access descriptor (`any_access` view).
    #[inline]
    pub fn ad(&self) -> AccessDescriptor {
        self.ad
    }

    /// The port object.
    #[inline]
    pub fn object(&self) -> ObjectRef {
        self.ad.obj
    }

    /// A view that can only send.
    pub fn send_only(&self) -> Port {
        Port {
            ad: self.ad.restricted(Rights::SEND),
        }
    }

    /// A view that can only receive.
    pub fn receive_only(&self) -> Port {
        Port {
            ad: self.ad.restricted(Rights::RECEIVE),
        }
    }
}

/// `Create_port` — software-implemented port construction.
///
/// Allocates the port object (its access part sized for the message area
/// plus the waiting-process area) from `sro` and returns a send+receive
/// capable [`Port`].
pub fn create_port<S: SpaceAccess + ?Sized>(
    space: &mut S,
    sro: ObjectRef,
    message_count: u32,
    discipline: PortDiscipline,
) -> Result<Port, Fault> {
    if message_count == 0 || message_count > MAX_MSG_CNT {
        return Err(Fault::with_detail(
            FaultKind::Bounds,
            format!("message_count {message_count} outside 1..{MAX_MSG_CNT}"),
        ));
    }
    let port = space
        .create_object(
            sro,
            ObjectSpec {
                data_len: 0,
                access_len: PortState::access_slots(message_count, DEFAULT_WAIT_CAPACITY),
                otype: ObjectType::System(SystemType::Port),
                level: None,
                sys: SysState::Port(PortState::new(
                    message_count,
                    DEFAULT_WAIT_CAPACITY,
                    discipline,
                )),
            },
        )
        .map_err(Fault::from)?;
    Ok(Port {
        ad: space.mint(port, Rights::SEND | Rights::RECEIVE),
    })
}

/// `Send` — a single hardware instruction.
///
/// This host-level entry point is non-blocking (only a simulated process
/// can block); a full queue is reported as a [`FaultKind::QueueOverflow`]
/// fault. Processes inside the simulation use the SEND instruction, which
/// blocks exactly as Figure 1 specifies.
#[inline]
pub fn send<S: SpaceMut + ?Sized>(
    space: &mut S,
    prt: Port,
    msg: AccessDescriptor,
) -> Result<(), Fault> {
    match port::send(space, None, prt.ad, msg, 0, false, false)? {
        SendOutcome::Delivered | SendOutcome::Queued => Ok(()),
        SendOutcome::WouldBlock | SendOutcome::Blocked => Err(Fault::with_detail(
            FaultKind::QueueOverflow,
            "host-level send on full port",
        )),
    }
}

/// `Receive` — a single hardware instruction.
///
/// Host-level, non-blocking: an empty queue returns `Ok(None)`.
#[inline]
pub fn receive<S: SpaceMut + ?Sized>(
    space: &mut S,
    prt: Port,
) -> Result<Option<AccessDescriptor>, Fault> {
    match port::receive(space, None, prt.ad, false, false)? {
        RecvOutcome::Received(msg) => Ok(Some(msg)),
        RecvOutcome::WouldBlock => Ok(None),
        RecvOutcome::Blocked => unreachable!("host receive never blocks"),
    }
}

/// Native-service ids installed by [`register_port_services`].
#[derive(Debug, Clone, Copy)]
pub struct PortServiceIds {
    /// `Untyped_Ports.Create_port(message_count, discipline)`.
    ///
    /// Argument object data part: `message_count: u64` at offset 0,
    /// `discipline: u64` at offset 8 (0 = FIFO, 1 = priority,
    /// 2 = deadline). Returns the new port AD.
    pub create_port: NativeId,
}

/// Registers the software-implemented half of `Untyped_Ports` as iMAX
/// native services, callable by interpreted programs through the ordinary
/// CALL instruction.
pub fn register_port_services(natives: &mut NativeRegistry) -> PortServiceIds {
    let create_port_id = natives.register("untyped_ports.create_port", |cx| {
        let arg = cx.arg().ok_or_else(|| {
            Fault::with_detail(
                FaultKind::NullAccess,
                "create_port needs an argument record",
            )
        })?;
        let message_count = cx.space.read_u64(arg, 0).map_err(Fault::from)? as u32;
        let discipline = match cx.space.read_u64(arg, 8).map_err(Fault::from)? {
            0 => PortDiscipline::Fifo,
            1 => PortDiscipline::Priority,
            2 => PortDiscipline::Deadline,
            other => {
                return Err(Fault::with_detail(
                    FaultKind::Bounds,
                    format!("unknown q_discipline {other}"),
                ))
            }
        };
        // Allocate from the calling process's SRO.
        let sro = cx
            .space
            .load_ad_hw(cx.process, i432_arch::sysobj::PROC_SLOT_SRO)
            .map_err(Fault::from)?
            .ok_or_else(|| Fault::with_detail(FaultKind::NullAccess, "process has no SRO"))?;
        // Software construction cost: descriptor build + queue area init.
        cx.charge(200 + 2 * message_count as u64);
        let port = create_port(cx.space, sro.obj, message_count, discipline)?;
        Ok(NativeReturn::ad(port.ad()))
    });
    PortServiceIds {
        create_port: create_port_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::ObjectSpace;

    fn space() -> ObjectSpace {
        ObjectSpace::new(64 * 1024, 8 * 1024, 1024)
    }

    fn msg(space: &mut ObjectSpace, tag: u64) -> AccessDescriptor {
        let root = space.root_sro();
        let o = space
            .create_object(root, ObjectSpec::generic(16, 0))
            .unwrap();
        let ad = space.mint(o, Rights::READ | Rights::WRITE);
        space.write_u64(ad, 0, tag).unwrap();
        ad
    }

    #[test]
    fn figure1_create_send_receive() {
        let mut s = space();
        let root = s.root_sro();
        let prt = create_port(&mut s, root, 4, PortDiscipline::Fifo).unwrap();
        let m = msg(&mut s, 7);
        send(&mut s, prt, m).unwrap();
        let got = receive(&mut s, prt).unwrap().unwrap();
        assert_eq!(s.read_u64(got, 0).unwrap(), 7);
        assert_eq!(receive(&mut s, prt).unwrap(), None);
    }

    #[test]
    fn message_count_range_enforced() {
        let mut s = space();
        let root = s.root_sro();
        assert!(create_port(&mut s, root, 0, PortDiscipline::Fifo).is_err());
        assert!(create_port(&mut s, root, MAX_MSG_CNT + 1, PortDiscipline::Fifo).is_err());
    }

    #[test]
    fn full_port_reports_overflow_at_host_level() {
        let mut s = space();
        let root = s.root_sro();
        let prt = create_port(&mut s, root, 1, PortDiscipline::Fifo).unwrap();
        let m1 = msg(&mut s, 1);
        let m2 = msg(&mut s, 2);
        send(&mut s, prt, m1).unwrap();
        let e = send(&mut s, prt, m2).unwrap_err();
        assert_eq!(e.kind, FaultKind::QueueOverflow);
    }

    #[test]
    fn restricted_views_enforce_direction() {
        let mut s = space();
        let root = s.root_sro();
        let prt = create_port(&mut s, root, 2, PortDiscipline::Fifo).unwrap();
        let tx = prt.send_only();
        let rx = prt.receive_only();
        let m = msg(&mut s, 9);
        send(&mut s, tx, m).unwrap();
        // The send-only view cannot receive, and vice versa.
        assert!(receive(&mut s, tx).is_err());
        assert!(send(&mut s, rx, m).is_err());
        assert!(receive(&mut s, rx).unwrap().is_some());
    }

    #[test]
    fn native_create_port_service() {
        use i432_arch::sysobj::PROC_SLOT_SRO;
        let mut s = space();
        let root = s.root_sro();
        let mut natives = NativeRegistry::new();
        let ids = register_port_services(&mut natives);

        // Fake a calling process with an SRO and an argument record.
        let proc_obj = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::PROC_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Process),
                    level: None,
                    sys: SysState::Process(i432_arch::ProcessState::new(i432_arch::Level(0))),
                },
            )
            .unwrap();
        let sro_ad = s.mint(root, Rights::ALLOCATE);
        s.store_ad_hw(proc_obj, PROC_SLOT_SRO, Some(sro_ad))
            .unwrap();
        let ctx_obj = s.create_object(root, ObjectSpec::generic(0, 8)).unwrap();
        let arg = s.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
        let arg_ad = s.mint(arg, Rights::READ | Rights::WRITE);
        s.write_u64(arg_ad, 0, 8).unwrap(); // message_count
        s.write_u64(arg_ad, 8, 1).unwrap(); // priority discipline
        s.store_ad_hw(ctx_obj, i432_arch::sysobj::CTX_SLOT_ARG, Some(arg_ad))
            .unwrap();

        let mut cx = i432_gdp::NativeCtx {
            space: &mut s,
            process: proc_obj,
            context: ctx_obj,
            cycles: 0,
        };
        let ret = natives.invoke(ids.create_port, &mut cx).unwrap();
        let port_ad = ret.ad.expect("port AD returned");
        assert!(cx.cycles > 0);
        let st = s.port(port_ad.obj).unwrap();
        assert_eq!(st.capacity, 8);
        assert_eq!(st.discipline, PortDiscipline::Priority);
    }
}
