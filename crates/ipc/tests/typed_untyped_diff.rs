//! Typed-vs-untyped port differential (Figure 2's zero-overhead claim,
//! checked through the flight recorder).
//!
//! The same workload pushed through `ipc::typed` and `ipc::untyped`
//! must cost identical simulated cycles and leave identical trace event
//! sequences; the runtime-checked wrapper may differ only by the
//! `type_check` event. Cycle equality holds in both feature
//! configurations; the event-sequence assertions need `--features
//! trace` (without it every arm records the same empty sequence, which
//! the asserts still accept).

use i432_arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_SRO};
use i432_arch::{
    AccessDescriptor, ObjectRef, ObjectSpace, ObjectSpec, ObjectType, PortDiscipline, Rights,
    SysState, SystemType, TdoState,
};
use i432_gdp::isa::{AluOp, DataDst, DataRef, Instruction};
use i432_gdp::ProgramBuilder;
use i432_sim::{RunOutcome, System, SystemConfig};
use i432_trace::EventKind;
use imax_ipc::{untyped, CheckedPort, PortMessage, TypedPort};

/// Drained `(kind, obj)` pairs in merged order — cycle stamps are all
/// zero for host-level operations, so the per-ring sequence keeps the
/// emission order.
fn drained_kinds() -> Vec<(EventKind, u32)> {
    i432_trace::drain_timeline()
        .events
        .into_iter()
        .map(|e| (e.kind, e.obj))
        .collect()
}

fn fresh_space() -> ObjectSpace {
    ObjectSpace::new(64 * 1024, 8 * 1024, 1024)
}

// -- Host-level arms ---------------------------------------------------------

const ROUNDS: u64 = 32;

/// The untyped arm: marshal into a fresh object, send, receive, read
/// back — exactly what `TypedPort::send`/`receive` expand to.
fn run_untyped(s: &mut ObjectSpace) -> Vec<u64> {
    let root = s.root_sro();
    let prt = untyped::create_port(s, root, 4, PortDiscipline::Fifo).unwrap();
    let mut got = Vec::new();
    for i in 0..ROUNDS {
        let obj = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let ad = s.mint(obj, Rights::READ | Rights::WRITE);
        s.write_u64(ad, 0, i * 3).unwrap();
        untyped::send(s, prt, ad).unwrap();
        let back = untyped::receive(s, prt).unwrap().unwrap();
        got.push(s.read_u64(back, 0).unwrap());
    }
    got
}

/// The typed arm: the `Typed_Ports` instance for `u64` over the same
/// workload.
fn run_typed(s: &mut ObjectSpace) -> Vec<u64> {
    let root = s.root_sro();
    let prt: TypedPort<u64> = TypedPort::create(s, root, 4, PortDiscipline::Fifo).unwrap();
    let mut got = Vec::new();
    for i in 0..ROUNDS {
        prt.send(s, root, &(i * 3)).unwrap();
        got.push(prt.receive(s).unwrap().unwrap());
    }
    got
}

#[test]
fn typed_arm_emits_exactly_the_untyped_event_sequence() {
    let _guard = i432_trace::test_guard();

    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let mut a = fresh_space();
    let got_untyped = run_untyped(&mut a);
    let ev_untyped = drained_kinds();

    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let mut b = fresh_space();
    let got_typed = run_typed(&mut b);
    let ev_typed = drained_kinds();

    assert_eq!(got_untyped, got_typed, "payloads round-trip identically");
    assert_eq!(
        ev_untyped, ev_typed,
        "Figure 2: the typed instance is byte-for-byte the untyped code, \
         so the flight recorder cannot tell the arms apart"
    );
    if i432_trace::ENABLED {
        // Non-vacuity: the sequence really contains the port traffic.
        let sends = ev_untyped
            .iter()
            .filter(|(k, _)| *k == EventKind::PortSend)
            .count() as u64;
        assert_eq!(sends, ROUNDS);
    }
}

#[test]
fn checked_arm_differs_only_by_type_check_events() {
    let _guard = i432_trace::test_guard();

    // Both arms share one space layout: a TDO plus per-round typed
    // instances, so object indices (and thus trace operands) line up.
    fn space_with_tdo() -> (ObjectSpace, ObjectRef) {
        let mut s = fresh_space();
        let root = s.root_sro();
        let tdo = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::TDO_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::TypeDefinition),
                    level: None,
                    sys: SysState::TypeDef(TdoState::new("parcel")),
                },
            )
            .unwrap();
        (s, tdo)
    }
    fn instance(s: &mut ObjectSpace, tdo: ObjectRef, v: u64) -> AccessDescriptor {
        let root = s.root_sro();
        let o = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 8,
                    access_len: 0,
                    otype: ObjectType::User(tdo),
                    level: None,
                    sys: SysState::Generic,
                },
            )
            .unwrap();
        let ad = s.mint(o, Rights::READ | Rights::WRITE);
        s.write_u64(ad, 0, v).unwrap();
        ad
    }

    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let (mut a, tdo_a) = space_with_tdo();
    {
        let root = a.root_sro();
        let prt = untyped::create_port(&mut a, root, 4, PortDiscipline::Fifo).unwrap();
        for i in 0..ROUNDS {
            let msg = instance(&mut a, tdo_a, i);
            untyped::send(&mut a, prt, msg).unwrap();
            untyped::receive(&mut a, prt).unwrap().unwrap();
        }
    }
    let ev_untyped = drained_kinds();

    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let (mut b, tdo_b) = space_with_tdo();
    {
        let root = b.root_sro();
        let raw = untyped::create_port(&mut b, root, 4, PortDiscipline::Fifo).unwrap();
        let prt = CheckedPort::bind(raw, tdo_b);
        for i in 0..ROUNDS {
            let msg = instance(&mut b, tdo_b, i);
            prt.send(&mut b, msg).unwrap();
            prt.receive(&mut b).unwrap().unwrap();
        }
    }
    let ev_checked = drained_kinds();

    let ev_checked_minus_tc: Vec<_> = ev_checked
        .iter()
        .copied()
        .filter(|(k, _)| *k != EventKind::TypeCheck)
        .collect();
    assert_eq!(
        ev_untyped, ev_checked_minus_tc,
        "the checked wrapper adds type_check events and nothing else"
    );
    if i432_trace::ENABLED {
        // "A few more generated instructions": one check per send and one
        // per successful receive.
        let checks = ev_checked
            .iter()
            .filter(|(k, _)| *k == EventKind::TypeCheck)
            .count() as u64;
        assert_eq!(checks, 2 * ROUNDS);
    }
}

// -- GDP-level cycle equality -------------------------------------------------

/// The instruction stream a `Typed_Ports` instance compiles to (the C4
/// benchmark's loop): monomorphization yields the same instructions for
/// every `M`.
fn send_receive_loop<M: PortMessage>(rounds: u64) -> Vec<Instruction> {
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(rounds), DataDst::Local(0));
    p.create_object(
        CTX_SLOT_SRO as u16,
        DataRef::Imm(M::DATA_LEN as u64),
        DataRef::Imm(M::ACCESS_LEN as u64),
        5,
    );
    p.bind(top);
    p.send(CTX_SLOT_ARG as u16, 5);
    p.receive(CTX_SLOT_ARG as u16, 5);
    p.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), top);
    p.halt();
    p.finish()
}

fn run_program(code: Vec<Instruction>) -> (u64, Vec<(EventKind, u32)>) {
    run_program_queued(code, false)
}

/// [`run_program`] with the port-ring registry armed when `queue` is
/// true, so the SEND/RECEIVE instructions take the lock-free fast path
/// whenever the port is in FAST mode.
fn run_program_queued(code: Vec<Instruction>, queue: bool) -> (u64, Vec<(EventKind, u32)>) {
    i432_trace::reset();
    i432_trace::set_context(0, 0);
    let mut sys = System::new(&SystemConfig::small());
    if queue {
        sys.space.port_ring_registry().set_enabled(true);
    }
    let root = sys.space.root_sro();
    let port = untyped::create_port(&mut sys.space, root, 4, PortDiscipline::Fifo).unwrap();
    sys.anchor(port.ad());
    let sub = sys.subprogram("loop", code, 64, 12);
    let dom = sys.install_domain("app", vec![sub], 0);
    let proc_ref = sys.spawn(dom, 0, Some(port.ad()));
    let outcome = sys.run_to_completion(100_000_000);
    assert_eq!(outcome, RunOutcome::Stopped);
    let cycles = sys.space.process(proc_ref).unwrap().total_cycles;
    let events = i432_trace::drain_timeline()
        .events
        .into_iter()
        .map(|e| (e.kind, e.obj))
        .collect();
    (cycles, events)
}

#[test]
fn gdp_cycles_and_events_identical_across_typed_instances() {
    let _guard = i432_trace::test_guard();
    let (untyped_cycles, untyped_events) = run_program(send_receive_loop::<u64>(64));
    let (typed_u64_cycles, typed_u64_events) = run_program(send_receive_loop::<u64>(64));
    let (typed_rec_cycles, typed_rec_events) = run_program(send_receive_loop::<[u8; 8]>(64));
    assert_eq!(untyped_cycles, typed_u64_cycles);
    assert_eq!(
        untyped_cycles, typed_rec_cycles,
        "every monomorphization executes the identical instruction stream \
         (message sizes are equal, so allocation costs match too)"
    );
    assert_eq!(untyped_events, typed_u64_events);
    assert_eq!(untyped_events, typed_rec_events);
    if i432_trace::ENABLED {
        assert!(
            untyped_events
                .iter()
                .any(|(k, _)| *k == EventKind::PortSend),
            "the traced run saw the port traffic"
        );
    }
    i432_trace::reset();
}

/// The port-ring fast path is zero-overhead on the deterministic
/// runner: the same typed send/receive loop run with the rings armed
/// and with them off must cost the identical simulated cycle count and
/// leave the identical schedule-deterministic event sequence. (The
/// queued run additionally records `port_fast_send`/`port_fast_receive`
/// diagnostics, which are excluded from schedule determinism by
/// construction.)
#[test]
fn queued_fast_path_costs_identical_cycles_on_the_deterministic_runner() {
    let _guard = i432_trace::test_guard();
    let (locked_cycles, locked_events) = run_program_queued(send_receive_loop::<u64>(64), false);
    let (queued_cycles, queued_events) = run_program_queued(send_receive_loop::<u64>(64), true);
    assert_eq!(
        locked_cycles, queued_cycles,
        "the ring may change who holds a message, never what it costs"
    );
    let deterministic = |ev: &[(EventKind, u32)]| {
        ev.iter()
            .copied()
            .filter(|(k, _)| k.is_schedule_deterministic())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        deterministic(&locked_events),
        deterministic(&queued_events),
        "both paths emit the same semantic port events in the same order"
    );
    if i432_trace::ENABLED {
        // Non-vacuity: the queued run really exercised the ring — after
        // the first locked rendezvous reopens it, every following round
        // goes fast.
        assert!(
            queued_events
                .iter()
                .any(|(k, _)| *k == EventKind::PortFastSend),
            "the ring carried traffic in the queued arm"
        );
        assert!(
            locked_events
                .iter()
                .all(|(k, _)| *k != EventKind::PortFastSend),
            "the locked arm never touched a ring"
        );
    }
    i432_trace::reset();
}
