//! End-to-end tests of the object-filing service: protocol
//! correctness against the host-side reference model, Figure 2's
//! zero-overhead claim over the device completion path, ring-on/off
//! cycle neutrality, threaded/deterministic agreement, and composition
//! with the garbage-collector daemon.

use i432_sim::RunOutcome;
use imax_filing::{build_filing_system, client_checksums, FilingWorkload};

const BUDGET: u64 = 200_000_000;

fn run_det(w: &FilingWorkload) -> (u64, Vec<u64>, imax_filing::FilingStats) {
    let (mut sys, handles) = build_filing_system(w);
    let outcome = sys.run_to_completion(BUDGET);
    assert!(
        matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
        "filing workload must complete: {outcome:?}"
    );
    let chk = client_checksums(&mut sys, &handles);
    (sys.now(), chk, handles.server.stats())
}

#[test]
fn deterministic_roundtrip_matches_reference_model() {
    let w = FilingWorkload::small(3, 4);
    let (_, chk, stats) = run_det(&w);
    let (_, handles) = build_filing_system(&w);
    let expect = handles.expected_checksums(w.seed, w.iters);
    assert_eq!(chk, expect, "every client sees the protocol's answers");
    assert_eq!(stats.requests_served, w.expected_requests());
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.device_errors, 0);
    // 2 round trips per iteration × 8 bytes each.
    assert_eq!(stats.bytes_moved, u64::from(w.clients) * w.iters * 16);
    // OPEN reads 8 blocks per file, each WRITE touches exactly one
    // block, CLOSE flushes once.
    assert_eq!(
        stats.device.completed,
        u64::from(w.clients) * (8 + w.iters + 1)
    );
}

/// Satellite: the paper's Figure 2 claim, asserted over the device
/// completion path. Consuming virtio completions through `TypedPort`
/// instead of the untyped package may not move one simulated cycle.
#[test]
fn typed_completion_path_is_cycle_identical_to_untyped() {
    let mut w = FilingWorkload::small(4, 3);
    w.typed_completion = false;
    let (untyped_now, untyped_chk, untyped_stats) = run_det(&w);
    w.typed_completion = true;
    let (typed_now, typed_chk, typed_stats) = run_det(&w);
    assert_eq!(
        untyped_now, typed_now,
        "typed ports are zero-overhead (Figure 2)"
    );
    assert_eq!(untyped_chk, typed_chk);
    assert_eq!(untyped_stats, typed_stats);
}

/// The descriptor ring is cycle-neutral: routing submissions through
/// the lock-free ring or the locked backlog gives bit-identical runs.
#[test]
fn device_queue_on_and_off_are_cycle_identical() {
    let mut w = FilingWorkload::small(3, 3);
    w.use_queue = true;
    let (q_now, q_chk, q_stats) = run_det(&w);
    w.use_queue = false;
    let (b_now, b_chk, b_stats) = run_det(&w);
    assert_eq!(q_now, b_now, "ring vs backlog must not move cycles");
    assert_eq!(q_chk, b_chk);
    assert_eq!(q_stats.requests_served, b_stats.requests_served);
    assert_eq!(q_stats.device.completed, b_stats.device.completed);
}

#[test]
fn threaded_run_matches_deterministic_checksums() {
    let mut w = FilingWorkload::small(4, 4);
    w.workers = 2;
    w.shards = 4;
    let (_, det_chk, det_stats) = run_det(&w);

    let (sys, handles) = build_filing_system(&w);
    let (mut back, outcome) = i432_sim::run_threaded_full(sys, u64::MAX, true, true, true);
    assert!(
        outcome.completed,
        "threaded filing run finishes: {outcome:?}"
    );
    let thr_chk = client_checksums(&mut back, &handles);
    assert_eq!(det_chk, thr_chk, "schedule cannot change client answers");
    assert_eq!(det_stats.protocol_errors, 0);
}

/// The whole composition under the collector daemon: round-trip
/// garbage is reclaimed while files (anchored via the server registry)
/// survive, and the answers do not change.
#[test]
fn filing_survives_the_gc_daemon() {
    use imax_gc::Collector;
    use parking_lot::Mutex;
    use std::sync::Arc;

    let w = FilingWorkload::small(3, 6);
    let (_, plain_chk, _) = run_det(&w);

    let (mut sys, handles) = build_filing_system(&w);
    let collector = Arc::new(Mutex::new(Collector::new()));
    imax_gc::install_gc_daemon(&mut sys, Arc::clone(&collector), 8, 200);
    let outcome = sys.run_to_completion(BUDGET);
    assert!(
        matches!(outcome, RunOutcome::Stopped | RunOutcome::Quiescent),
        "filing under GC must complete: {outcome:?}"
    );
    let chk = client_checksums(&mut sys, &handles);
    assert_eq!(chk, plain_chk, "collection must be invisible to clients");
    let stats = collector.lock().stats;
    assert!(
        stats.reclaimed > 0,
        "request objects become garbage and are reclaimed: {stats:?}"
    );
}
