//! The object-filing server.
//!
//! The paper's release-2 sketch (§9): "a filing system that maintains
//! files as objects" — here a package instance in the §6.3 style: the
//! server's state is closed over by a native service body, the service
//! domain's access descriptor *is* the filing system, and any number of
//! worker processes CALL the same domain to drain the shared request
//! port. Files are objects in the strictest sense: each open file is one
//! generic segment (its cache) owned by the swapping storage manager, so
//! cold files are evicted to backing store under memory pressure exactly
//! like any other segment, and the garbage collector sees them through
//! the server's registry object like any other live data.
//!
//! Durability runs through the async virtio-shaped block device
//! ([`imax_io::virtio`]): OPEN reads the file's blocks through the
//! descriptor ring, WRITE writes touched blocks through, CLOSE flushes.
//! Device completions come back on a server-internal completion port —
//! over either the typed or the untyped port package, selectable per
//! instance, because Figure 2's claim (typed ports compile to the
//! untyped code) is asserted over this very path by the crate's tests.
//!
//! Every request a worker accepts is fully served — device queue drained
//! to empty — before its native call returns, so the collector (which
//! scans ports but not device rings) never observes an in-flight
//! descriptor. See DESIGN.md §14.

use crate::protocol::*;
use i432_arch::{AccessDescriptor, ObjectRef, ObjectSpec, PortDiscipline, Rights, SpaceMut};
use i432_gdp::{
    native::NativeReturn,
    port::{self, RecvOutcome, SendOutcome},
    Fault, FaultKind,
};
use i432_sim::System;
use i432_trace::{observe, Hist};
use imax_io::virtio::{
    VirtioBlock, VirtioDevice, VirtioStats, VIRTIO_OP_FLUSH, VIRTIO_OP_READ, VIRTIO_OP_WRITE,
    VIRTIO_S_OK, VREQ_DATA_OFF, VREQ_LBA_OFF, VREQ_LEN_OFF, VREQ_OP_OFF, VREQ_SLOT_REPLY,
    VREQ_STATUS_OFF,
};
use imax_ipc::{create_port, untyped, Port, TypedPort};
use imax_storage::{StorageManager, SwappingManager};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// One consumed device completion: `(lba, status, data)`.
type Completion = (u64, u64, Vec<u8>);

/// Configuration for one filing-service instance.
#[derive(Debug, Clone)]
pub struct FilingConfig {
    /// Maximum file count (also the registry's access-slot count and the
    /// device's capacity in files).
    pub files: u32,
    /// Worker processes draining the shared request port.
    pub workers: u32,
    /// Descriptor-ring depth of the block device.
    pub queue_depth: u32,
    /// Route submissions through the descriptor ring (`false` = the
    /// locked backlog path; cycle-identical by construction).
    pub use_queue: bool,
    /// Consume device completions through `TypedPort` instead of the
    /// untyped package. Figure 2 says this must not change a single
    /// simulated cycle; `tests/filing_e2e.rs` asserts it.
    pub typed_completion: bool,
    /// Memory budget handed to the swapping storage manager (`None` =
    /// unlimited; conform runs use `None` so eviction cannot fail).
    pub memory_budget: Option<u64>,
    /// Total requests the workload will issue; workers self-terminate
    /// once this many have been served.
    pub expected_requests: u64,
}

impl FilingConfig {
    /// A small default: `files` files, two workers, ring on, untyped
    /// completions, unlimited memory.
    pub fn small(files: u32, expected_requests: u64) -> FilingConfig {
        FilingConfig {
            files,
            workers: 2,
            queue_depth: 16,
            use_queue: true,
            typed_completion: false,
            memory_budget: None,
            expected_requests,
        }
    }
}

/// Per-file bookkeeping.
struct FileMeta {
    open: bool,
    cache: ObjectRef,
    cache_ad: AccessDescriptor,
}

/// State behind the server's single lock (native bodies already run as
/// indivisible sections, so this lock is uncontended there; it exists
/// for host-side test access).
struct FilingInner {
    storage: SwappingManager,
    files: BTreeMap<u64, FileMeta>,
}

/// Counter snapshot for benches and conform keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilingStats {
    /// Requests fully served (status written, reply sent).
    pub requests_served: u64,
    /// Bytes moved between request objects and file caches (READ+WRITE).
    pub bytes_moved: u64,
    /// Requests answered with a non-[`FS_OK`] status.
    pub protocol_errors: u64,
    /// Device-level failures (virtio requests the model refused).
    pub device_errors: u64,
    /// Device counters.
    pub device: VirtioStats,
}

/// One filing-service instance. Shared between the worker natives and
/// the host (benches, tests) behind an `Arc`.
pub struct FilingServer {
    request_port: Port,
    completion: Port,
    registry: ObjectRef,
    device: VirtioDevice<VirtioBlock>,
    inner: Mutex<FilingInner>,
    typed_completion: bool,
    max_files: u32,
    requests_served: AtomicU64,
    bytes_moved: AtomicU64,
    protocol_errors: AtomicU64,
}

impl FilingServer {
    /// The shared request port clients send to.
    pub fn request_port(&self) -> Port {
        self.request_port
    }

    /// The server-internal device-completion port.
    pub fn completion_port(&self) -> Port {
        self.completion
    }

    /// The registry object whose slot `f` anchors file `f`'s cache.
    pub fn registry(&self) -> ObjectRef {
        self.registry
    }

    /// Requests fully served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Relaxed)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FilingStats {
        let device = self.device.stats();
        FilingStats {
            requests_served: self.requests_served.load(Relaxed),
            bytes_moved: self.bytes_moved.load(Relaxed),
            protocol_errors: self.protocol_errors.load(Relaxed),
            device_errors: device.failed,
            device,
        }
    }

    /// Swap traffic of the storage manager backing the file caches.
    pub fn swap_stats(&self) -> imax_storage::StorageStats {
        self.inner.lock().storage.stats()
    }

    /// Drains the request port, serving every queued request to
    /// completion. Returns `(served, simulated_cycles)`. This is the
    /// body of the `object_filing.serve` native.
    pub fn service_batch(&self, space: &mut dyn SpaceMut) -> Result<(u64, u64), Fault> {
        let mut served = 0u64;
        let mut cycles = 0u64;
        loop {
            let req = match port::receive(space, None, self.request_port.ad(), false, true)? {
                RecvOutcome::Received(ad) => ad,
                RecvOutcome::WouldBlock => break,
                RecvOutcome::Blocked => unreachable!("non-blocking service receive"),
            };
            cycles += self.handle_request(space, req)?;
            served += 1;
        }
        // The collector-visibility contract: nothing may stay in flight
        // in the device once the indivisible section ends.
        self.device.assert_idle();
        Ok((served, cycles))
    }

    /// Serves one request object and replies to its reply port.
    fn handle_request(
        &self,
        space: &mut dyn SpaceMut,
        req: AccessDescriptor,
    ) -> Result<u64, Fault> {
        // The server is trusted system software: amplify to full rights
        // (the client may have sent a restricted descriptor).
        let req = AccessDescriptor::new(req.obj, Rights::ALL);
        let op = space.read_u64(req, FREQ_OP_OFF).map_err(Fault::from)?;
        let file = space.read_u64(req, FREQ_FILE_OFF).map_err(Fault::from)?;
        let pos = space.read_u64(req, FREQ_POS_OFF).map_err(Fault::from)?;
        let len = space.read_u64(req, FREQ_LEN_OFF).map_err(Fault::from)?;

        let mut cycles = 0u64;
        let (status, count) = match op {
            FOP_OPEN => self.op_open(space, file, &mut cycles)?,
            FOP_READ => self.op_read(space, req, file, pos, len, &mut cycles)?,
            FOP_WRITE => self.op_write(space, req, file, pos, len, &mut cycles)?,
            FOP_CLOSE => self.op_close(space, file, &mut cycles)?,
            _ => (FS_BAD_OP, 0),
        };

        space
            .write_u64(req, FREQ_STATUS_OFF, status)
            .map_err(Fault::from)?;
        space
            .write_u64(req, FREQ_COUNT_OFF, count)
            .map_err(Fault::from)?;
        self.requests_served.fetch_add(1, Relaxed);
        if status != FS_OK {
            self.protocol_errors.fetch_add(1, Relaxed);
        }
        observe(Hist::FilingRequestCycles, cycles);

        let reply = space
            .load_ad_hw(req.obj, FREQ_SLOT_REPLY)
            .map_err(Fault::from)?
            .ok_or_else(|| {
                Fault::with_detail(FaultKind::NullAccess, "filing request without a reply port")
            })?;
        match port::send(space, None, reply, req, 0, false, true)? {
            SendOutcome::Queued | SendOutcome::Delivered => Ok(cycles),
            other => Err(Fault::with_detail(
                FaultKind::QueueOverflow,
                format!("filing reply refused: {other:?}"),
            )),
        }
    }

    fn op_open(
        &self,
        space: &mut dyn SpaceMut,
        file: u64,
        cycles: &mut u64,
    ) -> Result<(u64, u64), Fault> {
        if file >= u64::from(self.max_files) {
            return Ok((FS_BAD_OP, 0));
        }
        let mut inner = self.inner.lock();
        if inner.files.get(&file).is_some_and(|m| m.open) {
            return Ok((FS_BAD_OP, 0));
        }
        // First open: create the cache segment through the storage
        // manager (so it lives under the eviction policy) and anchor it
        // in the registry so the collector keeps it.
        if !inner.files.contains_key(&file) {
            let sro = space.root_sro();
            let cache =
                match inner
                    .storage
                    .create_object(space, sro, ObjectSpec::generic(FILE_BYTES, 0))
                {
                    Ok(r) => r,
                    Err(_) => return Ok((FS_IO, 0)),
                };
            let cache_ad = space.mint(cache, Rights::ALL);
            space
                .store_ad_hw(self.registry, file as u32, Some(cache_ad))
                .map_err(Fault::from)?;
            inner.files.insert(
                file,
                FileMeta {
                    open: false,
                    cache,
                    cache_ad,
                },
            );
        }
        let (cache, cache_ad) = {
            let m = inner.files.get(&file).expect("just inserted");
            (m.cache, m.cache_ad)
        };
        if inner.storage.swap_in(space, cache).is_err() {
            return Ok((FS_IO, 0));
        }
        // Read the file's blocks back through the device: the device is
        // the durability story, the cache only a resident copy.
        let base = file * FILE_BLOCKS;
        let ops: Vec<(u64, u64, Option<Vec<u8>>)> = (0..FILE_BLOCKS)
            .map(|b| (VIRTIO_OP_READ, base + b, None))
            .collect();
        let (dc, results) = self.device_batch(space, &ops)?;
        *cycles += dc;
        for (lba, status, data) in results {
            if status != VIRTIO_S_OK {
                return Ok((FS_IO, 0));
            }
            let off = ((lba - base) as u32) * FILE_BLOCK_SIZE;
            space
                .write_data(cache_ad, off, &data)
                .map_err(Fault::from)?;
        }
        inner.files.get_mut(&file).expect("present").open = true;
        *cycles += FS_COST_OPEN + inner.storage.drain_cycles();
        Ok((FS_OK, 0))
    }

    fn op_read(
        &self,
        space: &mut dyn SpaceMut,
        req: AccessDescriptor,
        file: u64,
        pos: u64,
        len: u64,
        cycles: &mut u64,
    ) -> Result<(u64, u64), Fault> {
        if len > u64::from(FREQ_DATA_MAX) || pos.saturating_add(len) > u64::from(FILE_BYTES) {
            return Ok((FS_BOUNDS, 0));
        }
        let mut inner = self.inner.lock();
        let Some((cache, cache_ad)) = inner
            .files
            .get(&file)
            .filter(|m| m.open)
            .map(|m| (m.cache, m.cache_ad))
        else {
            return Ok((FS_NOT_OPEN, 0));
        };
        if inner.storage.swap_in(space, cache).is_err() {
            return Ok((FS_IO, 0));
        }
        let mut buf = vec![0u8; len as usize];
        space
            .read_data(cache_ad, pos as u32, &mut buf)
            .map_err(Fault::from)?;
        space
            .write_data(req, FREQ_DATA_OFF, &buf)
            .map_err(Fault::from)?;
        self.bytes_moved.fetch_add(len, Relaxed);
        *cycles += FS_COST_READ + FS_COST_BYTE * len + inner.storage.drain_cycles();
        Ok((FS_OK, len))
    }

    fn op_write(
        &self,
        space: &mut dyn SpaceMut,
        req: AccessDescriptor,
        file: u64,
        pos: u64,
        len: u64,
        cycles: &mut u64,
    ) -> Result<(u64, u64), Fault> {
        if len == 0
            || len > u64::from(FREQ_DATA_MAX)
            || pos.saturating_add(len) > u64::from(FILE_BYTES)
        {
            return Ok((FS_BOUNDS, 0));
        }
        let mut inner = self.inner.lock();
        let Some((cache, cache_ad)) = inner
            .files
            .get(&file)
            .filter(|m| m.open)
            .map(|m| (m.cache, m.cache_ad))
        else {
            return Ok((FS_NOT_OPEN, 0));
        };
        if inner.storage.swap_in(space, cache).is_err() {
            return Ok((FS_IO, 0));
        }
        let mut buf = vec![0u8; len as usize];
        space
            .read_data(req, FREQ_DATA_OFF, &mut buf)
            .map_err(Fault::from)?;
        space
            .write_data(cache_ad, pos as u32, &buf)
            .map_err(Fault::from)?;
        // Write-through: every touched block goes back to the device in
        // the same indivisible section.
        let bs = u64::from(FILE_BLOCK_SIZE);
        let base = file * FILE_BLOCKS;
        let (b0, b1) = (pos / bs, (pos + len - 1) / bs);
        let mut ops = Vec::new();
        for b in b0..=b1 {
            let mut blk = vec![0u8; FILE_BLOCK_SIZE as usize];
            space
                .read_data(cache_ad, (b * bs) as u32, &mut blk)
                .map_err(Fault::from)?;
            ops.push((VIRTIO_OP_WRITE, base + b, Some(blk)));
        }
        let (dc, results) = self.device_batch(space, &ops)?;
        *cycles += dc;
        if results.iter().any(|(_, status, _)| *status != VIRTIO_S_OK) {
            return Ok((FS_IO, 0));
        }
        self.bytes_moved.fetch_add(len, Relaxed);
        *cycles += FS_COST_WRITE + FS_COST_BYTE * len + inner.storage.drain_cycles();
        Ok((FS_OK, len))
    }

    fn op_close(
        &self,
        space: &mut dyn SpaceMut,
        file: u64,
        cycles: &mut u64,
    ) -> Result<(u64, u64), Fault> {
        let mut inner = self.inner.lock();
        let Some(cache) = inner.files.get(&file).filter(|m| m.open).map(|m| m.cache) else {
            return Ok((FS_NOT_OPEN, 0));
        };
        let (dc, results) = self.device_batch(space, &[(VIRTIO_OP_FLUSH, 0, None)])?;
        *cycles += dc;
        if results.iter().any(|(_, status, _)| *status != VIRTIO_S_OK) {
            return Ok((FS_IO, 0));
        }
        // Closed caches are cold: hand the segment back to the swapper.
        // An already-absent segment reports NotEligible, which is fine.
        let _ = inner.storage.swap_out(space, cache);
        inner.files.get_mut(&file).expect("present").open = false;
        *cycles += FS_COST_CLOSE + inner.storage.drain_cycles();
        Ok((FS_OK, 0))
    }

    /// Submits a batch of device requests, services the device, and
    /// consumes every completion from the internal completion port —
    /// through the typed or untyped package per configuration. Returns
    /// `(device_cycles, [(lba, status, data)])`.
    fn device_batch(
        &self,
        space: &mut dyn SpaceMut,
        ops: &[(u64, u64, Option<Vec<u8>>)],
    ) -> Result<(u64, Vec<Completion>), Fault> {
        let sro = space.root_sro();
        for (op, lba, data) in ops {
            let obj = space
                .create_object(sro, ObjectSpec::generic(VREQ_DATA_OFF + FILE_BLOCK_SIZE, 2))
                .map_err(Fault::from)?;
            let ad = space.mint(obj, Rights::ALL);
            space.write_u64(ad, VREQ_OP_OFF, *op).map_err(Fault::from)?;
            space
                .write_u64(ad, VREQ_LBA_OFF, *lba)
                .map_err(Fault::from)?;
            space
                .write_u64(ad, VREQ_LEN_OFF, u64::from(FILE_BLOCK_SIZE))
                .map_err(Fault::from)?;
            if let Some(data) = data {
                space
                    .write_data(ad, VREQ_DATA_OFF, data)
                    .map_err(Fault::from)?;
            }
            space
                .store_ad_hw(obj, VREQ_SLOT_REPLY, Some(self.completion.ad()))
                .map_err(Fault::from)?;
            self.device.submit(ad);
        }
        let (_done, cycles) = self.device.service(space)?;
        let mut results = Vec::with_capacity(ops.len());
        for _ in 0..ops.len() {
            // Figure 2's claim, load-bearing: both arms compile to the
            // identical untyped receive, so flipping `typed_completion`
            // cannot move a single simulated cycle.
            let got = if self.typed_completion {
                TypedPort::<u64>::from_port(self.completion).receive_ad(space)?
            } else {
                untyped::receive(space, self.completion)?
            };
            let comp = got.ok_or_else(|| {
                Fault::with_detail(FaultKind::NullAccess, "device completion missing")
            })?;
            let comp = AccessDescriptor::new(comp.obj, Rights::ALL);
            let lba = space.read_u64(comp, VREQ_LBA_OFF).map_err(Fault::from)?;
            let status = space.read_u64(comp, VREQ_STATUS_OFF).map_err(Fault::from)?;
            let mut data = vec![0u8; FILE_BLOCK_SIZE as usize];
            space
                .read_data(comp, VREQ_DATA_OFF, &mut data)
                .map_err(Fault::from)?;
            results.push((lba, status, data));
            // Descriptor objects are server-internal scratch; reclaim
            // them eagerly rather than leaving them to the collector.
            space.destroy_object(comp.obj).map_err(Fault::from)?;
        }
        Ok((cycles, results))
    }
}

/// Installs a filing-service instance: creates its ports, registry,
/// device and storage manager, registers the `object_filing.serve`
/// native, and spawns `cfg.workers` self-terminating worker processes.
///
/// Returns the server handle and the worker processes.
pub fn install_filing_service(
    sys: &mut System,
    cfg: &FilingConfig,
) -> (Arc<FilingServer>, Vec<ObjectRef>) {
    let root = sys.space.root_sro();
    let request_port = create_port(
        &mut sys.space,
        root,
        (cfg.files * 2).max(8),
        PortDiscipline::Fifo,
    )
    .expect("filing request port");
    sys.anchor(request_port.ad());
    let completion = create_port(
        &mut sys.space,
        root,
        (FILE_BLOCKS as u32) * 2 + 4,
        PortDiscipline::Fifo,
    )
    .expect("filing completion port");
    sys.anchor(completion.ad());
    let registry = sys
        .space
        .create_object(root, ObjectSpec::generic(0, cfg.files))
        .expect("filing registry");
    let registry_ad = sys.space.mint(registry, Rights::ALL);
    sys.anchor(registry_ad);

    let storage = match cfg.memory_budget {
        Some(bytes) => SwappingManager::with_memory_budget(bytes),
        None => SwappingManager::new(),
    };
    let blocks = cfg.files as usize * FILE_BLOCKS as usize;
    let device = VirtioDevice::new(
        VirtioBlock::new("filing0", blocks, FILE_BLOCK_SIZE as usize),
        cfg.queue_depth,
        cfg.use_queue,
    );

    let server = Arc::new(FilingServer {
        request_port,
        completion,
        registry,
        device,
        inner: Mutex::new(FilingInner {
            storage,
            files: BTreeMap::new(),
        }),
        typed_completion: cfg.typed_completion,
        max_files: cfg.files,
        requests_served: AtomicU64::new(0),
        bytes_moved: AtomicU64::new(0),
        protocol_errors: AtomicU64::new(0),
    });

    // The service body: drain the request port, charge the simulated
    // cost, report whether the workload is finished so the worker loop
    // can halt.
    let expected = cfg.expected_requests;
    let service = {
        let server = Arc::clone(&server);
        move |cx: &mut i432_gdp::NativeCtx<'_>| {
            let (_served, cycles) = server.service_batch(cx.space)?;
            cx.charge(cycles.max(FS_COST_IDLE));
            let done = server.requests_served() >= expected;
            Ok(NativeReturn::value(u64::from(done)))
        }
    };
    let nid = sys.natives.register("object_filing.serve", service);
    let filing_domain = sys.install_domain(
        "object_filing",
        vec![i432_arch::Subprogram {
            name: "serve".into(),
            body: i432_arch::CodeBody::Native(nid),
            ctx_data_len: 16,
            ctx_access_len: 8,
        }],
        0,
    );

    // The worker loop: CALL serve until it reports done, then halt.
    use i432_gdp::isa::DataRef;
    let mut p = i432_gdp::ProgramBuilder::new();
    let top = p.new_label();
    p.bind(top);
    p.call(
        i432_arch::sysobj::CTX_SLOT_ARG as u16,
        0,
        None,
        None,
        Some(0),
    );
    p.jump_if_zero(DataRef::Local(0), top);
    p.halt();
    let worker_sub = sys.subprogram("filing_worker_loop", p.finish(), 32, 8);
    let worker_domain = sys.install_domain("filing_worker", vec![worker_sub], 0);

    let workers = (0..cfg.workers)
        .map(|_| sys.spawn(worker_domain, 0, Some(filing_domain)))
        .collect();
    (server, workers)
}
