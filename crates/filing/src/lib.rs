//! # imax-filing — the object-filing system
//!
//! Paper §9 names "a filing system that maintains files as objects" as
//! release-2 iMAX; this crate builds it from the parts the rest of the
//! workspace already provides, composing four subsystems end to end:
//!
//! * **IPC** — clients talk to the server over ports: requests go to
//!   one shared FIFO request port, replies come back on per-client
//!   reply ports, and the server's own device completions arrive on an
//!   internal port served through either the typed or the untyped
//!   package (Figure 2's zero-overhead claim is asserted over exactly
//!   this path).
//! * **Storage** — each file *is* an object: one generic segment owned
//!   by the swapping storage manager, evictable to backing store when
//!   closed or under memory pressure.
//! * **I/O** — durability runs through the async virtio-shaped block
//!   device of [`imax_io::virtio`]: OPEN reads blocks through the
//!   descriptor ring, WRITE writes through, CLOSE flushes.
//! * **GC** — every client round trip retires one request object into
//!   garbage; file caches stay live only through the server's registry
//!   object. The workload runs under the collector daemon unchanged.
//!
//! [`harness`] builds the whole arrangement as one [`i432_sim::System`]
//! that runs identically on the deterministic and threaded runners —
//! the conform `filing` workload and the `c13_filing` bench both drive
//! it through that front door.

#![warn(missing_docs)]

pub mod client;
pub mod harness;
pub mod protocol;
pub mod server;

pub use client::{expected_checksum, filing_client_program, requests_per_client};
pub use harness::{build_filing_system, client_checksums, FilingHandles, FilingWorkload};
pub use server::{install_filing_service, FilingConfig, FilingServer, FilingStats};
