//! Builds a complete filing workload: one server instance, N worker
//! processes, M client processes, each client driving its own file.
//!
//! The same construction serves the crate's tests, the conform
//! differential workload and the `c13_filing` bench: build a [`System`],
//! run it on either runner, then read the per-client checksums back.

use crate::client::{
    expected_checksum, filing_client_program, requests_per_client, PARAM_ACCESS_LEN,
    PARAM_DATA_LEN, PARAM_FILE_OFF, PARAM_SEED_OFF, PARAM_SLOT_OUT, PARAM_SLOT_REPLY,
    PARAM_SLOT_REQ,
};
use crate::server::{install_filing_service, FilingConfig, FilingServer};
use i432_arch::{AccessDescriptor, ObjectRef, ObjectSpec, PortDiscipline, Rights};
use i432_sim::{System, SystemConfig};
use imax_ipc::create_port;
use std::sync::Arc;

/// Parameters of one filing workload.
#[derive(Debug, Clone)]
pub struct FilingWorkload {
    /// Concurrent clients (each owns one file, so also the file count).
    pub clients: u32,
    /// WRITE/READ round trips per client (≥ 1).
    pub iters: u64,
    /// Worker processes draining the shared request port.
    pub workers: u32,
    /// Space shards.
    pub shards: u32,
    /// Device descriptor-ring depth.
    pub queue_depth: u32,
    /// Route device submissions through the descriptor ring.
    pub use_queue: bool,
    /// Consume device completions through the typed port package.
    pub typed_completion: bool,
    /// Swapping-manager budget (`None` = unlimited).
    pub memory_budget: Option<u64>,
    /// Scrambles file assignment and payloads.
    pub seed: u64,
}

impl FilingWorkload {
    /// A small smoke-sized workload.
    pub fn small(clients: u32, iters: u64) -> FilingWorkload {
        FilingWorkload {
            clients,
            iters,
            workers: 2,
            shards: 1,
            queue_depth: 16,
            use_queue: true,
            typed_completion: false,
            memory_budget: None,
            seed: 1,
        }
    }

    /// Total requests the workload issues.
    pub fn expected_requests(&self) -> u64 {
        u64::from(self.clients) * requests_per_client(self.iters)
    }
}

/// Handles back into a built workload.
pub struct FilingHandles {
    /// The server instance.
    pub server: Arc<FilingServer>,
    /// Per-client out-objects (slot 0 holds the published checksum).
    pub outs: Vec<AccessDescriptor>,
    /// Per-client file ids (parallel to `outs`).
    pub files: Vec<u64>,
    /// Client processes.
    pub clients: Vec<ObjectRef>,
    /// Worker processes.
    pub workers: Vec<ObjectRef>,
}

impl FilingHandles {
    /// The checksum each client should publish if every request
    /// succeeds.
    pub fn expected_checksums(&self, seed: u64, iters: u64) -> Vec<u64> {
        self.files
            .iter()
            .map(|&f| expected_checksum(f, seed, iters))
            .collect()
    }
}

/// Reads the published per-client checksums.
pub fn client_checksums(sys: &mut System, handles: &FilingHandles) -> Vec<u64> {
    handles
        .outs
        .iter()
        .map(|&out| sys.space.read_u64(out, 0).expect("out-object readable"))
        .collect()
}

/// Builds the workload: system, server, workers, clients.
pub fn build_filing_system(w: &FilingWorkload) -> (System, FilingHandles) {
    assert!(w.clients >= 1 && w.iters >= 1 && w.workers >= 1);
    let mut cfg = SystemConfig::small()
        .with_processors(w.clients + w.workers)
        .with_shards(w.shards);
    // Scale the space with the shard count, as the other multi-shard
    // workloads do, plus headroom for the per-round-trip garbage.
    cfg.data_bytes *= w.shards * 2;
    cfg.access_slots *= w.shards * 2;
    cfg.table_limit *= w.shards * 2;
    let mut sys = System::new(&cfg);

    let fc = FilingConfig {
        files: w.clients,
        workers: w.workers,
        queue_depth: w.queue_depth,
        use_queue: w.use_queue,
        typed_completion: w.typed_completion,
        memory_budget: w.memory_budget,
        expected_requests: w.expected_requests(),
    };
    let (server, workers) = install_filing_service(&mut sys, &fc);

    let program = filing_client_program(w.iters);
    let sub = sys.subprogram("filing_client", program, 64, 8);
    let dom = sys.install_domain("filing_client", vec![sub], 0);

    let root = sys.space.root_sro();
    let mut outs = Vec::new();
    let mut files = Vec::new();
    let mut clients = Vec::new();
    for c in 0..w.clients {
        // Rotate the file assignment by the seed so different seeds
        // exercise different client/file pairings.
        let file = u64::from((c + (w.seed as u32 % w.clients)) % w.clients);
        let reply =
            create_port(&mut sys.space, root, 4, PortDiscipline::Fifo).expect("client reply port");
        sys.anchor(reply.ad());
        let out = sys
            .space
            .create_object(root, ObjectSpec::generic(16, 0))
            .expect("client out-object");
        let out_ad = sys.space.mint(out, Rights::ALL);
        sys.anchor(out_ad);
        let param = sys
            .space
            .create_object(root, ObjectSpec::generic(PARAM_DATA_LEN, PARAM_ACCESS_LEN))
            .expect("client param object");
        let param_ad = sys.space.mint(param, Rights::ALL);
        sys.anchor(param_ad);
        sys.space
            .write_u64(param_ad, PARAM_FILE_OFF, file)
            .expect("param file");
        sys.space
            .write_u64(param_ad, PARAM_SEED_OFF, w.seed)
            .expect("param seed");
        sys.space
            .store_ad_hw(param, PARAM_SLOT_REQ, Some(server.request_port().ad()))
            .expect("param req port");
        sys.space
            .store_ad_hw(param, PARAM_SLOT_REPLY, Some(reply.ad()))
            .expect("param reply port");
        sys.space
            .store_ad_hw(param, PARAM_SLOT_OUT, Some(out_ad))
            .expect("param out");
        clients.push(sys.spawn(dom, 0, Some(param_ad)));
        outs.push(out_ad);
        files.push(file);
    }

    (
        sys,
        FilingHandles {
            server,
            outs,
            files,
            clients,
            workers,
        },
    )
}
