//! The filing client: an interpreted GDP program.
//!
//! Each client owns one file and drives the full protocol over it —
//! OPEN, then `iters` WRITE/READ round trips at a rolling position,
//! then CLOSE — folding every reply (status, count, first data word)
//! into a running checksum that it publishes to its out-object before
//! halting. The checksum is schedule-independent: the client blocks on
//! its private reply port after every request, so no interleaving of
//! workers or other clients can change what it observes. That is what
//! lets the conform harness compare the deterministic and threaded
//! runners bit-for-bit over the out-objects.
//!
//! [`expected_checksum`] is the host-side reference model: the same
//! fold over the statuses, counts and payloads the protocol guarantees.

use crate::protocol::*;
use i432_arch::sysobj::{CTX_SLOT_ARG, CTX_SLOT_SRO};
use i432_gdp::isa::{AluOp, DataDst, DataRef, Instruction};
use i432_gdp::ProgramBuilder;

/// Param-object layout (built by the harness, passed as the spawn arg):
/// data `[0]` = file id, `[8]` = payload seed; access slot 0 = request
/// port, 1 = private reply port, 2 = out-object.
pub const PARAM_FILE_OFF: u32 = 0;
/// Offset of the payload seed in the param object.
pub const PARAM_SEED_OFF: u32 = 8;
/// Param access slot of the shared request port.
pub const PARAM_SLOT_REQ: u32 = 0;
/// Param access slot of the client's private reply port.
pub const PARAM_SLOT_REPLY: u32 = 1;
/// Param access slot of the client's out-object.
pub const PARAM_SLOT_OUT: u32 = 2;

/// Data-part bytes of a param object.
pub const PARAM_DATA_LEN: u32 = 16;
/// Access-part slots of a param object.
pub const PARAM_ACCESS_LEN: u32 = 3;

/// Context AD slots the client program uses.
const SLOT_REQ_PORT: u16 = 4;
const SLOT_REPLY_PORT: u16 = 5;
const SLOT_OUT: u16 = 6;
const SLOT_REQ: u16 = 7;

/// Local byte offsets.
const L_I: u32 = 0;
const L_CHK: u32 = 8;
const L_POS: u32 = 16;
const L_PAY: u32 = 24;
const L_TMP: u32 = 32;
const L_COND: u32 = 40;

/// Multipliers for the per-iteration payload (golden-ratio mixing, the
/// usual splitmix-style constants).
const PAY_FILE_MUL: u64 = 0x9E37_79B9_7F4A_7C15;
const PAY_ITER_MUL: u64 = 0x2545_F491_4F6C_DD1D;

/// Number of requests one client issues: OPEN + iters×(WRITE, READ) +
/// CLOSE.
pub fn requests_per_client(iters: u64) -> u64 {
    2 + 2 * iters
}

/// Builds the client program. All clients share one program; per-client
/// identity (file id, payload seed) comes from the param object.
pub fn filing_client_program(iters: u64) -> Vec<Instruction> {
    assert!(iters >= 1, "the WRITE/READ loop is do-while shaped");
    let mut p = ProgramBuilder::new();

    // A fresh request object in SLOT_REQ, with op/file filled in and the
    // reply port in its slot 0. The previous request (received back as
    // the reply) is overwritten — each round trip leaves one garbage
    // segment for the collector.
    let fresh_req = |p: &mut ProgramBuilder, op: u64| {
        p.create_object(
            CTX_SLOT_SRO as u16,
            DataRef::Imm(u64::from(FREQ_OBJ_DATA_LEN)),
            DataRef::Imm(u64::from(FREQ_OBJ_ACCESS_LEN)),
            SLOT_REQ,
        );
        p.mov(DataRef::Imm(op), DataDst::Field(SLOT_REQ, FREQ_OP_OFF));
        p.mov(
            DataRef::Field(CTX_SLOT_ARG as u16, PARAM_FILE_OFF),
            DataDst::Field(SLOT_REQ, FREQ_FILE_OFF),
        );
        p.store_ad(
            SLOT_REPLY_PORT,
            SLOT_REQ,
            DataRef::Imm(u64::from(FREQ_SLOT_REPLY)),
        );
    };
    // chk = chk * 31 ^ src.
    let fold = |p: &mut ProgramBuilder, src: DataRef| {
        p.alu(
            AluOp::Mul,
            DataRef::Local(L_CHK),
            DataRef::Imm(31),
            DataDst::Local(L_CHK),
        );
        p.alu(
            AluOp::Xor,
            DataRef::Local(L_CHK),
            src,
            DataDst::Local(L_CHK),
        );
    };
    let roundtrip = |p: &mut ProgramBuilder| {
        p.send(SLOT_REQ_PORT, SLOT_REQ);
        p.receive(SLOT_REPLY_PORT, SLOT_REQ);
    };

    p.load_ad(
        CTX_SLOT_ARG as u16,
        DataRef::Imm(u64::from(PARAM_SLOT_REQ)),
        SLOT_REQ_PORT,
    );
    p.load_ad(
        CTX_SLOT_ARG as u16,
        DataRef::Imm(u64::from(PARAM_SLOT_REPLY)),
        SLOT_REPLY_PORT,
    );
    p.load_ad(
        CTX_SLOT_ARG as u16,
        DataRef::Imm(u64::from(PARAM_SLOT_OUT)),
        SLOT_OUT,
    );
    p.mov(DataRef::Imm(0), DataDst::Local(L_I));
    p.mov(DataRef::Imm(0), DataDst::Local(L_CHK));

    // OPEN.
    fresh_req(&mut p, FOP_OPEN);
    roundtrip(&mut p);
    fold(&mut p, DataRef::Field(SLOT_REQ, FREQ_STATUS_OFF));

    let top = p.new_label();
    p.bind(top);

    // pos = (i & 7) * 8 — a rolling window inside the file.
    p.alu(
        AluOp::And,
        DataRef::Local(L_I),
        DataRef::Imm(7),
        DataDst::Local(L_POS),
    );
    p.alu(
        AluOp::Mul,
        DataRef::Local(L_POS),
        DataRef::Imm(8),
        DataDst::Local(L_POS),
    );
    // payload = (file + 1)*PAY_FILE_MUL ^ i*PAY_ITER_MUL ^ seed.
    p.alu(
        AluOp::Add,
        DataRef::Field(CTX_SLOT_ARG as u16, PARAM_FILE_OFF),
        DataRef::Imm(1),
        DataDst::Local(L_PAY),
    );
    p.alu(
        AluOp::Mul,
        DataRef::Local(L_PAY),
        DataRef::Imm(PAY_FILE_MUL),
        DataDst::Local(L_PAY),
    );
    p.alu(
        AluOp::Mul,
        DataRef::Local(L_I),
        DataRef::Imm(PAY_ITER_MUL),
        DataDst::Local(L_TMP),
    );
    p.alu(
        AluOp::Xor,
        DataRef::Local(L_PAY),
        DataRef::Local(L_TMP),
        DataDst::Local(L_PAY),
    );
    p.alu(
        AluOp::Xor,
        DataRef::Local(L_PAY),
        DataRef::Field(CTX_SLOT_ARG as u16, PARAM_SEED_OFF),
        DataDst::Local(L_PAY),
    );

    // WRITE 8 bytes of payload at pos.
    fresh_req(&mut p, FOP_WRITE);
    p.mov(
        DataRef::Local(L_POS),
        DataDst::Field(SLOT_REQ, FREQ_POS_OFF),
    );
    p.mov(DataRef::Imm(8), DataDst::Field(SLOT_REQ, FREQ_LEN_OFF));
    p.mov(
        DataRef::Local(L_PAY),
        DataDst::Field(SLOT_REQ, FREQ_DATA_OFF),
    );
    roundtrip(&mut p);
    fold(&mut p, DataRef::Field(SLOT_REQ, FREQ_STATUS_OFF));
    fold(&mut p, DataRef::Field(SLOT_REQ, FREQ_COUNT_OFF));

    // READ it back and fold the data word — this is the end-to-end
    // check that the write went through cache and device correctly.
    fresh_req(&mut p, FOP_READ);
    p.mov(
        DataRef::Local(L_POS),
        DataDst::Field(SLOT_REQ, FREQ_POS_OFF),
    );
    p.mov(DataRef::Imm(8), DataDst::Field(SLOT_REQ, FREQ_LEN_OFF));
    roundtrip(&mut p);
    fold(&mut p, DataRef::Field(SLOT_REQ, FREQ_STATUS_OFF));
    fold(&mut p, DataRef::Field(SLOT_REQ, FREQ_COUNT_OFF));
    fold(&mut p, DataRef::Field(SLOT_REQ, FREQ_DATA_OFF));

    p.alu(
        AluOp::Add,
        DataRef::Local(L_I),
        DataRef::Imm(1),
        DataDst::Local(L_I),
    );
    p.alu(
        AluOp::Lt,
        DataRef::Local(L_I),
        DataRef::Imm(iters),
        DataDst::Local(L_COND),
    );
    p.jump_if_nonzero(DataRef::Local(L_COND), top);

    // CLOSE, publish, halt.
    fresh_req(&mut p, FOP_CLOSE);
    roundtrip(&mut p);
    fold(&mut p, DataRef::Field(SLOT_REQ, FREQ_STATUS_OFF));
    p.mov(DataRef::Local(L_CHK), DataDst::Field(SLOT_OUT, 0));
    p.halt();
    p.finish()
}

/// Host-side reference model of one client's checksum: the fold the
/// program performs, assuming every request succeeds.
pub fn expected_checksum(file: u64, seed: u64, iters: u64) -> u64 {
    let fold = |chk: u64, v: u64| chk.wrapping_mul(31) ^ v;
    let mut chk = 0u64;
    chk = fold(chk, FS_OK); // OPEN status
    for i in 0..iters {
        let pay =
            (file.wrapping_add(1)).wrapping_mul(PAY_FILE_MUL) ^ i.wrapping_mul(PAY_ITER_MUL) ^ seed;
        chk = fold(chk, FS_OK); // WRITE status
        chk = fold(chk, 8); // WRITE count
        chk = fold(chk, FS_OK); // READ status
        chk = fold(chk, 8); // READ count
        chk = fold(chk, pay); // READ data
    }
    chk = fold(chk, FS_OK); // CLOSE status
    chk
}
