//! The object-filing wire protocol.
//!
//! A filing request is an ordinary generic object, exactly like an I/O
//! request ([`imax_io::iop`]) or a virtio descriptor payload
//! ([`imax_io::virtio`]): the data part carries the operation and its
//! parameters, access slot 0 carries the reply port. The client keeps a
//! capability for the request object; the server writes status, count
//! and (for READ) data back into the *same* object and sends it to the
//! reply port — the request/reply pair is one object changing hands, so
//! a round trip allocates exactly one segment and that segment becomes
//! garbage the moment the client drops it.

/// Offset of the operation code ([`FOP_OPEN`] …) in a request object.
pub const FREQ_OP_OFF: u32 = 0;
/// Offset of the file id.
pub const FREQ_FILE_OFF: u32 = 8;
/// Offset of the byte position within the file (READ/WRITE).
pub const FREQ_POS_OFF: u32 = 16;
/// Offset of the transfer length in bytes (READ/WRITE).
pub const FREQ_LEN_OFF: u32 = 24;
/// Offset of the completion status ([`FS_OK`] …), written by the server.
pub const FREQ_STATUS_OFF: u32 = 32;
/// Offset of the result count (bytes actually moved), written by the
/// server.
pub const FREQ_COUNT_OFF: u32 = 40;
/// Offset of the transfer data area.
pub const FREQ_DATA_OFF: u32 = 48;
/// Access slot holding the reply port.
pub const FREQ_SLOT_REPLY: u32 = 0;

/// Largest transfer a single request can carry.
pub const FREQ_DATA_MAX: u32 = 64;
/// Data-part bytes of a request object.
pub const FREQ_OBJ_DATA_LEN: u32 = FREQ_DATA_OFF + FREQ_DATA_MAX;
/// Access-part slots of a request object (reply port + one spare).
pub const FREQ_OBJ_ACCESS_LEN: u32 = 2;

/// Open a file, creating it on first open.
pub const FOP_OPEN: u64 = 0;
/// Read `len` bytes at `pos`.
pub const FOP_READ: u64 = 1;
/// Write `len` bytes at `pos` (write-through to the device).
pub const FOP_WRITE: u64 = 2;
/// Flush and close a file (its cache segment becomes swappable).
pub const FOP_CLOSE: u64 = 3;

/// Success.
pub const FS_OK: u64 = 0;
/// READ/WRITE/CLOSE on a file that is not open.
pub const FS_NOT_OPEN: u64 = 1;
/// Unknown operation, bad file id, or OPEN of an already-open file.
pub const FS_BAD_OP: u64 = 2;
/// Device or swap failure.
pub const FS_IO: u64 = 3;
/// Transfer outside the file or larger than [`FREQ_DATA_MAX`].
pub const FS_BOUNDS: u64 = 4;

/// Device block size backing a file (one virtio LBA).
pub const FILE_BLOCK_SIZE: u32 = 64;
/// Blocks per file: file `f` owns LBAs `f*FILE_BLOCKS ..` exclusively.
pub const FILE_BLOCKS: u64 = 8;
/// Bytes per file (also the size of its cache segment).
pub const FILE_BYTES: u32 = FILE_BLOCK_SIZE * FILE_BLOCKS as u32;

/// Simulated cycles charged per OPEN over and above device time.
pub const FS_COST_OPEN: u64 = 800;
/// Simulated cycles charged per READ (plus [`FS_COST_BYTE`] per byte).
pub const FS_COST_READ: u64 = 350;
/// Simulated cycles charged per WRITE (plus device and per-byte cost).
pub const FS_COST_WRITE: u64 = 400;
/// Simulated cycles charged per CLOSE over and above device time.
pub const FS_COST_CLOSE: u64 = 500;
/// Simulated cycles charged per byte moved between request and cache.
pub const FS_COST_BYTE: u64 = 2;
/// Simulated cycles a worker pays for polling an empty request port.
pub const FS_COST_IDLE: u64 = 50;
