//! # imax-gc — the system-wide on-the-fly garbage collector
//!
//! Paper §8.1: "iMAX provides a system-wide parallel garbage collector
//! based upon the algorithm of Dijkstra et al. To support this, the 432
//! hardware implements the gray bit of that algorithm, setting it
//! whenever access descriptors are moved. ... The iMAX garbage collector
//! is implemented as a daemon process that globally scans the system. It
//! requires only minimal synchronization with the rest of the operating
//! system."
//!
//! * The **write barrier** lives in the hardware layer
//!   (`i432_arch::ObjectSpace::store_ad` and the linkage stores): every
//!   access-descriptor move shades its target gray.
//! * [`collector`] — the incremental tricolor mark/sweep state machine.
//!   Mark propagates gray until a whole-table verification scan finds no
//!   gray left (the on-the-fly termination rule); sweep reclaims whites
//!   and whitens blacks for the next cycle.
//! * [`filter`] — destruction filters (paper §8.2): white instances of a
//!   filtered type are not reclaimed but *delivered to their type
//!   manager's port*, so physical resources (the paper's tape-drive
//!   example) are never lost. The paper notes release 1 used this "only
//!   to recover lost process objects" — supported here via
//!   [`collector::GcConfig::process_filter_port`].
//! * [`daemon`] — the collector as a *simulated process*: a loop of CALLs
//!   into a GC service domain, consuming simulated cycles, preemptible
//!   and schedulable like any other process.
//! * [`roots`] — root discovery: processor objects (and the root SRO).
//!   Everything the system must retain hangs off the processors' root
//!   directory; there is deliberately no "table of all objects".
//! * [`gray`] + [`parallel`] — the threaded-runner engine: per-shard
//!   work-stealing gray deques and one marking/sweeping worker per
//!   shard, running concurrently with mutators (the paper's "parallel"
//!   in "system-wide parallel garbage collector"). The serial
//!   [`collector`] remains the deterministic-runner engine, bit-exact.

#![warn(missing_docs)]

pub mod collector;
pub mod daemon;
pub mod filter;
pub mod gray;
pub mod invariant;
pub mod parallel;
pub mod roots;

pub use collector::{Collector, GcConfig, GcPhase, GcStats};
pub use daemon::install_gc_daemon;
pub use filter::drain_filter_port;
pub use gray::GrayDeque;
pub use invariant::{check_tricolor, check_tricolor_shared};
pub use parallel::{run_threaded_parallel_gc, ParGcStats, ParallelGc, GC_TRACE_CPU_BASE};
pub use roots::{find_roots, is_root_entry};
