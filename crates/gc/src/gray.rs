//! Per-shard work-stealing gray queues for the parallel marker.
//!
//! Each marking worker owns one [`GrayDeque`] — a Chase-Lev-style
//! work-stealing deque in safe Rust. The owner pushes and pops at the
//! bottom without contention; idle workers steal from the top with a
//! single CAS. The ring is fixed-capacity: instead of the classic
//! unsafe buffer growth, overflow spills into an owner-side
//! `Mutex<Vec<_>>` that the owner drains when the ring has room (the
//! spill is invisible to thieves, which is sound — see below).
//!
//! **Why imperfect termination is safe here.** A deque item is only
//! ever a *gray* object (it is shaded before it is pushed), and the
//! on-the-fly termination rule (DESIGN.md §6) ends marking only when a
//! full verification scan of the live table finds no gray object. So
//! any item a racy emptiness check misses — in a ring slot, in the
//! spill, or in flight between a steal and its process step — is still
//! gray in the table and is re-discovered by the next verification
//! scan. Work-stealing termination detection therefore only affects
//! *progress* (an extra verification pass), never *soundness*.

use i432_arch::{ObjectIndex, ObjectRef};
use parking_lot::Mutex;
use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};

/// Packs an [`ObjectRef`] into one ring word.
#[inline]
fn pack(r: ObjectRef) -> u64 {
    u64::from(r.index.0) | (u64::from(r.generation) << 32)
}

/// Unpacks a ring word back into an [`ObjectRef`].
#[inline]
fn unpack(v: u64) -> ObjectRef {
    ObjectRef {
        index: ObjectIndex(v as u32),
        generation: (v >> 32) as u32,
    }
}

/// A fixed-capacity Chase-Lev work-stealing deque of gray
/// [`ObjectRef`]s, with an owner-side spill list instead of buffer
/// growth.
///
/// Single-owner protocol: exactly one thread (the shard's marking
/// worker) may call [`push`](GrayDeque::push) and
/// [`pop`](GrayDeque::pop); any thread may call
/// [`steal`](GrayDeque::steal).
pub struct GrayDeque {
    /// Steal side. Monotonically increasing, so the CAS is ABA-free.
    top: AtomicI64,
    /// Owner side.
    bottom: AtomicI64,
    slots: Box<[AtomicU64]>,
    mask: i64,
    /// Owner-side overflow. Thieves never see it; items here are gray
    /// in the table, so the verification scan covers them (module
    /// docs).
    spill: Mutex<Vec<u64>>,
}

impl GrayDeque {
    /// A deque with at least `capacity` ring slots (rounded up to a
    /// power of two, minimum 64).
    pub fn new(capacity: usize) -> GrayDeque {
        let cap = capacity.next_power_of_two().max(64);
        GrayDeque {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap as i64 - 1,
            spill: Mutex::new(Vec::new()),
        }
    }

    /// Owner: pushes a gray object at the bottom. Spills when the ring
    /// is full.
    pub fn push(&self, r: ObjectRef) {
        let v = pack(r);
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t > self.mask {
            // Ring full. A stale (smaller) `t` only makes this check
            // conservative — we spill when we might still have room,
            // never overwrite a slot a thief could be reading.
            self.spill.lock().push(v);
            return;
        }
        self.slots[(b & self.mask) as usize].store(v, Ordering::Relaxed);
        // Publish the slot before the new bottom becomes visible.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner: pops from the bottom (LIFO for locality), falling back to
    /// the spill list when the ring is empty.
    pub fn pop(&self) -> Option<ObjectRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Order the bottom decrement before reading top, against the
        // symmetric fence in `steal`.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Ring empty: restore bottom, try the spill.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return self.pop_spill();
        }
        let v = self.slots[(b & self.mask) as usize].load(Ordering::Relaxed);
        if t == b {
            // Last item: race the thieves for it via top.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if won {
                return Some(unpack(v));
            }
            // A thief took it.
            return self.pop_spill();
        }
        Some(unpack(v))
    }

    fn pop_spill(&self) -> Option<ObjectRef> {
        self.spill.lock().pop().map(unpack)
    }

    /// Thief: steals one item from the top. `None` means the *ring*
    /// looked empty or the race was lost — never a guarantee that no
    /// work remains (the owner's spill is not stealable; the
    /// verification scan covers it).
    pub fn steal(&self) -> Option<ObjectRef> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            let v = self.slots[(t & self.mask) as usize].load(Ordering::Relaxed);
            // The slot value is only trusted if top is still `t` at the
            // CAS: the owner can overwrite slot `t & mask` only after
            // top has advanced past `t` (push refuses to wrap into an
            // unstolen range), and top is monotonic, so success implies
            // the read was of the live item.
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(unpack(v));
            }
            // Lost the race; re-examine.
        }
    }

    /// Whether the ring *and* spill look empty right now (racy; for
    /// termination heuristics and tests only — see module docs).
    pub fn looks_empty(&self) -> bool {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        b <= t && self.spill.lock().is_empty()
    }

    /// Owner: discards all queued work (sweep start — anything still
    /// queued was already blackened or will be re-found next cycle).
    pub fn clear(&self) {
        while self.pop().is_some() {}
    }

    /// Items currently spilled (tests/stats).
    pub fn spilled(&self) -> usize {
        self.spill.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;

    fn obj(i: u32) -> ObjectRef {
        ObjectRef {
            index: ObjectIndex(i),
            generation: i.wrapping_mul(7),
        }
    }

    #[test]
    fn pack_round_trips() {
        for i in [0, 1, 77, u32::MAX] {
            assert_eq!(unpack(pack(obj(i))), obj(i));
        }
    }

    #[test]
    fn lifo_pop_fifo_steal() {
        let d = GrayDeque::new(8);
        for i in 0..4 {
            d.push(obj(i));
        }
        assert_eq!(d.steal(), Some(obj(0)), "thief takes the oldest");
        assert_eq!(d.pop(), Some(obj(3)), "owner takes the newest");
        assert_eq!(d.pop(), Some(obj(2)));
        assert_eq!(d.pop(), Some(obj(1)));
        assert_eq!(d.pop(), None);
        assert!(d.looks_empty());
    }

    #[test]
    fn overflow_spills_and_drains() {
        let d = GrayDeque::new(1); // rounds up to the 64 minimum
        for i in 0..100 {
            d.push(obj(i));
        }
        assert_eq!(d.spilled(), 100 - 64);
        let mut got = HashSet::new();
        while let Some(r) = d.pop() {
            got.insert(r.index.0);
        }
        assert_eq!(got.len(), 100, "no item lost across ring + spill");
        assert!(d.looks_empty());
    }

    /// Satellite: steal-vs-push race. Owner pushes/pops while thieves
    /// hammer steal; every pushed item must be consumed exactly once.
    #[test]
    fn steal_vs_push_race_loses_nothing() {
        const ITEMS: u32 = 20_000;
        const THIEVES: usize = 3;
        let d = GrayDeque::new(256);
        let done = AtomicBool::new(false);
        let stolen: Vec<Mutex<Vec<u32>>> = (0..THIEVES).map(|_| Mutex::new(Vec::new())).collect();
        let mut popped: Vec<u32> = Vec::new();
        std::thread::scope(|s| {
            for out in &stolen {
                s.spawn(|| loop {
                    if let Some(r) = d.steal() {
                        out.lock().push(r.index.0);
                    } else if done.load(Ordering::Acquire) {
                        // One final sweep after the owner finished.
                        while let Some(r) = d.steal() {
                            out.lock().push(r.index.0);
                        }
                        return;
                    } else {
                        std::hint::spin_loop();
                    }
                });
            }
            // Owner: bursts of pushes interleaved with pops.
            let mut i = 0;
            while i < ITEMS {
                for _ in 0..7 {
                    if i < ITEMS {
                        d.push(obj(i));
                        i += 1;
                    }
                }
                for _ in 0..3 {
                    if let Some(r) = d.pop() {
                        popped.push(r.index.0);
                    }
                }
            }
            while let Some(r) = d.pop() {
                popped.push(r.index.0);
            }
            done.store(true, Ordering::Release);
        });
        let mut all: Vec<u32> = popped;
        for out in &stolen {
            all.extend(out.lock().iter().copied());
        }
        assert_eq!(all.len() as u32, ITEMS, "an item was lost or duplicated");
        let uniq: HashSet<u32> = all.iter().copied().collect();
        assert_eq!(uniq.len() as u32, ITEMS, "an item was consumed twice");
    }

    /// Satellite: empty-steal termination detection. Thieves observing
    /// an empty deque + owner done must terminate without spinning
    /// forever, and `looks_empty` must agree once drained.
    #[test]
    fn empty_steal_terminates() {
        let d = GrayDeque::new(64);
        assert_eq!(d.steal(), None);
        assert_eq!(d.pop(), None);
        d.push(obj(1));
        assert!(!d.looks_empty());
        assert_eq!(d.steal(), Some(obj(1)));
        assert!(d.looks_empty());
        assert_eq!(d.steal(), None, "steal after drain must not spin");
    }
}
