//! Destruction filters (paper §8.2).
//!
//! "A general solution would permit a type manager to guarantee that an
//! object is properly disassembled when it becomes garbage. iMAX provides
//! the notion of a destruction filter for exactly this purpose. ... The
//! garbage collector will manufacture an access descriptor for such
//! objects and send them to a port defined by the type manager."

use i432_arch::{AccessDescriptor, ObjectRef, Rights, SpaceMut};
use i432_gdp::{
    port::{self, RecvOutcome, SendOutcome},
    Fault,
};
use imax_typemgr::filter_port_of;

/// The filter port for a user type, if one is bound.
pub fn filter_port_for<S: SpaceMut + ?Sized>(
    space: &mut S,
    tdo: ObjectRef,
) -> Result<Option<AccessDescriptor>, Fault> {
    if space.entry(tdo).is_err() {
        // The type definition itself is garbage; no one is left to
        // finalize instances.
        return Ok(None);
    }
    filter_port_of(space, tdo)
}

/// Manufactures a full-rights access descriptor for the garbage object
/// and sends it to the filter port (carrier send: the collector is
/// trusted microcode-level machinery). Returns `false` when the port
/// could not take the message.
pub fn deliver<S: SpaceMut + ?Sized>(
    space: &mut S,
    port_ad: AccessDescriptor,
    garbage: ObjectRef,
) -> Result<bool, Fault> {
    if space.entry(port_ad.obj).is_err() {
        return Ok(false);
    }
    // "The garbage collector will manufacture an access descriptor":
    // full rights — the type manager gets its representation back.
    let ad = space.mint(garbage, Rights::ALL);
    match port::send(space, None, port_ad, ad, 0, false, true) {
        Ok(SendOutcome::Queued | SendOutcome::Delivered) => Ok(true),
        Ok(SendOutcome::WouldBlock | SendOutcome::Blocked) => Ok(false),
        Err(_) => Ok(false),
    }
}

/// Drains a filter port on behalf of a type manager, returning the
/// recovered objects (host-level convenience used by managers and
/// tests).
pub fn drain_filter_port<S: SpaceMut + ?Sized>(
    space: &mut S,
    port_ad: AccessDescriptor,
) -> Result<Vec<AccessDescriptor>, Fault> {
    let mut out = Vec::new();
    loop {
        match port::receive(space, None, port_ad, false, true)? {
            RecvOutcome::Received(ad) => out.push(ad),
            RecvOutcome::WouldBlock => return Ok(out),
            RecvOutcome::Blocked => unreachable!("non-blocking receive"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use i432_arch::{
        ObjectSpace, ObjectSpec, ObjectType, PortDiscipline, ProcessorState, SysState, SystemType,
    };
    use imax_ipc::create_port;
    use imax_typemgr::{bind_destruction_filter, TypeManager};

    fn space_with_cpu() -> ObjectSpace {
        let mut s = ObjectSpace::new(64 * 1024, 4096, 1024);
        let root = s.root_sro();
        s.create_object(
            root,
            ObjectSpec {
                data_len: 0,
                access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
                otype: ObjectType::System(SystemType::Processor),
                level: None,
                sys: SysState::Processor(ProcessorState::new(0)),
            },
        )
        .unwrap();
        s
    }

    #[test]
    fn garbage_filtered_instance_is_delivered_not_reclaimed() {
        let mut s = space_with_cpu();
        let root = s.root_sro();
        let mgr = TypeManager::new(&mut s, root, "tape_drive").unwrap();
        let fport = create_port(&mut s, root, 8, PortDiscipline::Fifo).unwrap();
        bind_destruction_filter(&mut s, mgr.tdo_ad(), fport.ad()).unwrap();

        // The manager keeps its TDO and port reachable (extra roots model
        // the manager's own domain).
        let mut gc = Collector::new();
        gc.config.extra_roots = vec![mgr.tdo(), fport.object()];

        // A client creates an instance and loses it.
        let _lost = mgr.create_instance(&mut s, root, 32, 0).unwrap();

        gc.collect_full(&mut s).unwrap();
        assert_eq!(gc.stats.finalized, 1);
        let recovered = drain_filter_port(&mut s, fport.ad()).unwrap();
        assert_eq!(recovered.len(), 1, "the lost drive came back");
        // The manager has full access to the recovered representation.
        assert!(s.write_u64(recovered[0], 0, 1).is_ok());
    }

    #[test]
    fn dropped_after_recovery_is_reclaimed_without_renotification() {
        let mut s = space_with_cpu();
        let root = s.root_sro();
        let mgr = TypeManager::new(&mut s, root, "t").unwrap();
        let fport = create_port(&mut s, root, 8, PortDiscipline::Fifo).unwrap();
        bind_destruction_filter(&mut s, mgr.tdo_ad(), fport.ad()).unwrap();
        let mut gc = Collector::new();
        gc.config.extra_roots = vec![mgr.tdo(), fport.object()];

        let lost = mgr.create_instance(&mut s, root, 8, 0).unwrap();
        gc.collect_full(&mut s).unwrap();
        assert_eq!(gc.stats.finalized, 1);
        // The manager drains the port and decides the object really is
        // done for: it just drops it.
        let recovered = drain_filter_port(&mut s, fport.ad()).unwrap();
        assert_eq!(recovered.len(), 1);
        // Delivery itself shaded the object gray (every AD move runs the
        // barrier), so one cycle whitens it and the next reclaims it.
        gc.collect_full(&mut s).unwrap();
        gc.collect_full(&mut s).unwrap();
        assert!(s.table.get(lost.obj).is_err(), "reclaimed after recovery");
        assert_eq!(gc.stats.finalized, 1, "no second notification");
    }

    #[test]
    fn unfiltered_types_reclaim_directly() {
        let mut s = space_with_cpu();
        let root = s.root_sro();
        let mgr = TypeManager::new(&mut s, root, "plain").unwrap();
        let mut gc = Collector::new();
        gc.config.extra_roots = vec![mgr.tdo()];
        let lost = mgr.create_instance(&mut s, root, 8, 0).unwrap();
        gc.collect_full(&mut s).unwrap();
        assert!(s.table.get(lost.obj).is_err());
        assert_eq!(gc.stats.finalized, 0);
        assert_eq!(s.tdo(mgr.tdo()).unwrap().instances_reclaimed, 1);
    }

    #[test]
    fn lost_process_recovery() {
        // Paper §9: release 1 uses destruction filters only to recover
        // lost process objects.
        use i432_arch::{Level, ProcessState};
        let mut s = space_with_cpu();
        let root = s.root_sro();
        let fport = create_port(&mut s, root, 8, PortDiscipline::Fifo).unwrap();
        let mut gc = Collector::new();
        gc.config.extra_roots = vec![fport.object()];
        gc.config.process_filter_port = Some(fport.ad());

        // A process object nobody references (its creator lost it).
        let lost = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::PROC_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Process),
                    level: None,
                    sys: SysState::Process(ProcessState::new(Level(0))),
                },
            )
            .unwrap();
        gc.collect_full(&mut s).unwrap();
        assert!(
            s.table.get(lost).is_ok(),
            "process recovered, not reclaimed"
        );
        let recovered = drain_filter_port(&mut s, fport.ad()).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].obj, lost);
    }
}
