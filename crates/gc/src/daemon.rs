//! The collector as a daemon *process*.
//!
//! Paper §8.1: "The iMAX garbage collector is implemented as a daemon
//! process that globally scans the system. It requires only minimal
//! synchronization with the rest of the operating system."
//!
//! The daemon is an ordinary simulated process: an interpreted loop that
//! CALLs the `garbage_collector.step` service (a native body performing a
//! bounded number of collector increments and charging their simulated
//! cost). It is dispatched, time-sliced and preempted like any mutator —
//! the "parallel" in parallel garbage collection — and its only
//! synchronization with the rest of iMAX is the hardware gray bit.
//!
//! The daemon is deliberately kept on the **serial** [`Collector`] even
//! now that [`crate::parallel`] exists: on the deterministic runner the
//! daemon's increments are part of the simulated instruction stream, so
//! every run replays bit-identically (C1/C2 in EXPERIMENTS.md). The
//! parallel per-shard engine rides the *threaded* runner's real host
//! threads instead and is therefore only checked by order-free
//! invariants, never by byte-equal replay.

use crate::collector::Collector;
use i432_arch::{CodeBody, ObjectRef, Subprogram};
use i432_gdp::{native::NativeReturn, process::ProcessSpec, ProgramBuilder};
use i432_sim::System;
use parking_lot::Mutex;
use std::sync::Arc;

/// Installs the GC service domain and spawns the daemon process.
///
/// * `increments_per_call` — collector increments per service CALL
///   (higher = coarser daemon, fewer domain switches).
/// * `priority` — the daemon's dispatching priority (higher value =
///   less urgent than mutators, the usual configuration).
///
/// Returns the daemon process.
pub fn install_gc_daemon(
    sys: &mut System,
    collector: Arc<Mutex<Collector>>,
    increments_per_call: u32,
    priority: u8,
) -> ObjectRef {
    // The native service body: N increments, cost = the collector's own
    // simulated-cycle accounting delta.
    let service = {
        let collector = Arc::clone(&collector);
        move |cx: &mut i432_gdp::NativeCtx<'_>| {
            let mut gc = collector.lock();
            let before = gc.stats.sim_cycles;
            for _ in 0..increments_per_call {
                gc.step(cx.space)?;
            }
            let spent = gc.stats.sim_cycles - before;
            cx.charge(spent.max(10));
            Ok(NativeReturn::void())
        }
    };
    let nid = sys.natives.register("garbage_collector.step", service);
    let gc_domain = sys.install_domain(
        "garbage_collector",
        vec![Subprogram {
            name: "step".into(),
            body: CodeBody::Native(nid),
            ctx_data_len: 16,
            ctx_access_len: 8,
        }],
        0,
    );

    // The daemon body: call step forever.
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.bind(top);
    p.call(i432_arch::sysobj::CTX_SLOT_ARG as u16, 0, None, None, None);
    p.jump(top);
    let daemon_sub = sys.subprogram("gc_daemon_loop", p.finish(), 32, 8);
    let daemon_domain = sys.install_domain("gc_daemon", vec![daemon_sub], 0);

    let dispatch = sys.dispatch_ad();
    let mut spec = ProcessSpec::new(dispatch);
    spec.priority = priority;
    spec.sys_level = 2; // The daemon is system software (paper §7.3).
    spec.timeslice = 20_000;
    // The GC domain AD is passed as the daemon's argument.
    let daemon = sys.spawn_with(daemon_domain, 0, Some(gc_domain), spec);
    sys.mark_service(daemon);
    daemon
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpec, Rights};
    use i432_sim::SystemConfig;

    #[test]
    fn daemon_collects_while_mutators_run() {
        let mut sys = System::new(&SystemConfig::small().with_processors(2));
        let collector = Arc::new(Mutex::new(Collector::new()));
        let _daemon = install_gc_daemon(&mut sys, Arc::clone(&collector), 8, 200);

        // A mutator that makes garbage: allocates objects into a slot,
        // overwriting (dropping) the previous one each iteration.
        use i432_gdp::isa::{AluOp, DataDst, DataRef};
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(40), DataDst::Local(0));
        p.bind(top);
        p.create_object(
            i432_arch::sysobj::CTX_SLOT_SRO as u16,
            DataRef::Imm(32),
            DataRef::Imm(0),
            6,
        );
        p.alu(
            AluOp::Sub,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), top);
        p.halt();
        let sub = sys.subprogram("garbage_maker", p.finish(), 64, 8);
        let dom = sys.install_domain("mutator", vec![sub], 0);
        let mutator = sys.spawn(dom, 0, None);

        // Run long enough for the daemon to complete cycles (the daemon
        // never exits, so the budget bounds the run).
        let outcome = sys.run_until(50_000, |_, _| false);
        assert!(
            !matches!(outcome, i432_sim::RunOutcome::SystemError(_)),
            "{outcome:?}"
        );
        let stats = collector.lock().stats;
        assert!(
            stats.cycles >= 1,
            "daemon completed at least one cycle: {stats:?}"
        );
        assert!(
            stats.reclaimed >= 30,
            "dropped objects were reclaimed: {stats:?}"
        );
        // The mutator itself finished and was untouched mid-flight.
        assert_eq!(
            sys.status_of(mutator),
            Some(i432_arch::ProcessStatus::Terminated)
        );
        // Live system structures survived: spot-check the dispatch port.
        assert!(sys.space.entry(sys.dispatch_port()).is_ok());
        let _ = sys
            .space
            .create_object(sys.space.root_sro(), ObjectSpec::generic(8, 0))
            .unwrap();
        let _ = Rights::NONE;
    }
}
