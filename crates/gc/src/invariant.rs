//! Tricolor / gray-bit invariant checking.
//!
//! The soundness of on-the-fly collection (paper §8.1) rests on one
//! property the hardware write barrier must maintain at every point of
//! the mark phase: **no black object holds an access descriptor for a
//! white object**. Every AD move shades its target gray, so a scanned
//! (black) container can never come to hide a reference the collector
//! will not visit. This module makes the property checkable so the
//! conformance harness can assert it between arbitrary mutator and
//! collector increments.

use i432_arch::{Color, ObjectRef, SpaceMut};

/// Scans the whole table for black→white edges. Returns one description
/// per violation; an empty vector means the tricolor invariant holds.
///
/// Call this only while a mark phase is in progress — during sweep a
/// black object may legitimately precede the whitening cursor while its
/// (already whitened) target trails it.
pub fn check_tricolor<S: SpaceMut + ?Sized>(space: &mut S) -> Vec<String> {
    let mut black = Vec::new();
    space.for_each_live(&mut |i, e| {
        if e.desc.color == Color::Black {
            black.push(ObjectRef {
                index: i,
                generation: e.generation,
            });
        }
    });
    let mut violations = Vec::new();
    for r in black {
        let Ok(ads) = space.scan_access_part(r) else {
            continue;
        };
        for ad in ads {
            if space.entry(ad.obj).is_ok() && space.color_of(ad.obj) == Ok(Color::White) {
                violations.push(format!(
                    "black object #{} holds an AD for white object #{} — \
                     the gray-bit barrier was bypassed",
                    r.index.0, ad.obj.index.0
                ));
            }
        }
    }
    violations
}

/// [`check_tricolor`] against a lock-striped [`i432_arch::SharedSpace`]:
/// takes the all-shard atomic section so the scan sees a consistent
/// snapshot even while mutators and collector workers run, then checks
/// black→white edges across *all* shards (a black object in shard `j`
/// may hold the only AD for a white object in shard `k`, so per-shard
/// scans alone cannot see the violation).
pub fn check_tricolor_shared(shared: &i432_arch::SharedSpace) -> Vec<String> {
    use i432_arch::SpaceAccessExt;
    shared.agent().atomically(|sm| check_tricolor(sm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collector, GcPhase};
    use i432_arch::{
        sysobj::{CPU_ACCESS_SLOTS, CPU_SLOT_ROOT},
        ObjectSpace, ObjectSpec, ObjectType, ProcessorState, Rights, SysState, SystemType,
    };

    fn space_with_anchor() -> (ObjectSpace, ObjectRef) {
        let mut s = ObjectSpace::new(64 * 1024, 4096, 1024);
        let root = s.root_sro();
        let cpu = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: CPU_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Processor),
                    level: None,
                    sys: SysState::Processor(ProcessorState::new(0)),
                },
            )
            .unwrap();
        let anchor = s.create_object(root, ObjectSpec::generic(8, 4)).unwrap();
        let anchor_ad = s.mint(anchor, Rights::READ | Rights::WRITE);
        s.store_ad_hw(cpu, CPU_SLOT_ROOT, Some(anchor_ad)).unwrap();
        (s, anchor)
    }

    /// The invariant holds after every single collector increment of a
    /// mark phase, even with mutator stores interleaved between them.
    #[test]
    fn invariant_holds_throughout_mark_with_interleaved_stores() {
        let (mut s, anchor) = space_with_anchor();
        let root = s.root_sro();
        let anchor_ad = s.mint(anchor, Rights::READ | Rights::WRITE);

        // A small reachable graph plus a "hidden" object held only by
        // the mutator (modelling an AD in a context register).
        let a = s.create_object(root, ObjectSpec::generic(0, 2)).unwrap();
        let a_ad = s.mint(a, Rights::READ | Rights::WRITE);
        s.store_ad(anchor_ad, 0, Some(a_ad)).unwrap();
        let hidden = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let hidden_ad = s.mint(hidden, Rights::READ);

        let mut gc = Collector::new();
        gc.start_cycle(&mut s).unwrap();
        let mut stored = false;
        let mut steps = 0;
        while gc.phase() == GcPhase::Mark {
            gc.step(&mut s).unwrap();
            steps += 1;
            // Mid-mark, the mutator stores the hidden AD into the (by
            // now likely black) anchor: the barrier must shade it.
            if steps == 2 {
                s.store_ad(anchor_ad, 1, Some(hidden_ad)).unwrap();
                stored = true;
            }
            let v = check_tricolor(&mut s);
            assert!(v.is_empty(), "after step {steps}: {v:?}");
        }
        assert!(stored, "the interleaved store must land inside mark");
    }

    /// A forged black→white edge (barrier bypass) is detected.
    #[test]
    fn forged_black_to_white_edge_is_reported() {
        let (mut s, anchor) = space_with_anchor();
        let root = s.root_sro();
        let anchor_ad = s.mint(anchor, Rights::READ | Rights::WRITE);
        let o = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let o_ad = s.mint(o, Rights::READ);
        s.store_ad(anchor_ad, 0, Some(o_ad)).unwrap();

        // Simulate a barrier bypass: blacken the container, whiten the
        // target, *without* going through store_ad.
        s.set_color(anchor, Color::Black).unwrap();
        s.set_color(o, Color::White).unwrap();

        let v = check_tricolor(&mut s);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("gray-bit barrier"));
    }

    /// Gray targets are fine: that is exactly what the barrier produces.
    #[test]
    fn black_to_gray_edge_is_permitted() {
        let (mut s, anchor) = space_with_anchor();
        let root = s.root_sro();
        let anchor_ad = s.mint(anchor, Rights::READ | Rights::WRITE);
        let o = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let o_ad = s.mint(o, Rights::READ);
        s.store_ad(anchor_ad, 0, Some(o_ad)).unwrap();
        s.set_color(anchor, Color::Black).unwrap();
        s.set_color(o, Color::Gray).unwrap();
        assert!(check_tricolor(&mut s).is_empty());
    }
}
