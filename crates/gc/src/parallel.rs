//! The parallel per-shard collector: on-the-fly marking and sweeping
//! decomposed across the lock-striped space's shards.
//!
//! The serial [`crate::Collector`] remains the *deterministic* engine —
//! the discrete-event runner schedules it as a daemon process and every
//! EXPERIMENTS.md number comes from that path, bit-identical as before.
//! This module is the *threaded-runner* engine (paper §8.1: "a
//! system-wide **parallel** garbage collector"): one marking/sweeping
//! worker per shard, running on real threads concurrently with mutator
//! GDPs via the runner's aux-worker hook
//! ([`i432_sim::run_threaded_aux`]).
//!
//! ## Structure of a cycle
//!
//! Workers are synchronized by a [`Barrier`]; mutators are *never*
//! stopped — only the workers rendezvous.
//!
//! 1. **Root scan** (per shard, incremental): worker `k` walks shard
//!    `k`'s live directory leaf pages in bounded chunks
//!    ([`i432_arch::SpaceMut::for_live_in_range`] under the shard lock,
//!    released between chunks), shading the shard's root SRO and every
//!    processor object it finds, and pushing them onto its own gray
//!    deque. Worker 0 additionally shades
//!    [`GcConfig::extra_roots`].
//! 2. **Mark** (work-stealing): each worker drains its own
//!    [`GrayDeque`], stealing from the other shards' deques when empty
//!    (a global steal pass, [`EventKind::GcMarkSteal`]). Scanning an
//!    object shades its white targets and pushes them — always onto the
//!    *scanning* worker's deque, preserving the deques' single-owner
//!    discipline.
//! 3. **Verification** (per shard, incremental): when every worker's
//!    drain quiesces, each rescans its shard for grays the mutators'
//!    write barrier shaded concurrently. Marking terminates only when a
//!    full pass over every shard finds none — the same on-the-fly
//!    termination rule as the serial collector, which is also what
//!    makes the racy drain-quiescence check *safe*: a gray object
//!    missed by work-stealing termination is still gray in the table
//!    and is re-found here (see [`crate::gray`]).
//! 4. **Sweep** (per shard, incremental): worker `k` sweeps shard `k`
//!    in chunks — black/gray survivors are whitened under the shard
//!    lock alone (a color-only mutation, invisible to the
//!    qualification cache, so no epoch bump — see
//!    [`i432_arch::SharedSpace::with_shard_gc`]); white garbage is
//!    reclaimed through the shared
//!    [`crate::collector::reclaim_or_finalize`] under an atomic
//!    section, so destruction filters (paper §8.2) run concurrently
//!    with mutators and cross-shard bookkeeping (SRO charge, TDO
//!    counts, filter-port delivery) is exact.
//!
//! The unconditional gray-bit write barrier keeps feeding grays while
//! all of this runs; the two-cycle laundering it causes (a finished
//! wave's objects are gray, so cycle 1 launders them black→white and
//! cycle 2 reclaims) is identical to the serial engine and asserted by
//! the per-shard tricolor battery.

use crate::collector::{reclaim_or_finalize, GcConfig, GcStats};
use crate::gray::GrayDeque;
use i432_arch::{
    Color, ObjectRef, ObjectType, SharedSpace, SpaceAccess, SpaceAccessExt, SpaceMut, SystemType,
};
use i432_sim::{run_threaded_aux, AuxWorker, System, ThreadedOutcome};
use i432_trace::EventKind;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

/// Trace-context processor id of parallel collector worker 0; worker
/// `k` emits as `GC_TRACE_CPU_BASE + k`. Far above any simulated
/// processor id, so collector streams are separable in timelines.
pub const GC_TRACE_CPU_BASE: u16 = 100;

/// A snapshot of the parallel collector's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParGcStats {
    /// Completed collection cycles (all shards, barrier-aligned).
    pub cycles: u64,
    /// Objects reclaimed across all shards.
    pub reclaimed: u64,
    /// Garbage objects delivered to destruction filters.
    pub finalized: u64,
    /// Objects scanned by the markers (duplicates under steal races
    /// included, so this is schedule-dependent).
    pub mark_steps: u64,
    /// Successful steals from another shard's deque.
    pub steals: u64,
    /// Drain quiescence exits (one per worker per mark round).
    pub empty_steal_exits: u64,
    /// Global verification passes (one counts all shards).
    pub verification_passes: u64,
    /// Directory leaf pages probed by the sweeps.
    pub pages_swept: u64,
    /// Objects marked by each worker (worker `k` owns shard `k`;
    /// stolen work counts for the thief).
    pub marked_per_worker: Vec<u64>,
    /// Faults recorded during sweeping (must be empty in a healthy
    /// run).
    pub errors: Vec<String>,
}

/// Escalating idle pacing for the drain loop: a collector worker that
/// finds its deque empty and every steal pass dry first spins (cheap,
/// keeps the line hot while a peer is mid-push), then starts yielding
/// its timeslice so idle collector threads stop burning the cores the
/// mutator GDP threads want. Finding any work resets the ladder.
///
/// This only paces *host* scheduling of the marking threads — it never
/// touches simulated state, so the collector's observable results (and
/// every deterministic `c5_gc` key) are unchanged by construction.
struct Backoff {
    dry: u32,
}

impl Backoff {
    /// Empty passes spent spin-looping before escalating to yields.
    const SPIN_LIMIT: u32 = 6;

    fn new() -> Backoff {
        Backoff { dry: 0 }
    }

    /// Work was found: restart from the cheap end of the ladder.
    fn reset(&mut self) {
        self.dry = 0;
    }

    /// One empty pop+steal pass: spin 2^dry times up to the limit, then
    /// yield the timeslice instead.
    fn idle(&mut self) {
        if self.dry < Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.dry) {
                std::hint::spin_loop();
            }
            self.dry += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// Whether the ladder has escalated past spinning (test hook).
    #[cfg(test)]
    fn is_yielding(&self) -> bool {
        self.dry >= Self::SPIN_LIMIT
    }
}

/// The parallel per-shard collector. One instance coordinates
/// `shard_count` workers; create with [`ParallelGc::new`], then either
/// [`ParallelGc::collect_on`] (one-shot, own threads) or
/// [`run_threaded_parallel_gc`] (concurrent with mutators).
pub struct ParallelGc {
    /// Shared collector configuration (filters, extra roots, chunk).
    pub config: GcConfig,
    shards: u32,
    /// Indices covered per incremental scan/sweep slice (the shard lock
    /// is released between slices).
    chunk: u32,
    deques: Vec<GrayDeque>,
    barrier: Barrier,
    /// Items popped but not yet fully processed (their pushes may still
    /// be coming). Approximate by design; see `drain`.
    in_flight: AtomicI64,
    /// Total deque pushes ever (progress detection in `drain`).
    pushes: AtomicU64,
    /// Whether the current verification pass found any gray.
    gray_found: AtomicBool,
    /// Leader's cycle-boundary go/stop decision for `worker_loop`.
    go: AtomicBool,
    cycles: AtomicU64,
    reclaimed: AtomicU64,
    finalized: AtomicU64,
    mark_steps: AtomicU64,
    steals: AtomicU64,
    empty_steal_exits: AtomicU64,
    verification_passes: AtomicU64,
    pages_swept: AtomicU64,
    marked_per_worker: Vec<AtomicU64>,
    errors: Mutex<Vec<String>>,
}

impl ParallelGc {
    /// A collector for a `shards`-way space.
    pub fn new(shards: u32, config: GcConfig) -> Arc<ParallelGc> {
        assert!(shards >= 1);
        let n = shards as usize;
        Arc::new(ParallelGc {
            config,
            shards,
            chunk: 256,
            deques: (0..n).map(|_| GrayDeque::new(1 << 12)).collect(),
            barrier: Barrier::new(n),
            in_flight: AtomicI64::new(0),
            pushes: AtomicU64::new(0),
            gray_found: AtomicBool::new(false),
            go: AtomicBool::new(true),
            cycles: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            finalized: AtomicU64::new(0),
            mark_steps: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            empty_steal_exits: AtomicU64::new(0),
            verification_passes: AtomicU64::new(0),
            pages_swept: AtomicU64::new(0),
            marked_per_worker: (0..n).map(|_| AtomicU64::new(0)).collect(),
            errors: Mutex::new(Vec::new()),
        })
    }

    /// Number of workers (== shards).
    pub fn workers(&self) -> u32 {
        self.shards
    }

    /// Copies the counters out.
    pub fn snapshot(&self) -> ParGcStats {
        ParGcStats {
            cycles: self.cycles.load(Ordering::Acquire),
            reclaimed: self.reclaimed.load(Ordering::Acquire),
            finalized: self.finalized.load(Ordering::Acquire),
            mark_steps: self.mark_steps.load(Ordering::Acquire),
            steals: self.steals.load(Ordering::Acquire),
            empty_steal_exits: self.empty_steal_exits.load(Ordering::Acquire),
            verification_passes: self.verification_passes.load(Ordering::Acquire),
            pages_swept: self.pages_swept.load(Ordering::Acquire),
            marked_per_worker: self
                .marked_per_worker
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .collect(),
            errors: self.errors.lock().clone(),
        }
    }

    /// Runs `cycles` full collection cycles with one thread per shard.
    /// Blocks until done. The space's shard count must equal this
    /// collector's.
    pub fn collect_on(self: &Arc<Self>, shared: &SharedSpace, cycles: u32) {
        assert_eq!(
            shared.shard_count(),
            self.shards,
            "collector/space shard mismatch"
        );
        std::thread::scope(|scope| {
            for k in 0..self.shards {
                let gc = Arc::clone(self);
                scope.spawn(move || {
                    i432_trace::set_context(GC_TRACE_CPU_BASE + k as u16, 0);
                    let mut agent = shared.agent();
                    let mut local_cycles = gc.cycles.load(Ordering::Acquire);
                    for _ in 0..cycles {
                        gc.run_cycle(shared, k, &mut agent, &mut local_cycles);
                    }
                });
            }
        });
    }

    /// The aux-worker closures for [`i432_sim::run_threaded_aux`]: each
    /// runs full cycles back-to-back until the runner's `done` flag is
    /// set, always finishing the cycle in progress (the go/stop
    /// decision is taken by the barrier leader so every worker agrees).
    pub fn aux_workers(self: &Arc<Self>) -> Vec<AuxWorker> {
        (0..self.shards)
            .map(|k| {
                let gc = Arc::clone(self);
                let b: AuxWorker = Box::new(move |shared, done| {
                    gc.worker_loop(shared, k, done);
                });
                b
            })
            .collect()
    }

    fn worker_loop(&self, shared: &SharedSpace, k: u32, done: &AtomicBool) {
        assert_eq!(shared.shard_count(), self.shards);
        i432_trace::set_context(GC_TRACE_CPU_BASE + k as u16, 0);
        let mut agent = shared.agent();
        let mut local_cycles = self.cycles.load(Ordering::Acquire);
        loop {
            if self.barrier.wait().is_leader() {
                self.go
                    .store(!done.load(Ordering::Acquire), Ordering::Release);
            }
            self.barrier.wait();
            if !self.go.load(Ordering::Acquire) {
                return;
            }
            self.run_cycle(shared, k, &mut agent, &mut local_cycles);
        }
    }

    /// One full cycle for worker `k`. All workers must call this the
    /// same number of times (barrier discipline); `local_cycles` is the
    /// worker's own completed-cycle count, identical across workers.
    fn run_cycle(
        &self,
        shared: &SharedSpace,
        k: u32,
        agent: &mut i432_arch::SpaceAgent<'_>,
        local_cycles: &mut u64,
    ) {
        // ---- Root scan (every worker emits its own phase marker).
        i432_trace::emit(EventKind::GcPhaseMark, *local_cycles as u32);
        let root = agent.root_sro_of(k);
        let _ = agent.shade(root);
        self.push_own(k, root);
        if k == 0 {
            for r in self.config.extra_roots.clone() {
                if agent.shade(r).is_ok() {
                    self.push_own(k, r);
                }
            }
        }
        // Incremental walk of shard k's live leaf pages for processor
        // objects (roots): capture + shade under one bounded lock hold,
        // push outside it.
        self.scan_shard(shared, k, |e| {
            matches!(e.desc.otype, ObjectType::System(SystemType::Processor))
        });
        // Port-ring contents are roots too: a ring-resident message
        // lives outside any access part, so one that stays in a ring
        // across a sweep (which whitens everything) would be invisible
        // to this cycle's mark. The shade-at-push barrier covers
        // publication *during* a cycle; this scan covers residency
        // *across* cycles. Worker k covers its own shard's ports.
        self.scan_rings(k, agent);

        // ---- Mark + verification rounds.
        self.drain(k, agent);
        loop {
            if self.barrier.wait().is_leader() {
                self.gray_found.store(false, Ordering::Release);
                self.verification_passes.fetch_add(1, Ordering::Relaxed);
            }
            self.barrier.wait();
            if self.scan_shard(shared, k, |e| e.desc.color == Color::Gray) {
                self.gray_found.store(true, Ordering::Release);
            }
            self.barrier.wait();
            if !self.gray_found.load(Ordering::Acquire) {
                break;
            }
            self.drain(k, agent);
        }

        // ---- Sweep (mark globally terminated; all workers arrive here
        // together off the same barrier observation).
        i432_trace::emit(EventKind::GcPhaseSweep, *local_cycles as u32);
        self.sweep_shard(shared, k, agent);

        // ---- Cycle close: nobody starts the next root scan while a
        // shard is still sweeping (a new cycle's marker blackening an
        // object that an old cycle's sweeper then whitens would break
        // the invariant).
        self.barrier.wait();
        *local_cycles += 1;
        i432_trace::emit(EventKind::GcPhaseIdle, *local_cycles as u32);
        if self.barrier.wait().is_leader() {
            self.cycles.fetch_add(1, Ordering::Release);
        }
    }

    fn push_own(&self, k: u32, r: ObjectRef) {
        self.deques[k as usize].push(r);
        self.pushes.fetch_add(1, Ordering::SeqCst);
    }

    /// Shades and pushes every message currently published in the
    /// rings of shard `k`'s ports (seqlock-consistent racy snapshot —
    /// an entry mid-publish is skipped; its message is still reachable
    /// through the sender's context at that instant, and the push
    /// barrier shades it on publication). Rings of dead ports are
    /// skipped: their messages died with the port, exactly as
    /// area-resident messages would have.
    fn scan_rings(&self, k: u32, agent: &mut i432_arch::SpaceAgent<'_>) {
        let Some(reg) = agent.port_rings() else {
            return;
        };
        let reg = Arc::clone(reg);
        let shards = self.deques.len() as u32;
        reg.for_each(|ring| {
            if ring.is_dead() || ring.port().index.0 % shards != k {
                return;
            }
            for msg in ring.snapshot_refs() {
                // A stale ref (message destroyed after the snapshot
                // read) fails the generation check inside shade.
                if agent.shade(msg).is_ok() {
                    self.push_own(k, msg);
                }
            }
        });
    }

    /// Incrementally walks shard `k`'s live directory pages; entries
    /// matching `pred` are shaded under the shard lock and pushed onto
    /// worker `k`'s deque. Returns whether anything matched.
    fn scan_shard(
        &self,
        shared: &SharedSpace,
        k: u32,
        pred: impl Fn(&i432_arch::Entry) -> bool,
    ) -> bool {
        let mut cur = 0u32;
        let mut any = false;
        loop {
            let (batch, next) = shared.with_shard_gc(k, |s| {
                let end = s.index_space_end();
                let start = s.next_possibly_live(cur);
                if start >= end {
                    return (Vec::new(), None);
                }
                let hi = start.saturating_add(self.chunk).min(end);
                let mut batch = Vec::new();
                s.for_live_in_range(start, hi, &mut |i, e| {
                    if pred(e) {
                        batch.push(ObjectRef {
                            index: i,
                            generation: e.generation,
                        });
                    }
                });
                for r in &batch {
                    let _ = s.shade(*r);
                }
                (batch, Some(hi))
            });
            for r in batch {
                any = true;
                self.push_own(k, r);
            }
            match next {
                Some(hi) => cur = hi,
                None => return any,
            }
        }
    }

    /// Work loop: pop own deque, steal when empty, exit on (racy)
    /// quiescence. Premature exit is harmless: the worker parks at the
    /// verification barrier, which no worker passes before finishing
    /// its own drain, and anything missed is still gray in the table
    /// for the verification scan to re-find.
    fn drain(&self, k: u32, agent: &mut i432_arch::SpaceAgent<'_>) {
        let mut backoff = Backoff::new();
        loop {
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            let item = self.deques[k as usize].pop().or_else(|| self.steal(k));
            match item {
                Some(r) => {
                    self.process(k, r, agent);
                    self.in_flight.fetch_sub(1, Ordering::SeqCst);
                    backoff.reset();
                }
                None => {
                    self.in_flight.fetch_sub(1, Ordering::SeqCst);
                    let p = self.pushes.load(Ordering::SeqCst);
                    if self.in_flight.load(Ordering::SeqCst) == 0
                        && self.deques.iter().all(|d| d.looks_empty())
                        && self.pushes.load(Ordering::SeqCst) == p
                    {
                        self.empty_steal_exits.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    backoff.idle();
                }
            }
        }
    }

    /// One global steal pass over the other shards' deques.
    fn steal(&self, k: u32) -> Option<ObjectRef> {
        let n = self.deques.len();
        for j in 1..n {
            let v = (k as usize + j) % n;
            if let Some(r) = self.deques[v].steal() {
                i432_trace::emit(EventKind::GcMarkSteal, v as u32);
                i432_trace::bump(i432_trace::Counter::GcMarkSteals);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(r);
            }
        }
        i432_trace::bump(i432_trace::Counter::GcMarkEmptySteals);
        None
    }

    /// Scans one gray object: shade + push white targets (onto the
    /// scanning worker's own deque), then blacken. Duplicate pushes
    /// from shade races are benign — the second scan sees black and
    /// returns.
    fn process(&self, k: u32, r: ObjectRef, agent: &mut i432_arch::SpaceAgent<'_>) {
        let Ok(color) = agent.color_of(r) else {
            return; // reclaimed/retired since it was pushed
        };
        if color == Color::Black {
            return;
        }
        let Ok(ads) = agent.scan_access_part(r) else {
            return;
        };
        for ad in ads {
            if matches!(agent.color_of(ad.obj), Ok(Color::White)) && agent.shade(ad.obj).is_ok() {
                self.push_own(k, ad.obj);
            }
        }
        let _ = agent.set_color(r, Color::Black);
        self.mark_steps.fetch_add(1, Ordering::Relaxed);
        self.marked_per_worker[k as usize].fetch_add(1, Ordering::Relaxed);
        i432_trace::bump(i432_trace::Counter::GcParMarkSteps);
    }

    /// Sweeps shard `k` incrementally: capture a chunk under the shard
    /// lock, whiten survivors under the shard lock (color-only — no
    /// epoch bump needed), reclaim whites under an atomic section
    /// (destruction filters + cross-shard bookkeeping).
    fn sweep_shard(&self, shared: &SharedSpace, k: u32, agent: &mut i432_arch::SpaceAgent<'_>) {
        // Anything still queued was blackened already or will be
        // re-found next cycle (it is gray in the table).
        self.deques[k as usize].clear();
        let mut local = GcStats::default();
        let mut cur = 0u32;
        loop {
            let (batch, pages, next) = shared.with_shard_gc(k, |s| {
                let end = s.index_space_end();
                let start = s.next_possibly_live(cur);
                if start >= end {
                    return (Vec::new(), 0u32, None);
                }
                let hi = start.saturating_add(self.chunk).min(end);
                let mut batch: Vec<(ObjectRef, Color)> = Vec::new();
                let pages = s.for_live_in_range(start, hi, &mut |i, e| {
                    batch.push((
                        ObjectRef {
                            index: i,
                            generation: e.generation,
                        },
                        e.desc.color,
                    ));
                });
                (batch, pages, Some(hi))
            });
            i432_trace::bump_by(i432_trace::Counter::GcSweepPages, u64::from(pages));
            self.pages_swept
                .fetch_add(u64::from(pages), Ordering::Relaxed);
            let mut whites: Vec<ObjectRef> = Vec::new();
            if !batch.is_empty() {
                shared.with_shard_gc(k, |s| {
                    for (r, color) in &batch {
                        if s.entry(*r).is_err() {
                            continue;
                        }
                        match color {
                            // Survivor (gray can appear mid-sweep when
                            // a mutator moves an AD for a live object):
                            // whiten for the next cycle.
                            Color::Black | Color::Gray => {
                                let _ = s.set_color(*r, Color::White);
                            }
                            Color::White => whites.push(*r),
                        }
                    }
                });
            }
            if !whites.is_empty() {
                let config = &self.config;
                let errors = &self.errors;
                agent.atomically(|sm| {
                    for r in &whites {
                        if let Err(f) = reclaim_or_finalize(sm, *r, config, &mut local) {
                            errors.lock().push(format!("sweep shard {k}: {f:?}"));
                        }
                    }
                });
            }
            match next {
                Some(hi) => cur = hi,
                None => break,
            }
        }
        self.reclaimed.fetch_add(local.reclaimed, Ordering::AcqRel);
        self.finalized.fetch_add(local.finalized, Ordering::AcqRel);
    }
}

/// Runs the threaded runner with this collector's workers marking and
/// sweeping concurrently alongside the mutator GDPs. The collector
/// always finishes the cycle in progress when the workload completes,
/// so the space is handed back at a cycle boundary (all colors white).
pub fn run_threaded_parallel_gc(
    sys: System,
    max_steps: u64,
    cache: bool,
    gc: &Arc<ParallelGc>,
) -> (System, ThreadedOutcome) {
    run_threaded_aux(sys, max_steps, cache, gc.aux_workers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpec, Rights, ShardedSpace, SysState};

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding(), "fresh ladder starts at the spin end");
        for _ in 0..Backoff::SPIN_LIMIT {
            b.idle();
        }
        assert!(b.is_yielding(), "dry passes escalate to yielding");
        // Escalated idling stays at the yield rung (no counter wrap).
        b.idle();
        b.idle();
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding(), "finding work restarts the cheap spins");
    }

    /// A 4-shard space: per shard, a processor anchoring a chain of
    /// `live` reachable objects, plus `garbage` unreachable ones.
    fn sharded_population(shards: u32, live: u32, garbage: u32) -> (ShardedSpace, Vec<ObjectRef>) {
        let mut s = ShardedSpace::new(1 << 20, 1 << 14, 1 << 12, shards);
        let mut garbage_refs = Vec::new();
        for k in 0..shards {
            let root = s.root_sro_of(k);
            let cpu = s
                .create_object(
                    root,
                    ObjectSpec {
                        data_len: 0,
                        access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
                        otype: ObjectType::System(SystemType::Processor),
                        level: None,
                        sys: SysState::Processor(i432_arch::ProcessorState::new(k)),
                    },
                )
                .unwrap();
            let mut prev: Option<ObjectRef> = None;
            for _ in 0..live {
                let o = s.create_object(root, ObjectSpec::generic(16, 2)).unwrap();
                if let Some(p) = prev {
                    let ad = s.mint(p, Rights::ALL);
                    s.store_ad_hw(o, 0, Some(ad)).unwrap();
                }
                prev = Some(o);
            }
            if let Some(head) = prev {
                let ad = s.mint(head, Rights::ALL);
                s.store_ad_hw(cpu, i432_arch::sysobj::CPU_SLOT_ROOT, Some(ad))
                    .unwrap();
            }
            for _ in 0..garbage {
                garbage_refs.push(s.create_object(root, ObjectSpec::generic(16, 1)).unwrap());
            }
        }
        (s, garbage_refs)
    }

    #[test]
    fn parallel_collect_reclaims_garbage_keeps_live() {
        let (space, garbage) = sharded_population(4, 50, 20);
        let live_before = space.live_count();
        let shared = SharedSpace::new(space);
        let gc = ParallelGc::new(4, GcConfig::default());
        gc.collect_on(&shared, 1);
        let stats = gc.snapshot();
        assert_eq!(stats.cycles, 1);
        assert_eq!(stats.errors, Vec::<String>::new());
        assert_eq!(stats.reclaimed, 4 * 20, "exactly the garbage reclaimed");
        let space = shared.into_inner();
        assert_eq!(space.live_count(), live_before - 4 * 20);
        for g in garbage {
            assert!(space.entry(g).is_err(), "garbage {g:?} not reclaimed");
        }
        // Survivors whitened for the next cycle.
        space.for_each_live(&mut |_, e| assert_eq!(e.desc.color, Color::White));
    }

    #[test]
    fn chain_shades_survive_via_two_cycle_laundering() {
        // Building the chains shades every stored-to target gray (the
        // unconditional write barrier). Dropping the anchor *after*
        // that leaves a garbage chain that is gray, not white: cycle 1
        // must launder (blacken via verification, whiten at sweep),
        // cycle 2 reclaims. This is the C11-discovered behavior the
        // parallel engine must preserve.
        let (mut space, _) = sharded_population(2, 10, 0);
        // Unanchor shard 0's chain.
        let cpus: Vec<ObjectRef> = {
            let mut v = Vec::new();
            space.for_each_live(&mut |i, e| {
                if matches!(e.desc.otype, ObjectType::System(SystemType::Processor)) {
                    v.push(ObjectRef {
                        index: i,
                        generation: e.generation,
                    });
                }
            });
            v
        };
        let cpu0 = cpus
            .iter()
            .copied()
            .find(|r| r.index.0 % 2 == 0)
            .expect("shard-0 processor");
        space
            .store_ad_hw(cpu0, i432_arch::sysobj::CPU_SLOT_ROOT, None)
            .unwrap();
        let shared = SharedSpace::new(space);
        let gc = ParallelGc::new(2, GcConfig::default());
        gc.collect_on(&shared, 1);
        let after_one = gc.snapshot().reclaimed;
        gc.collect_on(&shared, 1);
        let after_two = gc.snapshot().reclaimed;
        // The dropped chain is 10 objects; the store into the chain
        // head's slot had shaded 9 of them (all but the head object
        // itself, which was never a store target... the head *was*
        // stored into the CPU slot, so all 10 are gray).
        assert_eq!(
            after_one, 0,
            "gray garbage must be laundered, not reclaimed"
        );
        assert_eq!(after_two, 10, "laundered garbage reclaimed on cycle 2");
        let space = shared.into_inner();
        space.for_each_live(&mut |_, e| assert_eq!(e.desc.color, Color::White));
    }

    #[test]
    fn marking_is_sound_under_cross_shard_graphs() {
        // A single chain hopping shards every link: marking it forces
        // cross-shard shading and gives thieves something to steal.
        let shards = 4u32;
        let mut s = ShardedSpace::new(1 << 20, 1 << 14, 1 << 12, shards);
        let root0 = s.root_sro();
        let cpu = s
            .create_object(
                root0,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Processor),
                    level: None,
                    sys: SysState::Processor(i432_arch::ProcessorState::new(0)),
                },
            )
            .unwrap();
        let mut prev: Option<ObjectRef> = None;
        let mut chain = Vec::new();
        for i in 0..200u32 {
            let parent = s.root_sro_of(i % shards);
            let o = s.create_object(parent, ObjectSpec::generic(8, 2)).unwrap();
            chain.push(o);
            if let Some(p) = prev {
                let ad = s.mint(p, Rights::ALL);
                s.store_ad_hw(o, 0, Some(ad)).unwrap();
            }
            prev = Some(o);
        }
        let head_ad = s.mint(prev.unwrap(), Rights::ALL);
        s.store_ad_hw(cpu, i432_arch::sysobj::CPU_SLOT_ROOT, Some(head_ad))
            .unwrap();
        let shared = SharedSpace::new(s);
        let gc = ParallelGc::new(shards, GcConfig::default());
        gc.collect_on(&shared, 2);
        assert_eq!(gc.snapshot().reclaimed, 0, "the whole chain is live");
        let space = shared.into_inner();
        for o in chain {
            assert!(space.entry(o).is_ok(), "live chain link lost");
        }
    }
}
