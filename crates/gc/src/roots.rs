//! Garbage-collection roots.

use i432_arch::{ObjectRef, ObjectType, SpaceMut, SystemType};

/// Discovers the root set: every processor object plus the root SRO.
///
/// Everything else the system needs alive must be reachable from a
/// processor — through its dispatching port (ready processes), its bound
/// process, or its root-directory slot (global domains and services).
/// This is the capability answer to "what is live": there is no central
/// registry to consult (paper §7.1).
pub fn find_roots<S: SpaceMut + ?Sized>(space: &S) -> Vec<ObjectRef> {
    let mut roots = vec![space.root_sro()];
    // Every shard root SRO is a root: objects charge their storage to
    // their shard's root when no intermediate SRO intervenes.
    for k in 1..space.shard_count() {
        roots.push(space.root_sro_of(k));
    }
    space.for_each_live(&mut |i, e| {
        if is_root_entry(e) {
            roots.push(ObjectRef {
                index: i,
                generation: e.generation,
            });
        }
    });
    // Messages published in port rings live outside any access part
    // until a locked operation drains them, so the collector must treat
    // ring contents as roots: a sweep resets colors, and a message that
    // sat in a ring across a whole cycle would otherwise be missed by
    // the next mark (the shade-at-push barrier only covers the cycle in
    // which the push happened). Rings of dead ports are retired — their
    // entries died with the port, exactly as area-resident messages do.
    if let Some(reg) = space.port_rings() {
        reg.for_each(|ring| {
            if ring.is_dead() {
                return;
            }
            for msg in ring.snapshot_refs() {
                roots.push(msg);
            }
        });
    }
    roots
}

/// Whether a live table entry is a root by virtue of its type. The
/// parallel collector's per-shard root scans apply this predicate to
/// each shard's live leaf pages, so the serial and parallel engines
/// agree on the root set by construction.
pub fn is_root_entry(e: &i432_arch::Entry) -> bool {
    e.desc.otype == ObjectType::System(SystemType::Processor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpace, ObjectSpec, ProcessorState, SysState};

    #[test]
    fn processors_and_root_sro_are_roots() {
        let mut s = ObjectSpace::new(8192, 512, 64);
        let root = s.root_sro();
        let cpu = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Processor),
                    level: None,
                    sys: SysState::Processor(ProcessorState::new(0)),
                },
            )
            .unwrap();
        let _noise = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let roots = find_roots(&s);
        assert!(roots.contains(&root));
        assert!(roots.contains(&cpu));
        assert_eq!(roots.len(), 2);
    }
}
