//! Garbage-collection roots.

use i432_arch::{ObjectRef, ObjectSpace, ObjectType, SystemType};

/// Discovers the root set: every processor object plus the root SRO.
///
/// Everything else the system needs alive must be reachable from a
/// processor — through its dispatching port (ready processes), its bound
/// process, or its root-directory slot (global domains and services).
/// This is the capability answer to "what is live": there is no central
/// registry to consult (paper §7.1).
pub fn find_roots(space: &ObjectSpace) -> Vec<ObjectRef> {
    let mut roots = vec![space.root_sro()];
    for (i, e) in space.table.iter_live() {
        if e.desc.otype == ObjectType::System(SystemType::Processor) {
            roots.push(ObjectRef {
                index: i,
                generation: e.generation,
            });
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpec, ProcessorState, SysState};

    #[test]
    fn processors_and_root_sro_are_roots() {
        let mut s = ObjectSpace::new(8192, 512, 64);
        let root = s.root_sro();
        let cpu = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Processor),
                    level: None,
                    sys: SysState::Processor(ProcessorState::new(0)),
                },
            )
            .unwrap();
        let _noise = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let roots = find_roots(&s);
        assert!(roots.contains(&root));
        assert!(roots.contains(&cpu));
        assert_eq!(roots.len(), 2);
    }
}
