//! The incremental tricolor collector (Dijkstra et al., as cited by
//! paper §8.1).
//!
//! Colors live in the object descriptors (`i432_arch::Color`); the
//! hardware write barrier shades gray on every AD move. The collector
//! runs in small increments so it can be embodied as a daemon process
//! sharing the processors with mutators:
//!
//! 1. **Start** — shade the roots.
//! 2. **Mark** — repeatedly scan a gray object's access part, shading its
//!    targets and blackening it. When the collector's own gray stack
//!    drains, a *verification scan* of the whole table looks for grays
//!    the mutators shaded concurrently; marking terminates only when a
//!    full scan finds none (the on-the-fly termination rule).
//! 3. **Sweep** — walk the table: white objects are garbage (reclaimed,
//!    or delivered to their destruction filter, paper §8.2); black
//!    objects are whitened for the next cycle.
//!
//! Safety argument (tested property I6): the barrier maintains the
//! invariant that no black object ever references a white object without
//! that white object having been shaded, so a white object at sweep time
//! was unreachable at mark termination — and unreachable objects can
//! never be touched again (capabilities cannot be forged), so reclaiming
//! them is sound even while mutators keep running.

use crate::{filter, roots::find_roots};
use i432_arch::{AccessDescriptor, Color, ObjectRef, ObjectType, SpaceMut, SysState, SystemType};
use i432_gdp::Fault;

/// Collector phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcPhase {
    /// Between cycles.
    #[default]
    Idle,
    /// Propagating grayness.
    Mark,
    /// Reclaiming whites / whitening blacks.
    Sweep,
}

/// Collector statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Completed collection cycles.
    pub cycles: u64,
    /// Objects reclaimed.
    pub reclaimed: u64,
    /// Garbage objects delivered to destruction filters.
    pub finalized: u64,
    /// Mark increments executed.
    pub mark_steps: u64,
    /// Sweep increments executed.
    pub sweep_steps: u64,
    /// Whole-table verification scans during mark.
    pub verification_scans: u64,
    /// Simulated cycles consumed (fed to the daemon's cost accounting).
    pub sim_cycles: u64,
}

/// Collector configuration.
#[derive(Debug, Clone, Default)]
pub struct GcConfig {
    /// Extra roots beyond processors + root SRO (iMAX registers its
    /// global service directory here when no processor references it).
    pub extra_roots: Vec<ObjectRef>,
    /// Port receiving *lost process objects* (paper §9: release 1 uses
    /// the filter facility only for processes).
    pub process_filter_port: Option<AccessDescriptor>,
    /// Table entries visited per sweep increment.
    pub sweep_chunk: u32,
}

/// The incremental collector.
#[derive(Debug, Default)]
pub struct Collector {
    /// Configuration.
    pub config: GcConfig,
    /// Statistics.
    pub stats: GcStats,
    phase: GcPhase,
    gray_stack: Vec<ObjectRef>,
    sweep_cursor: u32,
}

impl Collector {
    /// A collector with default configuration.
    pub fn new() -> Collector {
        Collector {
            config: GcConfig {
                sweep_chunk: 64,
                ..GcConfig::default()
            },
            ..Collector::default()
        }
    }

    /// Current phase.
    pub fn phase(&self) -> GcPhase {
        self.phase
    }

    /// Begins a collection cycle: shades the roots gray.
    pub fn start_cycle<S: SpaceMut + ?Sized>(&mut self, space: &mut S) -> Result<(), Fault> {
        debug_assert_eq!(self.phase, GcPhase::Idle);
        let mut roots = find_roots(space);
        roots.extend(self.config.extra_roots.iter().copied());
        for r in roots {
            if space.entry(r).is_ok() {
                space.shade(r).map_err(Fault::from)?;
                self.gray_stack.push(r);
            }
        }
        self.phase = GcPhase::Mark;
        self.stats.sim_cycles += 50;
        i432_trace::emit(i432_trace::EventKind::GcPhaseMark, 0);
        Ok(())
    }

    /// Runs one collector increment. Returns `true` when a full cycle
    /// completed with this step.
    pub fn step<S: SpaceMut + ?Sized>(&mut self, space: &mut S) -> Result<bool, Fault> {
        i432_trace::emit(i432_trace::EventKind::GcIncrement, 0);
        i432_trace::bump(i432_trace::Counter::GcIncrements);
        match self.phase {
            GcPhase::Idle => {
                self.start_cycle(space)?;
                Ok(false)
            }
            GcPhase::Mark => {
                self.mark_step(space)?;
                Ok(false)
            }
            GcPhase::Sweep => self.sweep_step(space),
        }
    }

    /// Runs a complete cycle to the end (start → mark → sweep).
    pub fn collect_full<S: SpaceMut + ?Sized>(&mut self, space: &mut S) -> Result<(), Fault> {
        if self.phase == GcPhase::Idle {
            self.start_cycle(space)?;
        }
        // A bound far above any possible work guards against bugs.
        for _ in 0..(space.index_space_end() as u64 * 8 + 1024) {
            if self.step(space)? {
                return Ok(());
            }
        }
        panic!("collector failed to terminate");
    }

    fn mark_step<S: SpaceMut + ?Sized>(&mut self, space: &mut S) -> Result<(), Fault> {
        self.stats.mark_steps += 1;
        if let Some(obj) = self.gray_stack.pop() {
            // The object may have been reclaimed (scope exit) since it
            // was pushed.
            if space.entry(obj).is_err() {
                return Ok(());
            }
            // Scan: shade every target, blacken the object.
            let ads = space.scan_access_part(obj).map_err(Fault::from)?;
            self.stats.sim_cycles += 20 + 4 * ads.len() as u64;
            for ad in ads {
                if space.entry(ad.obj).is_ok()
                    && space.color_of(ad.obj).map_err(Fault::from)? == Color::White
                {
                    space.shade(ad.obj).map_err(Fault::from)?;
                    self.gray_stack.push(ad.obj);
                }
            }
            space.set_color(obj, Color::Black).map_err(Fault::from)?;
            return Ok(());
        }
        // Stack drained: verification scan for mutator-shaded grays.
        self.stats.verification_scans += 1;
        self.stats.sim_cycles += space.index_space_end() as u64;
        let mut found = false;
        let gray_stack = &mut self.gray_stack;
        space.for_each_live(&mut |i, e| {
            if e.desc.color == Color::Gray {
                gray_stack.push(ObjectRef {
                    index: i,
                    generation: e.generation,
                });
                found = true;
            }
        });
        if !found {
            self.phase = GcPhase::Sweep;
            self.sweep_cursor = 0;
            // Mark termination: the verification scan found no grays.
            i432_trace::emit(i432_trace::EventKind::GcPhaseSweep, 0);
        }
        Ok(())
    }

    fn sweep_step<S: SpaceMut + ?Sized>(&mut self, space: &mut S) -> Result<bool, Fault> {
        self.stats.sweep_steps += 1;
        let chunk = self.config.sweep_chunk.max(1);
        // Jump over index ranges whose leaf pages are absent or all-free
        // — with the two-level directory the sweep is O(live + allocated
        // pages), not O(index_space_end).
        self.sweep_cursor = space.next_possibly_live(self.sweep_cursor);
        let end = self
            .sweep_cursor
            .saturating_add(chunk)
            .min(space.index_space_end());
        // Capture-then-process: the window walk only touches allocated
        // pages; actions then re-validate each entry (an entry may have
        // gone away since capture, e.g. a process-scope teardown).
        let mut batch: Vec<(ObjectRef, Color)> = Vec::new();
        let pages = space.for_live_in_range(self.sweep_cursor, end, &mut |i, e| {
            batch.push((
                ObjectRef {
                    index: i,
                    generation: e.generation,
                },
                e.desc.color,
            ));
        });
        i432_trace::bump_by(i432_trace::Counter::GcSweepPages, pages as u64);
        for (r, color) in batch {
            if space.entry(r).is_err() {
                continue;
            }
            self.stats.sim_cycles += 4;
            match color {
                Color::Black | Color::Gray => {
                    // Survivor (gray can appear mid-sweep when a mutator
                    // moves an AD for a live object): whiten for the next
                    // cycle.
                    space.set_color(r, Color::White).map_err(Fault::from)?;
                }
                Color::White => {
                    self.reclaim_or_finalize(space, r)?;
                }
            }
        }
        self.sweep_cursor = end;
        if self.sweep_cursor >= space.index_space_end() {
            self.phase = GcPhase::Idle;
            self.stats.cycles += 1;
            i432_trace::emit(i432_trace::EventKind::GcPhaseIdle, 0);
            return Ok(true);
        }
        Ok(false)
    }

    fn reclaim_or_finalize<S: SpaceMut + ?Sized>(
        &mut self,
        space: &mut S,
        r: ObjectRef,
    ) -> Result<(), Fault> {
        reclaim_or_finalize(space, r, &self.config, &mut self.stats)
    }
}

/// Sweeps one white object: filter delivery, SRO deferral, or physical
/// reclaim. Shared verbatim between the serial [`Collector`] and the
/// parallel per-shard sweeper so the deterministic path's accounting
/// stays bit-identical.
pub(crate) fn reclaim_or_finalize<S: SpaceMut + ?Sized>(
    space: &mut S,
    r: ObjectRef,
    config: &GcConfig,
    stats: &mut GcStats,
) -> Result<(), Fault> {
    let Ok(e) = space.entry(r) else {
        // Gone since capture (scope teardown raced the sweep).
        return Ok(());
    };
    // The root SRO has no parent and is indestructible; it is also
    // always a root, so a white root SRO indicates a bug.
    if e.desc.sro.is_none() {
        return Ok(());
    }
    let notified = e.desc.filter_notified;
    let otype = e.desc.otype;

    if !notified {
        // Destruction filters (paper §8.2): a garbage instance of a
        // filtered type is delivered to its type manager instead of
        // reclaimed. Release-1 special case: lost processes.
        let filter_port = match otype {
            ObjectType::User(tdo) => filter::filter_port_for(space, tdo)?,
            ObjectType::System(SystemType::Process) => config.process_filter_port,
            _ => None,
        };
        if let Some(port) = filter_port {
            if filter::deliver(space, port, r)? {
                space
                    .entry_mut(r)
                    .map_err(Fault::from)?
                    .desc
                    .filter_notified = true;
                stats.finalized += 1;
                stats.sim_cycles += 120;
                return Ok(());
            }
            // Filter port gone or full: fall through and reclaim —
            // better a lost notification than a leak.
        }
    }

    // A garbage SRO still charging objects cannot be destroyed alone;
    // its objects are garbage too (nothing outside an SRO's clients
    // references it) and will be reclaimed as the sweep reaches them,
    // after which a later cycle reclaims the SRO itself.
    if let SysState::Sro(st) = &space.entry(r).map_err(Fault::from)?.sys {
        if st.object_count > 0 {
            return Ok(());
        }
    }
    if let ObjectType::User(tdo) = otype {
        if let Ok(t) = space.tdo_mut(tdo) {
            t.instances_reclaimed += 1;
        }
    }
    space.destroy_object(r).map_err(Fault::from)?;
    stats.reclaimed += 1;
    stats.sim_cycles += 40;
    i432_trace::emit(i432_trace::EventKind::GcSweepReclaim, r.index.0);
    i432_trace::bump(i432_trace::Counter::GcSweepReclaims);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpace, ObjectSpec, ProcessorState, Rights};

    /// A space with one processor whose root-directory slot anchors a
    /// "keep" object.
    fn space_with_anchor() -> (ObjectSpace, ObjectRef, ObjectRef) {
        let mut s = ObjectSpace::new(64 * 1024, 4096, 1024);
        let root = s.root_sro();
        let cpu = s
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Processor),
                    level: None,
                    sys: SysState::Processor(ProcessorState::new(0)),
                },
            )
            .unwrap();
        let anchor = s.create_object(root, ObjectSpec::generic(8, 4)).unwrap();
        let anchor_ad = s.mint(anchor, Rights::READ | Rights::WRITE);
        s.store_ad_hw(cpu, i432_arch::sysobj::CPU_SLOT_ROOT, Some(anchor_ad))
            .unwrap();
        (s, cpu, anchor)
    }

    #[test]
    fn unreachable_objects_are_reclaimed_reachable_kept() {
        let (mut s, _cpu, anchor) = space_with_anchor();
        let root = s.root_sro();
        // Reachable: hung off the anchor.
        let kept = s.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
        let kept_ad = s.mint(kept, Rights::READ);
        let anchor_ad = s.mint(anchor, Rights::READ | Rights::WRITE);
        s.store_ad(anchor_ad, 0, Some(kept_ad)).unwrap();
        // Garbage: never referenced.
        let garbage = s.create_object(root, ObjectSpec::generic(16, 0)).unwrap();

        let mut gc = Collector::new();
        gc.collect_full(&mut s).unwrap();

        assert!(s.table.get(kept).is_ok(), "reachable object survived");
        assert!(s.table.get(garbage).is_err(), "garbage reclaimed");
        assert_eq!(gc.stats.reclaimed, 1);
        assert_eq!(gc.stats.cycles, 1);
    }

    #[test]
    fn chains_are_traced_transitively() {
        let (mut s, _cpu, anchor) = space_with_anchor();
        let root = s.root_sro();
        // anchor -> a -> b -> c, all must survive.
        let mut prev_ad = s.mint(anchor, Rights::READ | Rights::WRITE);
        let mut chain = Vec::new();
        for _ in 0..3 {
            let o = s.create_object(root, ObjectSpec::generic(0, 2)).unwrap();
            let o_ad = s.mint(o, Rights::READ | Rights::WRITE);
            s.store_ad(prev_ad, 0, Some(o_ad)).unwrap();
            chain.push(o);
            prev_ad = o_ad;
        }
        let mut gc = Collector::new();
        gc.collect_full(&mut s).unwrap();
        for o in chain {
            assert!(s.table.get(o).is_ok());
        }
    }

    #[test]
    fn dropping_the_last_reference_makes_garbage() {
        let (mut s, _cpu, anchor) = space_with_anchor();
        let root = s.root_sro();
        let o = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let o_ad = s.mint(o, Rights::READ);
        let anchor_ad = s.mint(anchor, Rights::READ | Rights::WRITE);
        s.store_ad(anchor_ad, 0, Some(o_ad)).unwrap();
        let mut gc = Collector::new();
        gc.collect_full(&mut s).unwrap();
        assert!(s.table.get(o).is_ok());
        // Drop the reference; the next cycle reclaims.
        s.store_ad(anchor_ad, 0, None).unwrap();
        gc.collect_full(&mut s).unwrap();
        assert!(s.table.get(o).is_err());
    }

    #[test]
    fn barrier_protects_objects_moved_during_mark() {
        let (mut s, _cpu, anchor) = space_with_anchor();
        let root = s.root_sro();
        let anchor_ad = s.mint(anchor, Rights::READ | Rights::WRITE);
        // `hidden` is referenced only from a register-like context we
        // model as holding the AD in Rust and storing it mid-mark.
        let hidden = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let hidden_ad = s.mint(hidden, Rights::READ);

        let mut gc = Collector::new();
        gc.start_cycle(&mut s).unwrap();
        // Run a few mark steps, then the mutator stores the AD into the
        // (already black or soon-black) anchor.
        for _ in 0..2 {
            gc.step(&mut s).unwrap();
        }
        s.store_ad(anchor_ad, 1, Some(hidden_ad)).unwrap();
        // Finish the cycle.
        while !matches!(gc.phase(), GcPhase::Idle) {
            gc.step(&mut s).unwrap();
        }
        assert!(
            s.table.get(hidden).is_ok(),
            "the write barrier must protect concurrently-stored objects"
        );
    }

    #[test]
    fn colors_reset_between_cycles() {
        let (mut s, _cpu, anchor) = space_with_anchor();
        let mut gc = Collector::new();
        gc.collect_full(&mut s).unwrap();
        assert_eq!(s.color_of(anchor).unwrap(), Color::White);
        // A second cycle still keeps the anchor.
        gc.collect_full(&mut s).unwrap();
        assert!(s.table.get(anchor).is_ok());
        assert_eq!(gc.stats.cycles, 2);
    }

    #[test]
    fn garbage_cycles_are_collected() {
        // Two objects referencing each other, unreachable from roots.
        let (mut s, _cpu, _anchor) = space_with_anchor();
        let root = s.root_sro();
        let a = s.create_object(root, ObjectSpec::generic(0, 2)).unwrap();
        let b = s.create_object(root, ObjectSpec::generic(0, 2)).unwrap();
        let a_ad = s.mint(a, Rights::READ | Rights::WRITE);
        let b_ad = s.mint(b, Rights::READ | Rights::WRITE);
        s.store_ad(a_ad, 0, Some(b_ad)).unwrap();
        s.store_ad(b_ad, 0, Some(a_ad)).unwrap();
        let mut gc = Collector::new();
        // The stores shaded both gray; a first cycle sees them gray (the
        // conservative on-the-fly behaviour), a second reclaims.
        gc.collect_full(&mut s).unwrap();
        gc.collect_full(&mut s).unwrap();
        assert!(s.table.get(a).is_err());
        assert!(s.table.get(b).is_err());
    }

    #[test]
    fn garbage_sro_with_objects_takes_two_cycles() {
        let (mut s, _cpu, _anchor) = space_with_anchor();
        let root = s.root_sro();
        let sro = imax_storage::create_sro(
            &mut s,
            root,
            i432_arch::Level(0),
            imax_storage::SroQuota::for_objects(4),
        )
        .unwrap();
        let inner = s.create_object(sro, ObjectSpec::generic(16, 0)).unwrap();
        let mut gc = Collector::new();
        gc.collect_full(&mut s).unwrap();
        // Inner object reclaimed in cycle 1; the SRO may need cycle 2.
        assert!(s.table.get(inner).is_err());
        gc.collect_full(&mut s).unwrap();
        assert!(s.table.get(sro).is_err());
    }
}
