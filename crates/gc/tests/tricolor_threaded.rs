//! Tricolor invariant I6 under the *threaded* runner with the collector
//! running as a daemon process (paper §8.1's "parallel garbage
//! collection on shared memory multiprocessors").
//!
//! I6 (see `collector.rs`): a white object at sweep time was unreachable
//! at mark termination, so reclaiming it while mutators keep running is
//! sound. The flight recorder lets us check this *as an event-ordering
//! property* of real concurrent executions rather than by construction:
//! an object the barrier shaded gray inside the current GC cycle must
//! never be reclaimed by that cycle's sweep (unless its table index was
//! recycled by a fresh allocation in between).
//!
//! On a single simulated processor every event is emitted by one host
//! thread, so the merged timeline *is* the real-time order and the full
//! I6 scan is sound. On multiple processors merged cycle order is not
//! real-time order, so the multi-cpu test checks the order-free
//! projection instead: phase-event counts against the collector's own
//! statistics.
//!
//! The suite runs in both feature configurations; without `--features
//! trace` the timeline checks are vacuous but the end-to-end oracle
//! assertions (GC daemon invisible to workload outcomes, garbage really
//! reclaimed) still bite.

use i432_arch::sysobj::CTX_SLOT_SRO;
use i432_gdp::isa::{AluOp, DataDst, DataRef, Instruction};
use i432_gdp::process::ProcessSpec;
use i432_gdp::ProgramBuilder;
use i432_sim::{run_threaded_with, System, SystemConfig};
use i432_trace::{EventKind, TimelineEvent};
use imax_gc::{
    install_gc_daemon, run_threaded_parallel_gc, Collector, GcConfig, ParallelGc, GC_TRACE_CPU_BASE,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Scans a merged single-processor timeline for I6 violations and GC
/// phase-protocol violations. Returns the number of reclaim events.
///
/// Sound against ring wraparound: drops discard the *oldest* records,
/// so if a shade survives in the buffer every later allocation of that
/// index survives too — a dropped prefix can hide a violation but never
/// fabricate one.
fn check_i6_single_stream(events: &[TimelineEvent]) -> Result<u64, String> {
    #[derive(PartialEq, Clone, Copy, Debug)]
    enum Phase {
        Idle,
        Mark,
        Sweep,
    }
    // Unknown until the first phase event (wraparound may cut the head).
    let mut phase: Option<Phase> = None;
    let mut last_mark: Option<usize> = None;
    let mut last_shade: HashMap<u32, usize> = HashMap::new();
    let mut last_alloc: HashMap<u32, usize> = HashMap::new();
    let mut last_reclaim: HashMap<u32, usize> = HashMap::new();
    let mut reclaims = 0u64;
    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::GcPhaseMark => {
                if phase == Some(Phase::Mark) || phase == Some(Phase::Sweep) {
                    return Err(format!("event {i}: mark began out of {phase:?}"));
                }
                phase = Some(Phase::Mark);
                last_mark = Some(i);
            }
            EventKind::GcPhaseSweep => {
                if phase.is_some() && phase != Some(Phase::Mark) {
                    return Err(format!("event {i}: sweep began out of {phase:?}"));
                }
                phase = Some(Phase::Sweep);
            }
            EventKind::GcPhaseIdle => {
                if phase.is_some() && phase != Some(Phase::Sweep) {
                    return Err(format!("event {i}: cycle ended out of {phase:?}"));
                }
                phase = Some(Phase::Idle);
            }
            EventKind::GcShadeGray => {
                last_shade.insert(e.obj, i);
            }
            EventKind::SroAlloc => {
                last_alloc.insert(e.obj, i);
            }
            EventKind::GcSweepReclaim => {
                reclaims += 1;
                if phase.is_some() && phase != Some(Phase::Sweep) {
                    return Err(format!(
                        "event {i}: object {} reclaimed during {phase:?}, not sweep",
                        e.obj
                    ));
                }
                // I6: shaded inside the current cycle (after its
                // mark-start) and not index-recycled since ⇒ the object
                // is gray or black at the sweep and must survive it.
                if let (Some(m), Some(&s)) = (last_mark, last_shade.get(&e.obj)) {
                    if s > m && last_alloc.get(&e.obj).is_none_or(|&a| a < s) {
                        return Err(format!(
                            "I6 violation: object {} shaded gray at event {s} \
                             (cycle {}) within the current GC cycle was reclaimed \
                             at event {i} (cycle {})",
                            e.obj, events[s].cycle, e.cycle
                        ));
                    }
                }
                // A reclaimed index is free; reclaiming it again without
                // an intervening allocation would be a double free.
                if let Some(&r) = last_reclaim.get(&e.obj) {
                    if last_alloc.get(&e.obj).is_none_or(|&a| a < r) {
                        return Err(format!(
                            "event {i}: object {} reclaimed twice (first at event {r}) \
                             with no intervening allocation",
                            e.obj
                        ));
                    }
                }
                last_reclaim.insert(e.obj, i);
            }
            _ => {}
        }
    }
    Ok(reclaims)
}

/// A mutator that makes garbage: each iteration allocates a 32-byte
/// object into context slot 6, dropping the previous iteration's object.
fn garbage_maker(iters: u64) -> Vec<Instruction> {
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(iters), DataDst::Local(0));
    p.bind(top);
    p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(32), DataRef::Imm(0), 6);
    p.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), top);
    p.halt();
    p.finish()
}

/// A system of `mutators` churn processes, no collector installed.
fn mutator_system(cpus: u32, shards: u32, mutators: usize, iters: u64) -> System {
    let mut sys = System::new(
        &SystemConfig::small()
            .with_processors(cpus)
            .with_shards(shards),
    );
    let sub = sys.subprogram("garbage_maker", garbage_maker(iters), 64, 8);
    let dom = sys.install_domain("churn", vec![sub], 0);
    let dispatch = sys.dispatch_ad();
    for _ in 0..mutators {
        let mut spec = ProcessSpec::new(dispatch);
        spec.timeslice = 2_000;
        sys.spawn_with(dom, 0, None, spec);
    }
    sys
}

/// A system with the GC daemon time-slicing *at mutator priority* (so a
/// single processor round-robins daemon and mutators) plus `mutators`
/// churn processes.
fn churn_system(cpus: u32, mutators: usize, iters: u64) -> (System, Arc<Mutex<Collector>>) {
    churn_system_sharded(cpus, 1, mutators, iters)
}

/// [`churn_system`] over a sharded space.
fn churn_system_sharded(
    cpus: u32,
    shards: u32,
    mutators: usize,
    iters: u64,
) -> (System, Arc<Mutex<Collector>>) {
    let mut sys = System::new(
        &SystemConfig::small()
            .with_processors(cpus)
            .with_shards(shards),
    );
    let collector = Arc::new(Mutex::new(Collector::new()));
    let daemon = install_gc_daemon(&mut sys, Arc::clone(&collector), 32, 128);
    if let Ok(ps) = sys.space.process_mut(daemon) {
        ps.timeslice = 4_000;
        ps.slice_remaining = 4_000;
    }
    let sub = sys.subprogram("garbage_maker", garbage_maker(iters), 64, 8);
    let dom = sys.install_domain("churn", vec![sub], 0);
    let dispatch = sys.dispatch_ad();
    for _ in 0..mutators {
        let mut spec = ProcessSpec::new(dispatch);
        // Short slices force frequent preemption: the collector's
        // increments genuinely interleave with allocation and barrier
        // activity instead of running between completed mutators.
        spec.timeslice = 2_000;
        sys.spawn_with(dom, 0, None, spec);
    }
    (sys, collector)
}

#[test]
fn i6_holds_under_single_cpu_threaded_churn() {
    let _guard = i432_trace::test_guard();
    i432_trace::reset();
    i432_trace::set_context(0, 0);

    let (sys, collector) = churn_system(1, 2, 200);
    // Unbounded: the total-step cap counts idle dispatch spins, so no
    // finite budget is schedule-independent; the mutators provably halt
    // and the runner stops when they do (the daemon is a service).
    let (sys, outcome) = run_threaded_with(sys, u64::MAX, true);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "churn workload failed: {outcome:?}"
    );
    drop(sys);
    let stats = collector.lock().stats;
    assert!(
        stats.reclaimed >= 1,
        "the daemon reclaimed churn garbage while mutators ran: {stats:?}"
    );

    let t = i432_trace::drain_timeline();
    if i432_trace::ENABLED {
        let reclaim_events = check_i6_single_stream(&t.events).unwrap_or_else(|e| panic!("{e}"));
        assert!(reclaim_events >= 1, "the timeline saw the reclaims");
        if t.dropped == 0 {
            assert_eq!(
                reclaim_events, stats.reclaimed,
                "every reclaim left exactly one trace event"
            );
        }
    }
    i432_trace::reset();
}

#[test]
fn i6_holds_on_conform_seeds_with_gc_daemon() {
    let _guard = i432_trace::test_guard();
    for seed in [5u64, 23, 57] {
        let case = i432_conform::generate(seed);
        let reference = i432_conform::run_deterministic(&case);

        i432_trace::reset();
        i432_trace::set_context(0, 0);
        let (_sys, outcome, collector) = i432_conform::run_threaded_sys_gc(&case, 4, 1, true, 16);
        assert_eq!(
            outcome, reference,
            "seed {seed}: a concurrent collector must be invisible to the \
             workload-visible end state"
        );
        let stats = collector.lock().stats;
        assert!(
            stats.mark_steps + stats.sweep_steps >= 1,
            "seed {seed}: the daemon really ran increments: {stats:?}"
        );

        let t = i432_trace::drain_timeline();
        if i432_trace::ENABLED {
            check_i6_single_stream(&t.events).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                !t.of_kind(EventKind::GcIncrement).is_empty(),
                "seed {seed}: daemon increments reached the timeline"
            );
        }
    }
    i432_trace::reset();
}

#[test]
fn sweep_cost_is_proportional_to_live_pages_not_index_range() {
    use i432_arch::{ObjectSpace, ObjectSpec};

    let _guard = i432_trace::test_guard();
    i432_trace::reset();
    i432_trace::reset_counters();

    // Fill ~4 leaf pages of the directory with unreachable zero-size
    // objects; the first cycle reclaims them all, leaving a table whose
    // index space is still ~4100 wide but nearly empty.
    const LEAF: u32 = i432_arch::object_table::LEAF_ENTRIES;
    let mut space = ObjectSpace::new(64 * 1024, 4096, 8 * LEAF);
    let root = space.root_sro();
    for _ in 0..(4 * LEAF + 8) {
        space
            .create_object(root, ObjectSpec::generic(0, 0))
            .unwrap();
    }
    assert_eq!(space.table.leaf_pages(), 5, "population spans five pages");

    let mut gc = Collector::new();
    let before = i432_trace::snapshot();
    gc.collect_full(&mut space).unwrap();
    let full_steps = gc.stats.sweep_steps;
    let mid = i432_trace::snapshot();
    gc.collect_full(&mut space).unwrap();
    let after = i432_trace::snapshot();
    let empty_steps = gc.stats.sweep_steps - full_steps;

    // The second sweep still faces an index space of ~4100 slots (the
    // directory never shrinks), but only page 0 holds anything live, so
    // the cursor must jump the four dead pages instead of probing
    // every chunk of every slot.
    let index_chunks =
        (i432_arch::SpaceMut::index_space_end(&space) / gc.config.sweep_chunk) as u64;
    let live_page_chunks = (LEAF / gc.config.sweep_chunk) as u64;
    assert!(
        empty_steps <= live_page_chunks + space.table.leaf_pages() as u64,
        "sweeping a nearly-empty table took {empty_steps} steps; \
         want O(live pages) = ~{live_page_chunks}, not O(index range) = {index_chunks}"
    );
    assert!(
        empty_steps * 2 < full_steps,
        "dead-page skipping must beat the full sweep: {empty_steps} vs {full_steps}"
    );

    if i432_trace::ENABLED {
        use i432_trace::Counter;
        let full_pages = mid.get(Counter::GcSweepPages) - before.get(Counter::GcSweepPages);
        let empty_pages = after.get(Counter::GcSweepPages) - mid.get(Counter::GcSweepPages);
        assert!(full_pages >= 5, "the first sweep touched every live page");
        assert!(
            empty_pages <= live_page_chunks + space.table.leaf_pages() as u64,
            "page probes after mass reclaim must be bounded by live pages: \
             {empty_pages} probes vs {index_chunks} index chunks"
        );
    }
    i432_trace::reset();
    i432_trace::reset_counters();
}

#[test]
fn gc_phase_counts_are_consistent_on_multiple_cpus() {
    let _guard = i432_trace::test_guard();
    i432_trace::reset();
    i432_trace::set_context(0, 0);

    let (sys, collector) = churn_system(4, 4, 120);
    // Unbounded: the total-step cap counts idle dispatch spins, so no
    // finite budget is schedule-independent; the mutators provably halt
    // and the runner stops when they do (the daemon is a service).
    let (sys, outcome) = run_threaded_with(sys, u64::MAX, true);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "churn workload failed: {outcome:?}"
    );
    drop(sys);
    let stats = collector.lock().stats;

    let t = i432_trace::drain_timeline();
    if i432_trace::ENABLED && t.dropped == 0 {
        // Merged cycle order across processors is not real-time order,
        // so check the order-free projection: the phase events form a
        // prefix of (mark sweep idle)*, and reclaims match the
        // collector's own accounting exactly.
        let marks = t.of_kind(EventKind::GcPhaseMark).len() as u64;
        let sweeps = t.of_kind(EventKind::GcPhaseSweep).len() as u64;
        let idles = t.of_kind(EventKind::GcPhaseIdle).len() as u64;
        assert!(
            (sweeps == idles || sweeps == idles + 1) && (marks == sweeps || marks == sweeps + 1),
            "phase events are a prefix of (mark sweep idle)*: \
             {marks} marks / {sweeps} sweeps / {idles} idles"
        );
        assert_eq!(idles, stats.cycles, "one idle event per completed cycle");
        assert_eq!(
            t.of_kind(EventKind::GcSweepReclaim).len() as u64,
            stats.reclaimed,
            "one reclaim event per reclaimed object"
        );
        assert_eq!(
            t.of_kind(EventKind::GcIncrement).len() as u64,
            stats.mark_steps + stats.sweep_steps + marks,
            "one increment event per collector step (an idle-phase step \
             restarts the cycle, emitting the mark event)"
        );
    }
    i432_trace::reset();
}

// ---------------------------------------------------------------------
// Per-shard battery for the parallel collector (crate::parallel).
// ---------------------------------------------------------------------

/// Projects a timeline onto one shard: object events (shade, alloc,
/// reclaim) whose index stripes to shard `k`, plus every phase event.
/// On a single-cpu run with a serial daemon the merged order is real
/// order, so [`check_i6_single_stream`] of this projection is a genuine
/// *per-shard* I6 event-order scan.
fn shard_projection(events: &[TimelineEvent], shards: u32, k: u32) -> Vec<TimelineEvent> {
    events
        .iter()
        .filter(|e| match e.kind {
            EventKind::GcPhaseMark | EventKind::GcPhaseSweep | EventKind::GcPhaseIdle => true,
            EventKind::GcShadeGray | EventKind::SroAlloc | EventKind::GcSweepReclaim => {
                e.obj % shards == k
            }
            _ => false,
        })
        .copied()
        .collect()
}

/// I6 must hold *per shard*, not merely in aggregate: the per-shard
/// projection of a single-cpu timeline is scanned in full event order
/// for every shard of a 4-way striped space.
#[test]
fn i6_holds_per_shard_with_daemon_on_sharded_space() {
    let _guard = i432_trace::test_guard();
    i432_trace::reset();
    i432_trace::set_context(0, 0);

    const SHARDS: u32 = 4;
    let (sys, collector) = churn_system_sharded(1, SHARDS, 2, 200);
    let (sys, outcome) = run_threaded_with(sys, u64::MAX, true);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "churn workload failed: {outcome:?}"
    );
    drop(sys);
    let stats = collector.lock().stats;
    assert!(stats.reclaimed >= 1, "churn garbage reclaimed: {stats:?}");

    let t = i432_trace::drain_timeline();
    if i432_trace::ENABLED {
        let mut reclaims = 0;
        for k in 0..SHARDS {
            let proj = shard_projection(&t.events, SHARDS, k);
            reclaims += check_i6_single_stream(&proj).unwrap_or_else(|e| panic!("shard {k}: {e}"));
        }
        if t.dropped == 0 {
            assert_eq!(
                reclaims, stats.reclaimed,
                "the per-shard projections partition the reclaim events"
            );
        }
    }
    i432_trace::reset();
}

/// The parallel per-shard collector running concurrently with mutators
/// on the threaded runner. Cross-ring order is not real-time order, so
/// each worker's own ring is scanned in order (phase protocol, in-ring
/// I6, double-free detection) and everything cross-ring is checked as
/// order-free count identities against the collector's statistics.
#[test]
fn parallel_gc_per_shard_battery_under_threaded_churn() {
    let _guard = i432_trace::test_guard();
    i432_trace::reset();
    i432_trace::reset_counters();
    i432_trace::set_context(0, 0);

    const SHARDS: u32 = 4;
    let before = i432_trace::snapshot();
    let sys = mutator_system(2, SHARDS, 3, 600);
    let gc = ParallelGc::new(SHARDS, GcConfig::default());
    let (mut sys, outcome) = run_threaded_parallel_gc(sys, u64::MAX, true, &gc);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "churn workload failed: {outcome:?}"
    );
    let stats = gc.snapshot();
    let after = i432_trace::snapshot();
    assert_eq!(stats.errors, Vec::<String>::new());
    assert!(
        stats.cycles >= 1,
        "collector cycled during the run: {stats:?}"
    );
    assert_eq!(
        stats.marked_per_worker.iter().sum::<u64>(),
        stats.mark_steps,
        "per-worker mark counts partition the total"
    );

    let t = i432_trace::drain_timeline();
    if i432_trace::ENABLED {
        use i432_trace::Counter;
        assert_eq!(
            after.get(Counter::GcParMarkSteps) - before.get(Counter::GcParMarkSteps),
            stats.mark_steps,
            "trace counter and collector statistic agree on mark steps"
        );
        assert_eq!(
            after.get(Counter::GcMarkSteals) - before.get(Counter::GcMarkSteals),
            stats.steals,
            "trace counter and collector statistic agree on steals"
        );

        let mut ring_reclaims = 0u64;
        let mut ring_idles = Vec::new();
        for k in 0..SHARDS {
            let cpu = GC_TRACE_CPU_BASE + k as u16;
            let ring: Vec<TimelineEvent> =
                t.events.iter().filter(|e| e.cpu == cpu).copied().collect();
            // Worker k's ring in its own (real) emission order: the
            // cycle protocol must hold, reclaims must land inside sweep
            // phases, no index is freed twice, and nothing worker k
            // shaded in a cycle is reclaimed by that same cycle.
            let reclaims =
                check_i6_single_stream(&ring).unwrap_or_else(|e| panic!("worker {k}: {e}"));
            ring_reclaims += reclaims;
            // Worker k sweeps shard k and nothing else.
            for e in &ring {
                if e.kind == EventKind::GcSweepReclaim {
                    assert_eq!(
                        e.obj % SHARDS,
                        k,
                        "worker {k} reclaimed an object striped to shard {}",
                        e.obj % SHARDS
                    );
                }
            }
            ring_idles.push(
                ring.iter()
                    .filter(|e| e.kind == EventKind::GcPhaseIdle)
                    .count() as u64,
            );
        }
        if t.dropped == 0 {
            assert_eq!(
                ring_reclaims, stats.reclaimed,
                "worker rings account for every reclaim"
            );
            // Barrier discipline: every worker completed the same
            // number of cycles, and the shared counter agrees.
            for (k, idles) in ring_idles.iter().enumerate() {
                assert_eq!(
                    *idles, stats.cycles,
                    "worker {k} emitted one idle event per completed cycle"
                );
            }
        }
    }

    // The creation barrier leaves churn garbage gray, so a short run may
    // end before the two-cycle laundering completes. Two more cycles on
    // the handed-back space must flush all of it.
    use i432_arch::{ShardedSpace, SharedSpace};
    let space = std::mem::replace(&mut sys.space, ShardedSpace::new(4096, 64, 16, 1));
    let shared = SharedSpace::new(space);
    gc.collect_on(&shared, 2);
    let final_stats = gc.snapshot();
    assert_eq!(final_stats.errors, Vec::<String>::new());
    assert!(
        final_stats.reclaimed >= 1,
        "churn garbage reclaimed by the parallel engine: {final_stats:?}"
    );
    let space = shared.into_inner();
    // Every survivor is white at a cycle boundary.
    i432_arch::SpaceMut::for_each_live(&space, &mut |_, e| {
        assert_eq!(e.desc.color, i432_arch::Color::White)
    });
    drop(space);
    i432_trace::reset();
    i432_trace::reset_counters();
}

/// The parallel collector must be invisible to conform workloads: the
/// end state under concurrent per-shard collection matches the GC-free
/// deterministic reference bit-for-bit, and the worker rings stay
/// protocol-clean.
#[test]
fn parallel_gc_is_invisible_on_conform_seeds() {
    let _guard = i432_trace::test_guard();
    for seed in [5u64, 23, 57] {
        let case = i432_conform::generate(seed);
        let reference = i432_conform::run_deterministic(&case);

        i432_trace::reset();
        i432_trace::set_context(0, 0);
        let (_sys, outcome, stats) = i432_conform::run_threaded_sys_pargc(&case, 4, 2, true);
        assert_eq!(
            outcome, reference,
            "seed {seed}: the parallel collector must be invisible to the \
             workload-visible end state"
        );
        assert_eq!(stats.errors, Vec::<String>::new(), "seed {seed}");

        let t = i432_trace::drain_timeline();
        if i432_trace::ENABLED {
            for k in 0..4u16 {
                let ring: Vec<TimelineEvent> = t
                    .events
                    .iter()
                    .filter(|e| e.cpu == GC_TRACE_CPU_BASE + k)
                    .copied()
                    .collect();
                check_i6_single_stream(&ring)
                    .unwrap_or_else(|e| panic!("seed {seed} worker {k}: {e}"));
            }
        }
    }
    i432_trace::reset();
}

/// Steal-heavy populations: all marking work is rooted in shard 0 (wide
/// fan-out hubs), so shards 1..N have nothing local and must steal or
/// spin. Soundness must be exact for every seed — garbage counts
/// reclaimed to the object, live graphs untouched — and the steal
/// statistics must agree with the trace counters.
#[test]
fn steal_heavy_seeds_mark_exactly() {
    use i432_arch::{ObjectRef, ObjectSpec, Rights, ShardedSpace, SharedSpace};

    let _guard = i432_trace::test_guard();
    i432_trace::reset();
    i432_trace::reset_counters();

    const SHARDS: u32 = 4;
    let mut total_steals = 0u64;
    for seed in [0x5eed1u64, 0x5eed2, 0x5eed3] {
        let mut lcg = seed;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut s = ShardedSpace::new(1 << 20, 1 << 14, 1 << 12, SHARDS);
        let root0 = s.root_sro();
        let cpu = s
            .create_object(
                root0,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
                    otype: i432_arch::ObjectType::System(i432_arch::SystemType::Processor),
                    level: None,
                    sys: i432_arch::SysState::Processor(i432_arch::ProcessorState::new(0)),
                },
            )
            .unwrap();
        // A chain of 8 hubs in shard 0, each fanning out to 30 children
        // on seed-chosen shards: worker 0's deque fills with dozens of
        // grays at a time while the other workers' root scans find
        // nothing — their marking work can only come from steals.
        let mut live = Vec::new();
        let mut prev_hub: Option<ObjectRef> = None;
        for _ in 0..8 {
            let hub = s.create_object(root0, ObjectSpec::generic(0, 32)).unwrap();
            for slot in 0..30 {
                let shard = (next() % u64::from(SHARDS)) as u32;
                let child = s
                    .create_object(s.root_sro_of(shard), ObjectSpec::generic(16, 0))
                    .unwrap();
                let ad = s.mint(child, Rights::ALL);
                s.store_ad_hw(hub, slot, Some(ad)).unwrap();
                live.push(child);
            }
            if let Some(p) = prev_hub {
                let ad = s.mint(p, Rights::ALL);
                s.store_ad_hw(hub, 31, Some(ad)).unwrap();
            }
            prev_hub = Some(hub);
            live.push(hub);
        }
        let hub_ad = s.mint(prev_hub.unwrap(), Rights::ALL);
        s.store_ad_hw(cpu, i432_arch::sysobj::CPU_SLOT_ROOT, Some(hub_ad))
            .unwrap();
        // Seeded garbage across all shards, never stored anywhere (so it
        // is white and dies in cycle 1).
        let mut garbage = Vec::new();
        for shard in 0..SHARDS {
            for _ in 0..(10 + next() % 20) {
                garbage.push(
                    s.create_object(s.root_sro_of(shard), ObjectSpec::generic(8, 0))
                        .unwrap(),
                );
            }
        }

        let before = i432_trace::snapshot();
        let shared = SharedSpace::new(s);
        let gc = ParallelGc::new(SHARDS, GcConfig::default());
        gc.collect_on(&shared, 2);
        let stats = gc.snapshot();
        let after = i432_trace::snapshot();
        assert_eq!(stats.errors, Vec::<String>::new(), "seed {seed:#x}");
        assert_eq!(
            stats.reclaimed,
            garbage.len() as u64,
            "seed {seed:#x}: exactly the white garbage reclaimed"
        );
        total_steals += stats.steals;
        if i432_trace::ENABLED {
            use i432_trace::Counter;
            assert_eq!(
                after.get(Counter::GcMarkSteals) - before.get(Counter::GcMarkSteals),
                stats.steals,
                "seed {seed:#x}: steal statistic matches its counter"
            );
            assert!(
                after.get(Counter::GcMarkEmptySteals) > before.get(Counter::GcMarkEmptySteals),
                "seed {seed:#x}: workers with empty shards recorded failed steal passes"
            );
        }
        let space = shared.into_inner();
        for o in &live {
            assert!(space.entry(*o).is_ok(), "seed {seed:#x}: live object lost");
        }
        for g in &garbage {
            assert!(space.entry(*g).is_err(), "seed {seed:#x}: garbage kept");
        }
    }
    // Steal *occurrence* is schedule-dependent; only insist on it when
    // the host can actually run workers simultaneously.
    if std::thread::available_parallelism().map_or(1, |n| n.get()) >= 2 {
        assert!(
            total_steals >= 1,
            "across three steal-heavy seeds, at least one steal happened"
        );
    }
    i432_trace::reset();
    i432_trace::reset_counters();
}
