//! Tricolor invariant I6 under the *threaded* runner with the collector
//! running as a daemon process (paper §8.1's "parallel garbage
//! collection on shared memory multiprocessors").
//!
//! I6 (see `collector.rs`): a white object at sweep time was unreachable
//! at mark termination, so reclaiming it while mutators keep running is
//! sound. The flight recorder lets us check this *as an event-ordering
//! property* of real concurrent executions rather than by construction:
//! an object the barrier shaded gray inside the current GC cycle must
//! never be reclaimed by that cycle's sweep (unless its table index was
//! recycled by a fresh allocation in between).
//!
//! On a single simulated processor every event is emitted by one host
//! thread, so the merged timeline *is* the real-time order and the full
//! I6 scan is sound. On multiple processors merged cycle order is not
//! real-time order, so the multi-cpu test checks the order-free
//! projection instead: phase-event counts against the collector's own
//! statistics.
//!
//! The suite runs in both feature configurations; without `--features
//! trace` the timeline checks are vacuous but the end-to-end oracle
//! assertions (GC daemon invisible to workload outcomes, garbage really
//! reclaimed) still bite.

use i432_arch::sysobj::CTX_SLOT_SRO;
use i432_gdp::isa::{AluOp, DataDst, DataRef, Instruction};
use i432_gdp::process::ProcessSpec;
use i432_gdp::ProgramBuilder;
use i432_sim::{run_threaded_with, System, SystemConfig};
use i432_trace::{EventKind, TimelineEvent};
use imax_gc::{install_gc_daemon, Collector};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Scans a merged single-processor timeline for I6 violations and GC
/// phase-protocol violations. Returns the number of reclaim events.
///
/// Sound against ring wraparound: drops discard the *oldest* records,
/// so if a shade survives in the buffer every later allocation of that
/// index survives too — a dropped prefix can hide a violation but never
/// fabricate one.
fn check_i6_single_stream(events: &[TimelineEvent]) -> Result<u64, String> {
    #[derive(PartialEq, Clone, Copy, Debug)]
    enum Phase {
        Idle,
        Mark,
        Sweep,
    }
    // Unknown until the first phase event (wraparound may cut the head).
    let mut phase: Option<Phase> = None;
    let mut last_mark: Option<usize> = None;
    let mut last_shade: HashMap<u32, usize> = HashMap::new();
    let mut last_alloc: HashMap<u32, usize> = HashMap::new();
    let mut last_reclaim: HashMap<u32, usize> = HashMap::new();
    let mut reclaims = 0u64;
    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::GcPhaseMark => {
                if phase == Some(Phase::Mark) || phase == Some(Phase::Sweep) {
                    return Err(format!("event {i}: mark began out of {phase:?}"));
                }
                phase = Some(Phase::Mark);
                last_mark = Some(i);
            }
            EventKind::GcPhaseSweep => {
                if phase.is_some() && phase != Some(Phase::Mark) {
                    return Err(format!("event {i}: sweep began out of {phase:?}"));
                }
                phase = Some(Phase::Sweep);
            }
            EventKind::GcPhaseIdle => {
                if phase.is_some() && phase != Some(Phase::Sweep) {
                    return Err(format!("event {i}: cycle ended out of {phase:?}"));
                }
                phase = Some(Phase::Idle);
            }
            EventKind::GcShadeGray => {
                last_shade.insert(e.obj, i);
            }
            EventKind::SroAlloc => {
                last_alloc.insert(e.obj, i);
            }
            EventKind::GcSweepReclaim => {
                reclaims += 1;
                if phase.is_some() && phase != Some(Phase::Sweep) {
                    return Err(format!(
                        "event {i}: object {} reclaimed during {phase:?}, not sweep",
                        e.obj
                    ));
                }
                // I6: shaded inside the current cycle (after its
                // mark-start) and not index-recycled since ⇒ the object
                // is gray or black at the sweep and must survive it.
                if let (Some(m), Some(&s)) = (last_mark, last_shade.get(&e.obj)) {
                    if s > m && last_alloc.get(&e.obj).is_none_or(|&a| a < s) {
                        return Err(format!(
                            "I6 violation: object {} shaded gray at event {s} \
                             (cycle {}) within the current GC cycle was reclaimed \
                             at event {i} (cycle {})",
                            e.obj, events[s].cycle, e.cycle
                        ));
                    }
                }
                // A reclaimed index is free; reclaiming it again without
                // an intervening allocation would be a double free.
                if let Some(&r) = last_reclaim.get(&e.obj) {
                    if last_alloc.get(&e.obj).is_none_or(|&a| a < r) {
                        return Err(format!(
                            "event {i}: object {} reclaimed twice (first at event {r}) \
                             with no intervening allocation",
                            e.obj
                        ));
                    }
                }
                last_reclaim.insert(e.obj, i);
            }
            _ => {}
        }
    }
    Ok(reclaims)
}

/// A mutator that makes garbage: each iteration allocates a 32-byte
/// object into context slot 6, dropping the previous iteration's object.
fn garbage_maker(iters: u64) -> Vec<Instruction> {
    let mut p = ProgramBuilder::new();
    let top = p.new_label();
    p.mov(DataRef::Imm(iters), DataDst::Local(0));
    p.bind(top);
    p.create_object(CTX_SLOT_SRO as u16, DataRef::Imm(32), DataRef::Imm(0), 6);
    p.alu(
        AluOp::Sub,
        DataRef::Local(0),
        DataRef::Imm(1),
        DataDst::Local(0),
    );
    p.jump_if_nonzero(DataRef::Local(0), top);
    p.halt();
    p.finish()
}

/// A system with the GC daemon time-slicing *at mutator priority* (so a
/// single processor round-robins daemon and mutators) plus `mutators`
/// churn processes.
fn churn_system(cpus: u32, mutators: usize, iters: u64) -> (System, Arc<Mutex<Collector>>) {
    let mut sys = System::new(&SystemConfig::small().with_processors(cpus));
    let collector = Arc::new(Mutex::new(Collector::new()));
    let daemon = install_gc_daemon(&mut sys, Arc::clone(&collector), 32, 128);
    if let Ok(ps) = sys.space.process_mut(daemon) {
        ps.timeslice = 4_000;
        ps.slice_remaining = 4_000;
    }
    let sub = sys.subprogram("garbage_maker", garbage_maker(iters), 64, 8);
    let dom = sys.install_domain("churn", vec![sub], 0);
    let dispatch = sys.dispatch_ad();
    for _ in 0..mutators {
        let mut spec = ProcessSpec::new(dispatch);
        // Short slices force frequent preemption: the collector's
        // increments genuinely interleave with allocation and barrier
        // activity instead of running between completed mutators.
        spec.timeslice = 2_000;
        sys.spawn_with(dom, 0, None, spec);
    }
    (sys, collector)
}

#[test]
fn i6_holds_under_single_cpu_threaded_churn() {
    let _guard = i432_trace::test_guard();
    i432_trace::reset();
    i432_trace::set_context(0, 0);

    let (sys, collector) = churn_system(1, 2, 200);
    // Unbounded: the total-step cap counts idle dispatch spins, so no
    // finite budget is schedule-independent; the mutators provably halt
    // and the runner stops when they do (the daemon is a service).
    let (sys, outcome) = run_threaded_with(sys, u64::MAX, true);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "churn workload failed: {outcome:?}"
    );
    drop(sys);
    let stats = collector.lock().stats;
    assert!(
        stats.reclaimed >= 1,
        "the daemon reclaimed churn garbage while mutators ran: {stats:?}"
    );

    let t = i432_trace::drain_timeline();
    if i432_trace::ENABLED {
        let reclaim_events = check_i6_single_stream(&t.events).unwrap_or_else(|e| panic!("{e}"));
        assert!(reclaim_events >= 1, "the timeline saw the reclaims");
        if t.dropped == 0 {
            assert_eq!(
                reclaim_events, stats.reclaimed,
                "every reclaim left exactly one trace event"
            );
        }
    }
    i432_trace::reset();
}

#[test]
fn i6_holds_on_conform_seeds_with_gc_daemon() {
    let _guard = i432_trace::test_guard();
    for seed in [5u64, 23, 57] {
        let case = i432_conform::generate(seed);
        let reference = i432_conform::run_deterministic(&case);

        i432_trace::reset();
        i432_trace::set_context(0, 0);
        let (_sys, outcome, collector) = i432_conform::run_threaded_sys_gc(&case, 4, 1, true, 16);
        assert_eq!(
            outcome, reference,
            "seed {seed}: a concurrent collector must be invisible to the \
             workload-visible end state"
        );
        let stats = collector.lock().stats;
        assert!(
            stats.mark_steps + stats.sweep_steps >= 1,
            "seed {seed}: the daemon really ran increments: {stats:?}"
        );

        let t = i432_trace::drain_timeline();
        if i432_trace::ENABLED {
            check_i6_single_stream(&t.events).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                !t.of_kind(EventKind::GcIncrement).is_empty(),
                "seed {seed}: daemon increments reached the timeline"
            );
        }
    }
    i432_trace::reset();
}

#[test]
fn sweep_cost_is_proportional_to_live_pages_not_index_range() {
    use i432_arch::{ObjectSpace, ObjectSpec};

    let _guard = i432_trace::test_guard();
    i432_trace::reset();
    i432_trace::reset_counters();

    // Fill ~4 leaf pages of the directory with unreachable zero-size
    // objects; the first cycle reclaims them all, leaving a table whose
    // index space is still ~4100 wide but nearly empty.
    const LEAF: u32 = i432_arch::object_table::LEAF_ENTRIES;
    let mut space = ObjectSpace::new(64 * 1024, 4096, 8 * LEAF);
    let root = space.root_sro();
    for _ in 0..(4 * LEAF + 8) {
        space
            .create_object(root, ObjectSpec::generic(0, 0))
            .unwrap();
    }
    assert_eq!(space.table.leaf_pages(), 5, "population spans five pages");

    let mut gc = Collector::new();
    let before = i432_trace::snapshot();
    gc.collect_full(&mut space).unwrap();
    let full_steps = gc.stats.sweep_steps;
    let mid = i432_trace::snapshot();
    gc.collect_full(&mut space).unwrap();
    let after = i432_trace::snapshot();
    let empty_steps = gc.stats.sweep_steps - full_steps;

    // The second sweep still faces an index space of ~4100 slots (the
    // directory never shrinks), but only page 0 holds anything live, so
    // the cursor must jump the four dead pages instead of probing
    // every chunk of every slot.
    let index_chunks =
        (i432_arch::SpaceMut::index_space_end(&space) / gc.config.sweep_chunk) as u64;
    let live_page_chunks = (LEAF / gc.config.sweep_chunk) as u64;
    assert!(
        empty_steps <= live_page_chunks + space.table.leaf_pages() as u64,
        "sweeping a nearly-empty table took {empty_steps} steps; \
         want O(live pages) = ~{live_page_chunks}, not O(index range) = {index_chunks}"
    );
    assert!(
        empty_steps * 2 < full_steps,
        "dead-page skipping must beat the full sweep: {empty_steps} vs {full_steps}"
    );

    if i432_trace::ENABLED {
        use i432_trace::Counter;
        let full_pages = mid.get(Counter::GcSweepPages) - before.get(Counter::GcSweepPages);
        let empty_pages = after.get(Counter::GcSweepPages) - mid.get(Counter::GcSweepPages);
        assert!(full_pages >= 5, "the first sweep touched every live page");
        assert!(
            empty_pages <= live_page_chunks + space.table.leaf_pages() as u64,
            "page probes after mass reclaim must be bounded by live pages: \
             {empty_pages} probes vs {index_chunks} index chunks"
        );
    }
    i432_trace::reset();
    i432_trace::reset_counters();
}

#[test]
fn gc_phase_counts_are_consistent_on_multiple_cpus() {
    let _guard = i432_trace::test_guard();
    i432_trace::reset();
    i432_trace::set_context(0, 0);

    let (sys, collector) = churn_system(4, 4, 120);
    // Unbounded: the total-step cap counts idle dispatch spins, so no
    // finite budget is schedule-independent; the mutators provably halt
    // and the runner stops when they do (the daemon is a service).
    let (sys, outcome) = run_threaded_with(sys, u64::MAX, true);
    assert!(
        outcome.completed && outcome.system_errors == 0,
        "churn workload failed: {outcome:?}"
    );
    drop(sys);
    let stats = collector.lock().stats;

    let t = i432_trace::drain_timeline();
    if i432_trace::ENABLED && t.dropped == 0 {
        // Merged cycle order across processors is not real-time order,
        // so check the order-free projection: the phase events form a
        // prefix of (mark sweep idle)*, and reclaims match the
        // collector's own accounting exactly.
        let marks = t.of_kind(EventKind::GcPhaseMark).len() as u64;
        let sweeps = t.of_kind(EventKind::GcPhaseSweep).len() as u64;
        let idles = t.of_kind(EventKind::GcPhaseIdle).len() as u64;
        assert!(
            (sweeps == idles || sweeps == idles + 1) && (marks == sweeps || marks == sweeps + 1),
            "phase events are a prefix of (mark sweep idle)*: \
             {marks} marks / {sweeps} sweeps / {idles} idles"
        );
        assert_eq!(idles, stats.cycles, "one idle event per completed cycle");
        assert_eq!(
            t.of_kind(EventKind::GcSweepReclaim).len() as u64,
            stats.reclaimed,
            "one reclaim event per reclaimed object"
        );
        assert_eq!(
            t.of_kind(EventKind::GcIncrement).len() as u64,
            stats.mark_steps + stats.sweep_steps + marks,
            "one increment event per collector step (an idle-phase step \
             restarts the cycle, emitting the mark event)"
        );
    }
    i432_trace::reset();
}
