//! Seeded schedule explorer for the retire-vs-mark race: a retirer
//! thread clears terminated processes' root-directory anchors *while*
//! the parallel per-shard collector is marking and sweeping the same
//! space.
//!
//! The safety claims under test (documented on
//! `System::retire_terminated_shared`):
//!
//! * retiring mid-mark never reclaims an in-flight object — a process
//!   whose anchor vanishes after it was shaded is collected by a
//!   *later* cycle, not torn out from under the marker;
//! * no double destruction — every process entry is reclaimed exactly
//!   once (a double sweep would surface as a collector error and, with
//!   the recorder on, as a duplicated reclaim event);
//! * no leak — once every wave member is retired, two further cycles
//!   (launder + reclaim) empty the wave completely;
//! * tracking reconciliation after the run drops the dangling refs
//!   (the `retire_terminated` retain fix) and leaves the system clean.
//!
//! Each seed jitters the retirer's pacing differently, exploring
//! anchor-clears landing before, during, and after root scans, mark
//! drains, verification passes, and sweeps.

use i432_arch::{ShardedSpace, SharedSpace, SpaceAccess};
use i432_gdp::ProgramBuilder;
use i432_sim::{System, SystemConfig};
use imax_gc::{GcConfig, ParallelGc, GC_TRACE_CPU_BASE};

const WAVE: usize = 12;
const SHARDS: u32 = 4;

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    }
}

/// A system whose whole process wave has terminated but is still
/// anchored — the state `retire_terminated_shared` exists to unwind.
fn terminated_wave() -> System {
    let mut sys = System::new(&SystemConfig::small().with_shards(SHARDS));
    let mut p = ProgramBuilder::new();
    p.halt();
    let sub = sys.subprogram("noop", p.finish(), 32, 8);
    let dom = sys.install_domain("wave", vec![sub], 0);
    for _ in 0..WAVE {
        sys.spawn(dom, 0, None);
    }
    sys.run_to_completion(10_000_000);
    for p in sys.processes() {
        assert_eq!(
            sys.status_of(*p),
            Some(i432_arch::ProcessStatus::Terminated)
        );
    }
    sys
}

#[test]
fn concurrent_retirement_explorer_is_safe_under_every_seed() {
    let _guard = i432_trace::test_guard();
    for seed in 0..6u64 {
        // Full reset: `drain_timeline` only snapshots the rings, so the
        // previous seed's reclaim events must be cleared here or they
        // double-count in this seed's uniqueness check.
        i432_trace::reset();
        let mut sys = terminated_wave();
        let root_dir = sys.root_dir();
        let procs = sys.processes().to_vec();
        let space = std::mem::replace(&mut sys.space, ShardedSpace::new(4096, 64, 16, 1));
        let shared = SharedSpace::new(space);
        let gc = ParallelGc::new(SHARDS, GcConfig::default());

        std::thread::scope(|scope| {
            scope.spawn(|| gc.collect_on(&shared, 6));
            let mut next = lcg(seed);
            let mut retired = 0usize;
            while retired < WAVE {
                // Limit 1 staggers the wave: each anchor-clear lands at
                // a different point of the collector's schedule.
                retired += System::retire_terminated_shared(&shared, root_dir, 1).len();
                std::thread::sleep(std::time::Duration::from_micros(next() % 200));
            }
            // Idempotence: the wave is gone from the directory, so a
            // second sweep of it retires nothing.
            assert!(System::retire_terminated_shared(&shared, root_dir, u32::MAX).is_empty());
        });

        // The concurrent window is over; whatever was retired too late
        // to be collected in it needs at most launder + reclaim.
        gc.collect_on(&shared, 2);

        let stats = gc.snapshot();
        assert_eq!(stats.errors, Vec::<String>::new(), "seed {seed}");
        {
            let mut agent = shared.agent();
            for p in &procs {
                assert!(
                    agent.color_of(*p).is_err(),
                    "seed {seed}: retired process leaked past the final cycles"
                );
            }
        }

        // With the recorder on: every reclaim is unique per (index,
        // cycle-free) stream — a double destroy would duplicate an
        // index with no allocation in between (the collector allocates
        // nothing), and the reclaim count must match the stats.
        let t = i432_trace::drain_timeline();
        if i432_trace::ENABLED && t.dropped == 0 {
            let reclaims: Vec<_> = t
                .of_kind(i432_trace::EventKind::GcSweepReclaim)
                .into_iter()
                .filter(|e| e.cpu >= GC_TRACE_CPU_BASE)
                .collect();
            assert_eq!(reclaims.len() as u64, stats.reclaimed, "seed {seed}");
            let mut seen = std::collections::HashSet::new();
            for e in &reclaims {
                assert!(
                    seen.insert(e.obj),
                    "seed {seed}: object index {} reclaimed twice",
                    e.obj
                );
            }
        }

        // Reconciliation: all twelve tracked refs now dangle (their
        // objects were reclaimed mid-run); the retain must count and
        // drop every one of them.
        sys.space = shared.into_inner();
        assert_eq!(sys.retire_terminated(), WAVE as u32, "seed {seed}");
        assert!(
            sys.processes().is_empty(),
            "seed {seed}: dangling process refs survived reconciliation"
        );
    }
    i432_trace::reset();
}
