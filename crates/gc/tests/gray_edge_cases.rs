//! System-level edge cases of the parallel per-shard collector: table
//! exhaustion racing the mark phase, and the two-cycle wave-retirement
//! behavior (the C11 shard-0 regression) reproduced through the real
//! process machinery.
//!
//! The gray-deque *data-structure* edge cases (steal-vs-push races,
//! empty-steal termination) live next to the deque in
//! `crates/gc/src/gray.rs`.

use i432_arch::{
    ArchError, ObjectSpec, ShardedSpace, SharedSpace, SpaceAccess, SpaceMut, SysState,
};
use i432_gdp::ProgramBuilder;
use i432_sim::{System, SystemConfig};
use imax_gc::{GcConfig, ParallelGc};

/// A 2-shard space whose object table is filled to the ceiling: a small
/// anchored live chain, the rest unreferenced (white) garbage.
fn exhausted_space() -> (ShardedSpace, u64) {
    // The ceiling is striped across shards, so shard 0 (where everything
    // below allocates) gets a quota of 128 entries.
    const LIMIT: u32 = 256;
    let mut s = ShardedSpace::new(1 << 18, 4096, LIMIT, 2);
    let root = s.root_sro();
    let cpu = s
        .create_object(
            root,
            ObjectSpec {
                data_len: 0,
                access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
                otype: i432_arch::ObjectType::System(i432_arch::SystemType::Processor),
                level: None,
                sys: SysState::Processor(i432_arch::ProcessorState::new(0)),
            },
        )
        .unwrap();
    let mut prev = None;
    for _ in 0..8 {
        let o = s.create_object(root, ObjectSpec::generic(16, 2)).unwrap();
        if let Some(p) = prev {
            let ad = s.mint(p, i432_arch::Rights::ALL);
            s.store_ad_hw(o, 0, Some(ad)).unwrap();
        }
        prev = Some(o);
    }
    let head = s.mint(prev.unwrap(), i432_arch::Rights::ALL);
    s.store_ad_hw(cpu, i432_arch::sysobj::CPU_SLOT_ROOT, Some(head))
        .unwrap();
    // Fill the rest of the table with garbage until it refuses.
    let mut garbage = 0u64;
    loop {
        match s.create_object(root, ObjectSpec::generic(8, 0)) {
            Ok(_) => garbage += 1,
            Err(ArchError::TableExhausted) => break,
            Err(e) => panic!("unexpected fault while filling the table: {e:?}"),
        }
    }
    (s, garbage)
}

/// `TableExhausted` mid-mark: an allocator hammers a full table while
/// the parallel collector marks and sweeps it. The faults must stay
/// ordinary recoverable faults (no collector error, no wedged space),
/// and allocation must succeed again once a sweep has freed entries.
#[test]
fn table_exhausted_mid_mark_recovers_after_sweep() {
    let (s, garbage) = exhausted_space();
    assert!(
        garbage > 50,
        "the table really was full ({garbage} garbage)"
    );
    let shared = SharedSpace::new(s);

    // Deterministic precondition: the table is exhausted before any
    // collection has run.
    {
        let mut agent = shared.agent();
        let root = agent.root_sro();
        assert!(matches!(
            agent.create_object(root, ObjectSpec::generic(8, 0)),
            Err(ArchError::TableExhausted)
        ));
    }

    let gc = ParallelGc::new(2, GcConfig::default());
    let mut exhausted_seen = 0u64;
    let mut succeeded = 0u64;
    std::thread::scope(|scope| {
        scope.spawn(|| gc.collect_on(&shared, 2));
        // The allocator races the mark phase: early attempts fault on
        // the full table, later ones land in entries the sweep freed.
        // The yield keeps the collector threads runnable on one-core
        // hosts; once its first sweep has freed the white prefill, the
        // very next attempt lands.
        let mut agent = shared.agent();
        let root = agent.root_sro();
        for _ in 0..2_000_000 {
            match agent.create_object(root, ObjectSpec::generic(8, 0)) {
                Ok(_) => {
                    succeeded += 1;
                    break;
                }
                Err(ArchError::TableExhausted) => exhausted_seen += 1,
                Err(e) => panic!("unexpected allocator fault: {e:?}"),
            }
            std::thread::yield_now();
        }
    });

    let stats = gc.snapshot();
    assert_eq!(stats.errors, Vec::<String>::new());
    assert!(
        stats.reclaimed >= garbage,
        "the white garbage was reclaimed: {stats:?}"
    );
    assert!(
        succeeded >= 1,
        "allocation recovered after the sweep ({exhausted_seen} faults seen)"
    );
    // The live chain survived the churn.
    let space = shared.into_inner();
    let mut processors = 0;
    space.for_each_live(&mut |_, e| {
        if matches!(
            e.desc.otype,
            i432_arch::ObjectType::System(i432_arch::SystemType::Processor)
        ) {
            processors += 1;
        }
    });
    assert_eq!(processors, 1);
}

/// The C11-discovered wave behavior at system level: a wave of
/// processes runs to termination and is retired (anchors cleared). All
/// of its objects were shaded gray by ordinary stores during the run,
/// so the parallel collector must launder them in cycle 1 and reclaim
/// the whole wave in cycle 2 — never cycle 1, never cycle 3.
#[test]
fn wave_retirement_needs_exactly_two_cycles() {
    const SHARDS: u32 = 4;
    let mut sys = System::new(&SystemConfig::small().with_shards(SHARDS));
    let mut p = ProgramBuilder::new();
    p.halt();
    let sub = sys.subprogram("noop", p.finish(), 32, 8);
    let dom = sys.install_domain("wave", vec![sub], 0);
    let procs: Vec<_> = (0..12).map(|_| sys.spawn(dom, 0, None)).collect();
    sys.run_to_completion(10_000_000);
    for p in &procs {
        assert_eq!(
            sys.status_of(*p),
            Some(i432_arch::ProcessStatus::Terminated)
        );
    }
    assert_eq!(sys.retire_terminated(), 12);

    let space = std::mem::replace(&mut sys.space, ShardedSpace::new(4096, 64, 16, 1));
    let shared = SharedSpace::new(space);
    let gc = ParallelGc::new(SHARDS, GcConfig::default());

    gc.collect_on(&shared, 1);
    {
        let mut agent = shared.agent();
        for p in &procs {
            assert!(
                agent.color_of(*p).is_ok(),
                "cycle 1 must launder the gray wave, not reclaim it"
            );
        }
    }
    gc.collect_on(&shared, 1);
    {
        let mut agent = shared.agent();
        for p in &procs {
            assert!(
                agent.color_of(*p).is_err(),
                "cycle 2 must reclaim the retired wave"
            );
        }
    }
    let stats = gc.snapshot();
    assert_eq!(stats.errors, Vec::<String>::new());
    assert!(
        stats.reclaimed >= 12,
        "the wave (and its context chains) was reclaimed: {stats:?}"
    );
    sys.space = shared.into_inner();
    // Tracking reconciliation drops nothing new (retirement already ran)
    // and leaves no dangling refs behind.
    assert_eq!(sys.retire_terminated(), 0);
    assert!(sys.processes().is_empty());
}
