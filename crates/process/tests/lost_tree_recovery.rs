//! Lost process trees come back through the destruction filter while
//! the parallel collector runs (paper §8.2 + §9: "release 1 uses
//! destruction filters only to recover lost process objects").
//!
//! The shape under test: a client builds a three-process tree through
//! the basic process manager and then loses every descriptor to it.
//! The per-shard collector, running on its own threads, must *deliver*
//! the process objects to the manager's filter port instead of
//! reclaiming them; the manager drains the port concurrently,
//! re-anchors the recovered tree, walks its intact child links, and
//! disassembles it properly with `reap` — after which ordinary
//! collection reclaims the leftovers (contexts) and nothing is ever
//! notified twice.

use i432_arch::{
    CodeBody, CodeRef, DomainState, ObjectSpec, ObjectType, PortDiscipline, PortState,
    ProcessStatus, Rights, ShardedSpace, SharedSpace, SpaceAccessExt, SpaceMut, Subprogram,
    SysState, SystemType,
};
use i432_gdp::process::ProcessSpec;
use imax_gc::{drain_filter_port, GcConfig, ParallelGc};
use imax_ipc::create_port;
use imax_process::BasicProcessManager;

const SHARDS: u32 = 2;

#[test]
fn lost_tree_is_recovered_and_reaped_under_parallel_gc() {
    let mut s = ShardedSpace::new(128 * 1024, 8 * 1024, 2048, SHARDS);
    let root = s.root_sro();
    s.create_object(
        root,
        ObjectSpec {
            data_len: 0,
            access_len: i432_arch::sysobj::CPU_ACCESS_SLOTS,
            otype: ObjectType::System(SystemType::Processor),
            level: None,
            sys: SysState::Processor(i432_arch::ProcessorState::new(0)),
        },
    )
    .unwrap();
    let dispatch_obj = s
        .create_object(
            root,
            ObjectSpec {
                data_len: 0,
                access_len: PortState::access_slots(64, 16),
                otype: ObjectType::System(SystemType::Port),
                level: None,
                sys: SysState::Port(PortState::new(64, 16, PortDiscipline::Fifo)),
            },
        )
        .unwrap();
    let dispatch = s.mint(dispatch_obj, Rights::NONE);
    let dom_obj = s
        .create_object(
            root,
            ObjectSpec {
                data_len: 0,
                access_len: 2,
                otype: ObjectType::System(SystemType::Domain),
                level: None,
                sys: SysState::Domain(DomainState {
                    name: "d".into(),
                    subprograms: vec![Subprogram {
                        name: "main".into(),
                        body: CodeBody::Interpreted(CodeRef(0)),
                        ctx_data_len: 32,
                        ctx_access_len: 8,
                    }],
                }),
            },
        )
        .unwrap();
    let domain = s.mint(dom_obj, Rights::CALL);
    let fport = create_port(&mut s, root, 8, PortDiscipline::Fifo).unwrap();
    // The manager's holding pen for recovered objects: re-anchoring a
    // drained descriptor here (in the same atomic section as the drain)
    // is what keeps a recovered object alive past the next cycle.
    let nursery = s.create_object(root, ObjectSpec::generic(0, 16)).unwrap();

    let mut mgr = BasicProcessManager::new();
    let spec = || ProcessSpec::new(dispatch);
    let parent = mgr
        .create_process(&mut s, root, domain, 0, None, spec(), None)
        .unwrap();
    let c1 = mgr
        .create_process(&mut s, root, domain, 0, None, spec(), Some(parent))
        .unwrap();
    let c2 = mgr
        .create_process(&mut s, root, domain, 0, None, spec(), Some(parent))
        .unwrap();
    // ... and the client loses the whole tree: nothing anchors it.

    let config = GcConfig {
        extra_roots: vec![dispatch_obj, dom_obj, fport.object(), nursery],
        process_filter_port: Some(fport.ad()),
        ..GcConfig::default()
    };
    let gc = ParallelGc::new(SHARDS, config);

    let shared = SharedSpace::new(s);
    let mut recovered = Vec::new();
    std::thread::scope(|scope| {
        scope.spawn(|| gc.collect_on(&shared, 6));
        // The type manager's side, concurrent with the collector:
        // drain the filter port and immediately re-anchor whatever
        // arrived, atomically, so a recovered object can never be
        // unreferenced again between cycles.
        while recovered.len() < 3 {
            let batch = shared
                .agent()
                .atomically(|sm| -> Result<_, i432_gdp::Fault> {
                    let ads = drain_filter_port(sm, fport.ad())?;
                    for ad in &ads {
                        let slot = (0..16)
                            .find(|i| sm.load_ad_hw(nursery, *i).unwrap().is_none())
                            .expect("nursery has room");
                        sm.store_ad_hw(nursery, slot, Some(*ad))
                            .map_err(i432_gdp::Fault::from)?;
                    }
                    Ok(ads)
                })
                .unwrap();
            recovered.extend(batch);
            std::thread::yield_now();
        }
    });

    let stats = gc.snapshot();
    assert_eq!(stats.errors, Vec::<String>::new());
    assert_eq!(
        stats.finalized, 3,
        "each lost process delivered exactly once"
    );
    let got: std::collections::HashSet<_> = recovered.iter().map(|ad| ad.obj).collect();
    assert_eq!(got, [parent, c1, c2].into_iter().collect());
    for ad in &recovered {
        assert_eq!(
            ad.rights,
            Rights::ALL,
            "the collector manufactures a full-rights descriptor"
        );
    }

    // The recovered tree's links are intact: the manager can still walk
    // it and disassemble it properly.
    let mut agent = shared.agent();
    agent.atomically(|sm| {
        assert_eq!(mgr.children(sm, parent).unwrap(), vec![c1, c2]);
        for p in [c1, c2, parent] {
            sm.process_mut(p).unwrap().status = ProcessStatus::Terminated;
        }
        // Un-pen them first so the nursery holds no stale descriptors.
        for slot in 0..16 {
            sm.store_ad_hw(nursery, slot, None).unwrap();
        }
        for p in [c1, c2, parent] {
            mgr.reap(sm, p).unwrap();
        }
    });
    drop(agent);
    assert_eq!(mgr.stats.reaped, 3);

    // The reaped processes' contexts are garbage now; ordinary
    // collection takes them, and nothing is re-delivered.
    gc.collect_on(&shared, 2);
    let stats = gc.snapshot();
    assert_eq!(stats.errors, Vec::<String>::new());
    assert_eq!(stats.finalized, 3, "no second notification");
    assert!(
        stats.reclaimed >= 3,
        "the orphaned contexts were reclaimed: {stats:?}"
    );
    let space = shared.into_inner();
    let mut live_procs = 0;
    space.for_each_live(&mut |_, e| {
        if matches!(e.desc.otype, ObjectType::System(SystemType::Process)) {
            live_procs += 1;
        }
    });
    assert_eq!(live_procs, 0, "the tree is fully disassembled");
}
