//! The basic process manager.
//!
//! Paper §6.1: "It supports nested stopping and starting of processes.
//! Each process has a count of the number of stops or starts outstanding
//! against it which determines if it is currently runnable. Since starts
//! and stops apply to entire trees, a user wishing to control a
//! computation need not be aware of the internal structure of that
//! process, i.e., whether it is implemented in terms of other processes."
//!
//! The manager holds **no table of processes** (paper §7.1): every
//! operation takes the caller's access descriptor for the process it
//! concerns; the tree is walked through the child links stored *in the
//! process objects themselves*.

use i432_arch::{
    sysobj::{PROC_CHILD_BASE, PROC_CHILD_SLOTS, PROC_SLOT_PARENT},
    AccessDescriptor, ObjectRef, ProcessStatus, Rights, SpaceMut,
};
use i432_gdp::{
    port,
    process::{make_process, ProcessSpec},
    Fault, FaultKind,
};

/// Counters the manager maintains (about its own activity — not about
/// the processes, which it does not track).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ManagerStats {
    /// Processes created.
    pub created: u64,
    /// Stop requests processed (tree-wide).
    pub stops: u64,
    /// Start requests processed (tree-wide).
    pub starts: u64,
    /// Terminated processes reaped.
    pub reaped: u64,
}

/// The basic process manager package.
#[derive(Debug, Default)]
pub struct BasicProcessManager {
    /// Activity counters.
    pub stats: ManagerStats,
}

impl BasicProcessManager {
    /// A fresh manager.
    pub fn new() -> BasicProcessManager {
        BasicProcessManager::default()
    }

    /// Creates a process, optionally as a child of `parent` (the Ada task
    /// model: a task cannot outlive its parent's scope).
    #[allow(clippy::too_many_arguments)] // Mirrors the service's record.
    pub fn create_process<S: SpaceMut + ?Sized>(
        &mut self,
        space: &mut S,
        sro: ObjectRef,
        domain: AccessDescriptor,
        subprogram: u32,
        arg: Option<AccessDescriptor>,
        spec: ProcessSpec,
        parent: Option<ObjectRef>,
    ) -> Result<ObjectRef, Fault> {
        let p = make_process(space, sro, domain, subprogram, arg, spec)?;
        if let Some(parent) = parent {
            self.link_child(space, parent, p)?;
        }
        self.stats.created += 1;
        Ok(p)
    }

    /// Enters a process into the dispatching mix.
    pub fn ready<S: SpaceMut + ?Sized>(
        &mut self,
        space: &mut S,
        p: ObjectRef,
    ) -> Result<(), Fault> {
        port::make_ready(space, p)
    }

    fn link_child<S: SpaceMut + ?Sized>(
        &mut self,
        space: &mut S,
        parent: ObjectRef,
        child: ObjectRef,
    ) -> Result<(), Fault> {
        let parent_ad = space.mint(parent, Rights::NONE);
        space
            .store_ad_hw(child, PROC_SLOT_PARENT, Some(parent_ad))
            .map_err(Fault::from)?;
        for i in 0..PROC_CHILD_SLOTS {
            let slot = PROC_CHILD_BASE + i;
            if space
                .load_ad_hw(parent, slot)
                .map_err(Fault::from)?
                .is_none()
            {
                let child_ad = space.mint(child, Rights::CONTROL);
                space
                    .store_ad_hw(parent, slot, Some(child_ad))
                    .map_err(Fault::from)?;
                return Ok(());
            }
        }
        Err(Fault::with_detail(
            FaultKind::QueueOverflow,
            "parent's child list is full",
        ))
    }

    /// Children of a process, via the links in its own object.
    pub fn children<S: SpaceMut + ?Sized>(
        &self,
        space: &mut S,
        p: ObjectRef,
    ) -> Result<Vec<ObjectRef>, Fault> {
        let mut out = Vec::new();
        for i in 0..PROC_CHILD_SLOTS {
            if let Some(ad) = space
                .load_ad_hw(p, PROC_CHILD_BASE + i)
                .map_err(Fault::from)?
            {
                out.push(ad.obj);
            }
        }
        Ok(out)
    }

    fn tree_of<S: SpaceMut + ?Sized>(
        &self,
        space: &mut S,
        root: ObjectRef,
    ) -> Result<Vec<ObjectRef>, Fault> {
        let mut all = vec![root];
        let mut i = 0;
        while i < all.len() {
            let kids = self.children(space, all[i])?;
            all.extend(kids);
            i += 1;
        }
        Ok(all)
    }

    /// Stops a process tree: every member's outstanding stop count is
    /// incremented. Members leave the dispatching mix at their next
    /// scheduling event.
    pub fn stop<S: SpaceMut + ?Sized>(
        &mut self,
        space: &mut S,
        root: ObjectRef,
    ) -> Result<u32, Fault> {
        let tree = self.tree_of(space, root)?;
        for &p in &tree {
            space.process_mut(p).map_err(Fault::from)?.stop_count += 1;
        }
        self.stats.stops += 1;
        Ok(tree.len() as u32)
    }

    /// Starts a process tree: every member's count is decremented; any
    /// member that becomes runnable and was parked re-enters the
    /// dispatching mix.
    pub fn start<S: SpaceMut + ?Sized>(
        &mut self,
        space: &mut S,
        root: ObjectRef,
    ) -> Result<u32, Fault> {
        let tree = self.tree_of(space, root)?;
        for &p in &tree {
            let became_runnable = {
                let ps = space.process_mut(p).map_err(Fault::from)?;
                ps.stop_count = ps.stop_count.saturating_sub(1);
                ps.stop_count == 0
            };
            let parked = space.process(p).map_err(Fault::from)?.status == ProcessStatus::Stopped;
            if became_runnable && parked {
                port::make_ready(space, p)?;
            }
        }
        self.stats.starts += 1;
        Ok(tree.len() as u32)
    }

    /// Outstanding stop count of one process.
    pub fn stop_count<S: SpaceMut + ?Sized>(&self, space: &S, p: ObjectRef) -> Result<u32, Fault> {
        Ok(space.process(p).map_err(Fault::from)?.stop_count)
    }

    /// Reaps a terminated process: unlinks it from its parent and
    /// destroys its object. Fails unless the process has terminated.
    pub fn reap<S: SpaceMut + ?Sized>(&mut self, space: &mut S, p: ObjectRef) -> Result<(), Fault> {
        let status = space.process(p).map_err(Fault::from)?.status;
        if status != ProcessStatus::Terminated {
            return Err(Fault::with_detail(
                FaultKind::TypeMismatch,
                "cannot reap a live process",
            ));
        }
        // Unlink from parent, if any.
        if let Some(parent) = space.load_ad_hw(p, PROC_SLOT_PARENT).map_err(Fault::from)? {
            for i in 0..PROC_CHILD_SLOTS {
                let slot = PROC_CHILD_BASE + i;
                if let Some(ad) = space.load_ad_hw(parent.obj, slot).map_err(Fault::from)? {
                    if ad.obj == p {
                        space
                            .store_ad_hw(parent.obj, slot, None)
                            .map_err(Fault::from)?;
                    }
                }
            }
        }
        space.destroy_object(p).map_err(Fault::from)?;
        self.stats.reaped += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::ObjectSpace;
    use i432_arch::{
        CodeBody, CodeRef, DomainState, ObjectSpec, ObjectType, PortDiscipline, PortState,
        Subprogram, SysState, SystemType,
    };

    struct Fixture {
        space: ObjectSpace,
        mgr: BasicProcessManager,
        dispatch: AccessDescriptor,
        domain: AccessDescriptor,
    }

    fn fixture() -> Fixture {
        let mut space = ObjectSpace::new(128 * 1024, 8 * 1024, 2048);
        let root = space.root_sro();
        let port = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: PortState::access_slots(64, 16),
                    otype: ObjectType::System(SystemType::Port),
                    level: None,
                    sys: SysState::Port(PortState::new(64, 16, PortDiscipline::Fifo)),
                },
            )
            .unwrap();
        let dispatch = space.mint(port, Rights::NONE);
        let dom = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: 2,
                    otype: ObjectType::System(SystemType::Domain),
                    level: None,
                    sys: SysState::Domain(DomainState {
                        name: "d".into(),
                        subprograms: vec![Subprogram {
                            name: "main".into(),
                            body: CodeBody::Interpreted(CodeRef(0)),
                            ctx_data_len: 32,
                            ctx_access_len: 8,
                        }],
                    }),
                },
            )
            .unwrap();
        let domain = space.mint(dom, Rights::CALL);
        Fixture {
            space,
            mgr: BasicProcessManager::new(),
            dispatch,
            domain,
        }
    }

    impl Fixture {
        fn proc_with_parent(&mut self, parent: Option<ObjectRef>) -> ObjectRef {
            let root = self.space.root_sro();
            self.mgr
                .create_process(
                    &mut self.space,
                    root,
                    self.domain,
                    0,
                    None,
                    ProcessSpec::new(self.dispatch),
                    parent,
                )
                .unwrap()
        }
    }

    #[test]
    fn tree_links_are_in_the_objects() {
        let mut f = fixture();
        let parent = f.proc_with_parent(None);
        let c1 = f.proc_with_parent(Some(parent));
        let c2 = f.proc_with_parent(Some(parent));
        let grandchild = f.proc_with_parent(Some(c1));
        let kids = f.mgr.children(&mut f.space, parent).unwrap();
        assert_eq!(kids, vec![c1, c2]);
        assert_eq!(f.mgr.children(&mut f.space, c1).unwrap(), vec![grandchild]);
    }

    #[test]
    fn stop_and_start_apply_to_whole_tree() {
        let mut f = fixture();
        let parent = f.proc_with_parent(None);
        let child = f.proc_with_parent(Some(parent));
        let grandchild = f.proc_with_parent(Some(child));

        let n = f.mgr.stop(&mut f.space, parent).unwrap();
        assert_eq!(n, 3);
        for p in [parent, child, grandchild] {
            assert_eq!(f.mgr.stop_count(&f.space, p).unwrap(), 1);
            assert!(!f.space.process(p).unwrap().is_started());
        }
        f.mgr.start(&mut f.space, parent).unwrap();
        for p in [parent, child, grandchild] {
            assert!(f.space.process(p).unwrap().is_started());
        }
    }

    #[test]
    fn nested_stops_require_matching_starts() {
        let mut f = fixture();
        let p = f.proc_with_parent(None);
        f.mgr.stop(&mut f.space, p).unwrap();
        f.mgr.stop(&mut f.space, p).unwrap();
        f.mgr.start(&mut f.space, p).unwrap();
        assert!(
            !f.space.process(p).unwrap().is_started(),
            "one start cannot undo two stops"
        );
        f.mgr.start(&mut f.space, p).unwrap();
        assert!(f.space.process(p).unwrap().is_started());
    }

    #[test]
    fn stopping_a_subtree_leaves_the_parent_running() {
        let mut f = fixture();
        let parent = f.proc_with_parent(None);
        let child = f.proc_with_parent(Some(parent));
        f.mgr.stop(&mut f.space, child).unwrap();
        assert!(f.space.process(parent).unwrap().is_started());
        assert!(!f.space.process(child).unwrap().is_started());
    }

    #[test]
    fn start_reenters_parked_processes() {
        let mut f = fixture();
        let p = f.proc_with_parent(None);
        f.mgr.stop(&mut f.space, p).unwrap();
        // Simulate the dispatcher having parked it.
        f.space.process_mut(p).unwrap().status = ProcessStatus::Stopped;
        f.mgr.start(&mut f.space, p).unwrap();
        assert_eq!(f.space.process(p).unwrap().status, ProcessStatus::Ready);
        // It is back in the dispatch queue.
        let port_state = f.space.port(f.dispatch.obj).unwrap();
        assert_eq!(port_state.msg_count, 1);
    }

    #[test]
    fn reap_requires_termination_and_unlinks() {
        let mut f = fixture();
        let parent = f.proc_with_parent(None);
        let child = f.proc_with_parent(Some(parent));
        assert!(f.mgr.reap(&mut f.space, child).is_err());
        f.space.process_mut(child).unwrap().status = ProcessStatus::Terminated;
        // Tear down the child's context first (normally done by exit).
        let ctx = f
            .space
            .load_ad_hw(child, i432_arch::sysobj::PROC_SLOT_CONTEXT)
            .unwrap();
        if let Some(ctx) = ctx {
            f.space
                .store_ad_hw(child, i432_arch::sysobj::PROC_SLOT_CONTEXT, None)
                .unwrap();
            f.space.destroy_object(ctx.obj).unwrap();
        }
        f.mgr.reap(&mut f.space, child).unwrap();
        assert!(f.mgr.children(&mut f.space, parent).unwrap().is_empty());
        assert_eq!(f.mgr.stats.reaped, 1);
    }

    #[test]
    fn manager_holds_no_table() {
        // Structural check (paper §7.1): the manager type carries only
        // counters — no collection of process references.
        assert_eq!(
            std::mem::size_of::<BasicProcessManager>(),
            std::mem::size_of::<ManagerStats>()
        );
    }
}
