//! A fair-share resource controller.
//!
//! Paper §6.1: the far end of the policy spectrum — "an arbitrarily
//! complex resource controller" for environments "where the processing
//! resource must be allocated fairly". The controller observes each
//! managed process's consumed cycles and continually re-derives its
//! hardware dispatching priority so that weighted usage converges to the
//! configured shares. It relies on a *priority-discipline* dispatching
//! port; the hardware then does the actual arbitration — software only
//! steers parameters, exactly the layering the paper prescribes.
//!
//! The controller holds accesses for the processes it manages. This does
//! not violate the no-central-table tenet (§7.1): it is those processes'
//! *manager*, and it tracks only its own clients, not "all the processes
//! in the system".

use i432_arch::{ObjectRef, SpaceMut};
use i432_gdp::Fault;

/// One managed process's share configuration and bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Client {
    process: ObjectRef,
    weight: u64,
    last_cycles: u64,
    usage: f64,
}

/// The fair-share controller.
#[derive(Debug)]
pub struct FairShareScheduler {
    clients: Vec<Client>,
    /// Exponential-decay factor applied to accumulated usage each
    /// rebalance (0 < decay < 1; smaller forgets faster).
    pub decay: f64,
}

impl FairShareScheduler {
    /// A controller with the default usage half-life.
    pub fn new() -> FairShareScheduler {
        FairShareScheduler {
            clients: Vec::new(),
            decay: 0.7,
        }
    }

    /// Adopts a process with a share weight (2 = entitled to twice the
    /// share of weight 1). Re-adopting replaces the previous entry.
    pub fn adopt(&mut self, process: ObjectRef, weight: u64) {
        self.clients.retain(|c| c.process != process);
        self.clients.push(Client {
            process,
            weight: weight.max(1),
            last_cycles: 0,
            usage: 0.0,
        });
    }

    /// Number of managed processes.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Rebalances: reads consumption since the last pass, updates decayed
    /// weighted usage, and writes back hardware priorities (lower value =
    /// more urgent = less over-consumed).
    pub fn rebalance<S: SpaceMut + ?Sized>(&mut self, space: &mut S) -> Result<(), Fault> {
        // Gather deltas.
        for c in &mut self.clients {
            let total = match space.process(c.process) {
                Ok(ps) => ps.total_cycles,
                Err(_) => continue, // reaped; dropped below
            };
            let delta = total.saturating_sub(c.last_cycles);
            c.last_cycles = total;
            c.usage = c.usage * self.decay + delta as f64 / c.weight as f64;
        }
        self.clients.retain(|c| space.process(c.process).is_ok());
        // Rank by weighted usage: the least-served gets priority 0.
        let mut order: Vec<usize> = (0..self.clients.len()).collect();
        order.sort_by(|&a, &b| {
            self.clients[a]
                .usage
                .partial_cmp(&self.clients[b].usage)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (rank, &i) in order.iter().enumerate() {
            let prio = (rank.min(254)) as u8;
            let process = self.clients[i].process;
            space.process_mut(process).map_err(Fault::from)?.priority = prio;
            // Refresh the key of an already-queued client, or a stale key
            // would override the new ranking until the next requeue.
            if let Ok(Some(dp)) =
                space.load_ad_hw(process, i432_arch::sysobj::PROC_SLOT_DISPATCH_PORT)
            {
                let _ = i432_gdp::port::update_queued_key(space, dp.obj, process, prio as u64);
            }
        }
        Ok(())
    }

    /// Current weighted usage of a managed process (testing/inspection).
    pub fn usage_of(&self, p: ObjectRef) -> Option<f64> {
        self.clients
            .iter()
            .find(|c| c.process == p)
            .map(|c| c.usage)
    }
}

impl Default for FairShareScheduler {
    fn default() -> FairShareScheduler {
        FairShareScheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{
        Level, ObjectSpace, ObjectSpec, ObjectType, ProcessState, SysState, SystemType,
    };

    fn process(space: &mut ObjectSpace) -> ObjectRef {
        let root = space.root_sro();
        space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::PROC_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Process),
                    level: None,
                    sys: SysState::Process(ProcessState::new(Level(0))),
                },
            )
            .unwrap()
    }

    #[test]
    fn heavy_consumer_gets_demoted() {
        let mut space = ObjectSpace::new(32 * 1024, 2048, 256);
        let hog = process(&mut space);
        let meek = process(&mut space);
        let mut fs = FairShareScheduler::new();
        fs.adopt(hog, 1);
        fs.adopt(meek, 1);
        space.process_mut(hog).unwrap().total_cycles = 1_000_000;
        space.process_mut(meek).unwrap().total_cycles = 10_000;
        fs.rebalance(&mut space).unwrap();
        let hog_prio = space.process(hog).unwrap().priority;
        let meek_prio = space.process(meek).unwrap().priority;
        assert!(
            meek_prio < hog_prio,
            "under-served process must be more urgent ({meek_prio} vs {hog_prio})"
        );
    }

    #[test]
    fn weights_scale_entitlement() {
        let mut space = ObjectSpace::new(32 * 1024, 2048, 256);
        let heavy_but_entitled = process(&mut space);
        let light = process(&mut space);
        let mut fs = FairShareScheduler::new();
        fs.adopt(heavy_but_entitled, 10);
        fs.adopt(light, 1);
        // Equal raw consumption: the weighted one is less "used up".
        space.process_mut(heavy_but_entitled).unwrap().total_cycles = 100_000;
        space.process_mut(light).unwrap().total_cycles = 100_000;
        fs.rebalance(&mut space).unwrap();
        assert!(
            space.process(heavy_but_entitled).unwrap().priority
                < space.process(light).unwrap().priority
        );
    }

    #[test]
    fn usage_decays_over_passes() {
        let mut space = ObjectSpace::new(32 * 1024, 2048, 256);
        let p = process(&mut space);
        let mut fs = FairShareScheduler::new();
        fs.adopt(p, 1);
        space.process_mut(p).unwrap().total_cycles = 100_000;
        fs.rebalance(&mut space).unwrap();
        let u1 = fs.usage_of(p).unwrap();
        // No further consumption: usage decays.
        fs.rebalance(&mut space).unwrap();
        let u2 = fs.usage_of(p).unwrap();
        assert!(u2 < u1);
    }

    #[test]
    fn reaped_processes_are_dropped() {
        let mut space = ObjectSpace::new(32 * 1024, 2048, 256);
        let p = process(&mut space);
        let mut fs = FairShareScheduler::new();
        fs.adopt(p, 1);
        space.destroy_object(p).unwrap();
        fs.rebalance(&mut space).unwrap();
        assert_eq!(fs.client_count(), 0);
    }
}
