//! A simple round-robin scheduler layered on the basic process manager.
//!
//! Paper §6.1: "a user-process manager may build much more complex
//! policies on the basic process manager to provide a safer or more
//! tailored application interface." This one equalizes time slices and
//! services the scheduler port: processes the hardware hands back
//! (stopped, faulted out of the mix, or exited) are parked, re-entered
//! when runnable again, or queued for reaping.

use i432_arch::{ObjectRef, ProcessStatus, SpaceMut};
use i432_gdp::{port, Fault};
use imax_ipc::{untyped, Port};

/// What the scheduler did during one service pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServiceReport {
    /// Events drained from the scheduler port.
    pub events: u32,
    /// Processes re-entered into the dispatching mix.
    pub readied: u32,
    /// Processes parked (stopped).
    pub parked: u32,
    /// Terminated processes moved to the reap queue.
    pub exited: u32,
}

/// A round-robin scheduler.
#[derive(Debug)]
pub struct RoundRobinScheduler {
    /// The scheduler port processes are delivered to.
    pub port: Port,
    /// The uniform time slice the policy enforces.
    pub quantum: u64,
    parked: Vec<ObjectRef>,
    reapable: Vec<ObjectRef>,
}

impl RoundRobinScheduler {
    /// A scheduler around an existing port with the given quantum.
    pub fn new(port: Port, quantum: u64) -> RoundRobinScheduler {
        RoundRobinScheduler {
            port,
            quantum,
            parked: Vec::new(),
            reapable: Vec::new(),
        }
    }

    /// Adopts a process into the policy: uniform quantum.
    ///
    /// (The process must have been created with this scheduler's port as
    /// its scheduler port for events to arrive here.)
    pub fn adopt<S: SpaceMut + ?Sized>(&self, space: &mut S, p: ObjectRef) -> Result<(), Fault> {
        let ps = space.process_mut(p).map_err(Fault::from)?;
        ps.timeslice = self.quantum;
        ps.slice_remaining = ps.slice_remaining.min(self.quantum);
        Ok(())
    }

    /// Services the scheduler port: drains delivered processes and
    /// decides for each, then retries parked processes.
    pub fn service<S: SpaceMut + ?Sized>(&mut self, space: &mut S) -> Result<ServiceReport, Fault> {
        let mut report = ServiceReport::default();
        while let Some(msg) = untyped::receive(space, self.port)? {
            report.events += 1;
            let p = msg.obj;
            let (status, started) = {
                let ps = space.process(p).map_err(Fault::from)?;
                (ps.status, ps.is_started())
            };
            match status {
                ProcessStatus::Terminated => {
                    self.reapable.push(p);
                    report.exited += 1;
                }
                _ if !started => {
                    self.parked.push(p);
                    report.parked += 1;
                }
                _ => {
                    port::make_ready(space, p)?;
                    report.readied += 1;
                }
            }
        }
        // Parked processes whose stop counts have drained re-enter.
        let mut still_parked = Vec::new();
        for p in self.parked.drain(..) {
            if space.process(p).map_err(Fault::from)?.is_started() {
                port::make_ready(space, p)?;
                report.readied += 1;
            } else {
                still_parked.push(p);
            }
        }
        self.parked = still_parked;
        Ok(report)
    }

    /// Terminated processes awaiting reaping by the basic manager.
    pub fn take_reapable(&mut self) -> Vec<ObjectRef> {
        std::mem::take(&mut self.reapable)
    }

    /// Processes currently parked by this scheduler.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{
        AccessDescriptor, CodeBody, CodeRef, DomainState, ObjectSpace, ObjectSpec, ObjectType,
        PortDiscipline, ProcessState, Rights, Subprogram, SysState, SystemType,
    };
    use imax_ipc::create_port;

    fn fixture() -> (ObjectSpace, RoundRobinScheduler, AccessDescriptor) {
        let mut space = ObjectSpace::new(128 * 1024, 8 * 1024, 1024);
        let root = space.root_sro();
        let sched_port = create_port(&mut space, root, 32, PortDiscipline::Fifo).unwrap();
        let dispatch = create_port(&mut space, root, 32, PortDiscipline::Fifo).unwrap();
        let rr = RoundRobinScheduler::new(sched_port, 10_000);
        (space, rr, dispatch.ad())
    }

    fn bare_process(space: &mut ObjectSpace, dispatch: AccessDescriptor, sched: Port) -> ObjectRef {
        use i432_arch::sysobj::{PROC_SLOT_DISPATCH_PORT, PROC_SLOT_SCHED_PORT};
        let root = space.root_sro();
        let p = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::PROC_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Process),
                    level: None,
                    sys: SysState::Process(ProcessState::new(i432_arch::Level(0))),
                },
            )
            .unwrap();
        space
            .store_ad_hw(p, PROC_SLOT_DISPATCH_PORT, Some(dispatch))
            .unwrap();
        space
            .store_ad_hw(p, PROC_SLOT_SCHED_PORT, Some(sched.ad()))
            .unwrap();
        // A minimal context so make_ready has something to dispatch.
        let _ = (CodeBody::Interpreted(CodeRef(0)), DomainState::default());
        let _ = Subprogram {
            name: String::new(),
            body: CodeBody::Interpreted(CodeRef(0)),
            ctx_data_len: 0,
            ctx_access_len: 0,
        };
        p
    }

    #[test]
    fn adoption_sets_quantum() {
        let (mut space, rr, dispatch) = fixture();
        let p = bare_process(&mut space, dispatch, rr.port);
        rr.adopt(&mut space, p).unwrap();
        assert_eq!(space.process(p).unwrap().timeslice, 10_000);
    }

    #[test]
    fn service_readies_runnable_and_parks_stopped() {
        let (mut space, mut rr, dispatch) = fixture();
        let runnable = bare_process(&mut space, dispatch, rr.port);
        let stopped = bare_process(&mut space, dispatch, rr.port);
        space.process_mut(stopped).unwrap().stop_count = 1;
        // Deliver both to the scheduler port (as the hardware would).
        for p in [runnable, stopped] {
            let ad = space.mint(p, Rights::NONE);
            untyped::send(&mut space, rr.port, ad).unwrap();
        }
        let report = rr.service(&mut space).unwrap();
        assert_eq!(report.events, 2);
        assert_eq!(report.readied, 1);
        assert_eq!(report.parked, 1);
        assert_eq!(rr.parked_count(), 1);
        // Starting the stopped process lets the next pass re-enter it.
        space.process_mut(stopped).unwrap().stop_count = 0;
        let report = rr.service(&mut space).unwrap();
        assert_eq!(report.readied, 1);
        assert_eq!(rr.parked_count(), 0);
    }

    #[test]
    fn exited_processes_become_reapable() {
        let (mut space, mut rr, dispatch) = fixture();
        let p = bare_process(&mut space, dispatch, rr.port);
        space.process_mut(p).unwrap().status = ProcessStatus::Terminated;
        let ad = space.mint(p, Rights::NONE);
        untyped::send(&mut space, rr.port, ad).unwrap();
        let report = rr.service(&mut space).unwrap();
        assert_eq!(report.exited, 1);
        assert_eq!(rr.take_reapable(), vec![p]);
        assert!(rr.take_reapable().is_empty());
    }
}
