//! # imax-process — iMAX process management
//!
//! Paper §6.1: "The basic process manager of iMAX completes the model of
//! processes embedded in the hardware ... It does not arbitrate
//! conflicting requests on the processor resource, however. ... Using
//! this basic process manager, many resource control policies are
//! possible."
//!
//! * [`basic`] — the basic process manager: process creation inside the
//!   process tree, nested start/stop counts that apply to whole trees,
//!   and reaping. Deliberately **no central process table** (paper §7.1).
//! * [`sched_null`] — the null policy: "simply passes through the
//!   dispatching parameters of the hardware and permits its users to
//!   commit them in any way they wish" — fine for pre-evaluated embedded
//!   loads.
//! * [`sched_rr`] — a simple time-sliced round-robin scheduler layered on
//!   the basic manager.
//! * [`sched_fair`] — a fair-share resource controller: adjusts hardware
//!   dispatching priorities from observed consumption so weighted groups
//!   converge to their shares — the "arbitrarily complex resource
//!   controller" end of the configurability spectrum.
//!
//! The system is configured by *selecting packages*: just the basic
//! manager, it plus a simple scheduler, or a full controller (paper §6.1
//! last paragraph).

#![warn(missing_docs)]

pub mod basic;
pub mod sched_fair;
pub mod sched_null;
pub mod sched_rr;

pub use basic::BasicProcessManager;
pub use sched_fair::FairShareScheduler;
pub use sched_null::NullScheduler;
pub use sched_rr::RoundRobinScheduler;
