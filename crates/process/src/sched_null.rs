//! The null scheduling policy.
//!
//! Paper §6.1: "the null policy simply passes through the dispatching
//! parameters of the hardware and permits its users to commit them in
//! any way they wish. This is completely acceptable for simple embedded
//! systems in which the system load can be pre-evaluated. On the other
//! hand, it is clearly unacceptable in a multi-user environment."

use i432_arch::{ObjectRef, ObjectSpace};
use i432_gdp::Fault;

/// Pass-through access to the hardware dispatching parameters.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullScheduler;

impl NullScheduler {
    /// The null policy.
    pub fn new() -> NullScheduler {
        NullScheduler
    }

    /// Sets a process's hardware dispatching priority directly.
    pub fn set_priority(
        &self,
        space: &mut ObjectSpace,
        p: ObjectRef,
        priority: u8,
    ) -> Result<(), Fault> {
        space.process_mut(p).map_err(Fault::from)?.priority = priority;
        Ok(())
    }

    /// Sets a process's time slice directly.
    pub fn set_timeslice(
        &self,
        space: &mut ObjectSpace,
        p: ObjectRef,
        cycles: u64,
    ) -> Result<(), Fault> {
        let ps = space.process_mut(p).map_err(Fault::from)?;
        ps.timeslice = cycles;
        ps.slice_remaining = ps.slice_remaining.min(cycles);
        Ok(())
    }

    /// Sets a process's deadline directly.
    pub fn set_deadline(
        &self,
        space: &mut ObjectSpace,
        p: ObjectRef,
        deadline: u64,
    ) -> Result<(), Fault> {
        space.process_mut(p).map_err(Fault::from)?.deadline = deadline;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{Level, ObjectSpec, ObjectType, ProcessState, SysState, SystemType};

    #[test]
    fn passes_parameters_through() {
        let mut space = ObjectSpace::new(4096, 256, 64);
        let root = space.root_sro();
        let p = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::PROC_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Process),
                    level: None,
                    sys: SysState::Process(ProcessState::new(Level(0))),
                },
            )
            .unwrap();
        let s = NullScheduler::new();
        s.set_priority(&mut space, p, 7).unwrap();
        s.set_timeslice(&mut space, p, 1234).unwrap();
        s.set_deadline(&mut space, p, 99).unwrap();
        let ps = space.process(p).unwrap();
        assert_eq!(ps.priority, 7);
        assert_eq!(ps.timeslice, 1234);
        assert_eq!(ps.deadline, 99);
    }
}
