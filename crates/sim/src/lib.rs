//! # i432-sim — the deterministic multiprocessor system simulator
//!
//! Paper §3: "iMAX is fundamentally a multiprocessor operating system,
//! providing a tightly coupled environment in which all processors see a
//! single homogeneous memory. ... With the bussing schemes designed for
//! the 432, a factor of 10 in total processing power of a single 432
//! system is realizable."
//!
//! This crate assembles N emulated GDPs ([`i432_gdp::Gdp`]) over one
//! shared [`i432_arch::ObjectSpace`] and interleaves them in *simulated
//! time*: at every step, the processor with the smallest local cycle clock
//! advances. Shared-memory traffic contends on an address-interleaved
//! multi-bus model ([`InterleavedBus`]) — the mechanism behind the paper's
//! "factor of 10" scaling claim.
//!
//! Determinism: given the same initial system and programs, every run
//! produces the same event sequence and the same final clocks, which makes
//! all EXPERIMENTS.md measurements exactly reproducible.

#![warn(missing_docs)]

pub mod config;
pub mod interconnect;
pub mod system;
pub mod threaded;
pub mod trace;

pub use config::SystemConfig;
pub use interconnect::InterleavedBus;
pub use system::{RunOutcome, System};
pub use threaded::{
    run_threaded, run_threaded_aux, run_threaded_aux_opts, run_threaded_full,
    run_threaded_full_aux, run_threaded_global_lock, run_threaded_with, run_threaded_with_opts,
    AuxWorker, ThreadedOutcome,
};
pub use trace::{TraceBuffer, TraceEntry};
