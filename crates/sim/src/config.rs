//! System configuration.
//!
//! Configurability is a first-class iMAX goal (paper §6). The simulator
//! level exposes the *hardware* configuration; iMAX's own builder
//! (`imax::builder`) layers package selection and alternate
//! implementations on top.

use i432_arch::PortDiscipline;
use i432_gdp::CostModel;

/// Hardware configuration of a simulated 432 system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Data arena size in bytes.
    pub data_bytes: u32,
    /// Access arena size in slots.
    pub access_slots: u32,
    /// Object table limit.
    pub table_limit: u32,
    /// Number of object-space shards (lock stripes). The data arena,
    /// access arena and object table are divided evenly between them and
    /// the index space is address-interleaved (index mod `shards`). One
    /// shard reproduces the unsharded space exactly.
    pub shards: u32,
    /// Number of general data processors.
    pub processors: u32,
    /// Number of interleaved memory buses.
    pub buses: usize,
    /// Bus cycles per 4-byte word.
    pub bus_cycles_per_word: u64,
    /// Queueing discipline of the system dispatching port.
    pub dispatch_discipline: PortDiscipline,
    /// Capacity of the system dispatching port (ready processes).
    pub dispatch_capacity: u32,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Capacity of the event trace ring (0 disables tracing).
    pub trace_capacity: usize,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig {
            data_bytes: 4 * 1024 * 1024,
            access_slots: 256 * 1024,
            table_limit: 64 * 1024,
            shards: 1,
            processors: 1,
            buses: 4,
            bus_cycles_per_word: 2,
            dispatch_discipline: PortDiscipline::Priority,
            dispatch_capacity: 256,
            cost: CostModel::default(),
            trace_capacity: 0,
        }
    }
}

impl SystemConfig {
    /// Convenience: a small configuration for unit tests.
    pub fn small() -> SystemConfig {
        SystemConfig {
            data_bytes: 256 * 1024,
            access_slots: 16 * 1024,
            table_limit: 4096,
            ..SystemConfig::default()
        }
    }

    /// Sets the processor count.
    pub fn with_processors(mut self, n: u32) -> SystemConfig {
        self.processors = n;
        self
    }

    /// Sets the bus configuration.
    pub fn with_buses(mut self, buses: usize, cycles_per_word: u64) -> SystemConfig {
        self.buses = buses;
        self.bus_cycles_per_word = cycles_per_word;
        self
    }

    /// Sets the object-space shard (lock stripe) count.
    pub fn with_shards(mut self, n: u32) -> SystemConfig {
        self.shards = n.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SystemConfig::default();
        assert_eq!(c.processors, 1);
        assert!(c.buses >= 1);
        assert!(c.data_bytes > 0);
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::small().with_processors(8).with_buses(2, 3);
        assert_eq!(c.processors, 8);
        assert_eq!(c.buses, 2);
        assert_eq!(c.bus_cycles_per_word, 3);
    }
}
