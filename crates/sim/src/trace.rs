//! A bounded event trace for diagnostics and tests.

use i432_gdp::StepEvent;
use std::collections::VecDeque;

/// One traced step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Which processor stepped (by processor-object id).
    pub cpu: u32,
    /// Its local clock after the step.
    pub clock: u64,
    /// What happened.
    pub event: StepEvent,
}

/// A ring buffer of the most recent [`TraceEntry`] records.
#[derive(Debug, Default, Clone)]
pub struct TraceBuffer {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
}

impl TraceBuffer {
    /// A trace retaining at most `capacity` entries (0 disables).
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            entries: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
        }
    }

    /// Records an entry, evicting the oldest when full.
    pub fn record(&mut self, e: TraceEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(e);
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(clock: u64) -> TraceEntry {
        TraceEntry {
            cpu: 0,
            clock,
            event: StepEvent::Idle,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceBuffer::new(2);
        t.record(entry(1));
        t.record(entry(2));
        t.record(entry(3));
        let clocks: Vec<u64> = t.iter().map(|e| e.clock).collect();
        assert_eq!(clocks, vec![2, 3]);
    }

    #[test]
    fn zero_capacity_discards() {
        let mut t = TraceBuffer::new(0);
        t.record(entry(1));
        assert!(t.is_empty());
    }
}
