//! A threaded runner: real OS threads drive the processors.
//!
//! The deterministic discrete-event runner ([`crate::System`]) is the
//! measurement vehicle — every number in EXPERIMENTS.md comes from it.
//! This module exists to *demonstrate* paper §3's design rule under real
//! concurrency: "all synchronization within the system must be explicit,
//! never assuming that process priority or other scheduling artifact is
//! sufficient to guarantee exclusion."
//!
//! Each host thread embodies one GDP and steps it against the shared
//! object space under a lock (the space lock stands in for the 432's
//! memory-bus arbitration and the RMW semantics its port instructions
//! had). Interleaving is whatever the host scheduler produces —
//! nondeterministic — yet every logical result must match the
//! deterministic runner, because the *system's* synchronization is all
//! in ports, never in scheduling accidents. `tests/threaded_runner.rs`
//! checks exactly that.

use crate::system::System;
use i432_arch::ProcessStatus;
use i432_gdp::{Env, NullInterconnect, StepEvent};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of a threaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadedOutcome {
    /// Every registered (non-service) process terminated.
    pub completed: bool,
    /// Total steps executed across all threads.
    pub steps: u64,
    /// System errors observed (should be zero for correct software).
    pub system_errors: u64,
}

/// Runs the system's processors on real threads until every registered
/// process terminates or `max_steps` total steps elapse.
///
/// The system is taken by value (threads need ownership) and handed
/// back with the final state. Interconnect modeling is disabled
/// (contention here is *real*); simulated clocks still advance, but
/// their values are interleaving-dependent — use the deterministic
/// runner for measurements.
pub fn run_threaded(sys: System, max_steps: u64) -> (System, ThreadedOutcome) {
    // Dismantle the system into shared state.
    let processes: Vec<_> = sys.processes().to_vec();
    let mut gdps = Vec::new();
    for cpu in sys.processors() {
        gdps.push(i432_gdp::Gdp::new(cpu));
    }
    // Clocks were consumed fresh; runs always start threaded from t=0.
    let shared = Arc::new(Mutex::new(sys));
    let total_steps = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for mut gdp in gdps {
        let shared = Arc::clone(&shared);
        let total_steps = Arc::clone(&total_steps);
        let errors = Arc::clone(&errors);
        let done = Arc::clone(&done);
        let processes = processes.clone();
        handles.push(std::thread::spawn(move || {
            let mut bus = NullInterconnect;
            loop {
                if done.load(Ordering::Acquire) {
                    return;
                }
                if total_steps.fetch_add(1, Ordering::AcqRel) >= max_steps {
                    done.store(true, Ordering::Release);
                    return;
                }
                let event = {
                    let mut sys = shared.lock();
                    // Split borrows: System fields are accessed through
                    // the same public surface the deterministic runner
                    // uses.
                    let sys = &mut *sys;
                    let mut env = Env {
                        space: &mut sys.space,
                        code: &sys.code,
                        natives: &sys.natives,
                        bus: &mut bus,
                        cost: sys.cost,
                    };
                    gdp.step(&mut env)
                };
                match event {
                    StepEvent::SystemError { .. } => {
                        errors.fetch_add(1, Ordering::AcqRel);
                        done.store(true, Ordering::Release);
                        return;
                    }
                    StepEvent::ProcessExited(_) => {
                        // Check for global completion.
                        let sys = shared.lock();
                        let all_done = processes.iter().all(|p| {
                            matches!(
                                sys.space.process(*p).map(|s| s.status),
                                Ok(ProcessStatus::Terminated) | Err(_)
                            )
                        });
                        if all_done {
                            done.store(true, Ordering::Release);
                            return;
                        }
                    }
                    _ => {}
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }

    let sys = Arc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("all threads joined; lock cannot be shared"))
        .into_inner();
    let completed = processes.iter().all(|p| {
        matches!(
            sys.space.process(*p).map(|s| s.status),
            Ok(ProcessStatus::Terminated) | Err(_)
        )
    });
    let outcome = ThreadedOutcome {
        completed,
        steps: total_steps.load(Ordering::Acquire),
        system_errors: errors.load(Ordering::Acquire),
    };
    (sys, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use i432_gdp::isa::{AluOp, DataDst, DataRef};
    use i432_gdp::ProgramBuilder;

    #[test]
    fn threaded_run_completes_simple_batch() {
        let mut sys = System::new(&SystemConfig::small().with_processors(4));
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(20), DataDst::Local(0));
        p.bind(top);
        p.work(100);
        p.alu(AluOp::Sub, DataRef::Local(0), DataRef::Imm(1), DataDst::Local(0));
        p.jump_if_nonzero(DataRef::Local(0), top);
        p.halt();
        let sub = sys.subprogram("job", p.finish(), 64, 8);
        let dom = sys.install_domain("batch", vec![sub], 0);
        for _ in 0..8 {
            sys.spawn(dom, 0, None);
        }
        let (sys, outcome) = run_threaded(sys, 10_000_000);
        assert!(outcome.completed, "{outcome:?}");
        assert_eq!(outcome.system_errors, 0);
        for p in sys.processes() {
            assert_eq!(sys.space.process(*p).unwrap().fault_code, 0);
        }
    }
}
