//! A threaded runner: real OS threads drive the processors.
//!
//! The deterministic discrete-event runner ([`crate::System`]) is the
//! measurement vehicle — every number in EXPERIMENTS.md comes from it.
//! This module exists to *demonstrate* paper §3's design rule under real
//! concurrency: "all synchronization within the system must be explicit,
//! never assuming that process priority or other scheduling artifact is
//! sufficient to guarantee exclusion."
//!
//! Two runners are provided:
//!
//! * [`run_threaded`] — each host thread embodies one GDP and steps it
//!   against the shared *lock-striped* object space
//!   ([`i432_arch::SharedSpace`]): every operation locks only the shard
//!   (or, for a cross-shard AD store, the two shards in canonical order)
//!   it touches, so threads whose processes live in different stripes
//!   genuinely run in parallel. This is the moral equivalent of the
//!   432's interleaved memory buses: disjoint addresses never contend.
//! * [`run_threaded_global_lock`] — the original design, one mutex
//!   around the whole system. Kept as the contention baseline that the
//!   `c3_threaded` benchmark measures speedup against.
//!
//! Interleaving is whatever the host scheduler produces —
//! nondeterministic — yet every logical result must match the
//! deterministic runner, because the *system's* synchronization is all
//! in ports, never in scheduling accidents. `tests/threaded_runner.rs`
//! checks exactly that across thread-count × shard-count combinations.

use crate::system::System;
use i432_arch::{ProcessStatus, ShardedSpace, SharedSpace, SpaceAccessExt};
use i432_gdp::{Env, Gdp, NullInterconnect, StepEvent};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Outcome of a threaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadedOutcome {
    /// Every registered (non-service) process reached a terminal state
    /// (exited, or faulted with no service to revive it).
    pub completed: bool,
    /// Total steps executed across all threads.
    pub steps: u64,
    /// System errors observed (should be zero for correct software).
    pub system_errors: u64,
}

/// Runs the system's processors on real threads against the lock-striped
/// shared space until every registered process terminates or `max_steps`
/// total steps elapse.
///
/// The system is taken by value (the space moves into the shared handle)
/// and handed back with the final state. Interconnect modeling is
/// disabled (contention here is *real*); simulated clocks still advance,
/// but their values are interleaving-dependent — use the deterministic
/// runner for measurements.
pub fn run_threaded(sys: System, max_steps: u64) -> (System, ThreadedOutcome) {
    run_threaded_with(sys, max_steps, true)
}

/// [`run_threaded`] with the qualification/binding caches made explicit.
///
/// `cache = true` (the default runner) gives every thread a caching
/// [`i432_arch::SpaceAgent`] and a GDP with its binding-register cache
/// on, so runs of local instructions take no shard lock at all.
/// `cache = false` keeps every operation on the locked path. The two
/// must be digest-identical — the conformance oracle diffs them
/// bit-for-bit on every seed.
pub fn run_threaded_with(sys: System, max_steps: u64, cache: bool) -> (System, ThreadedOutcome) {
    run_threaded_aux(sys, max_steps, cache, Vec::new())
}

/// [`run_threaded_with`] with the port-ring fast path made explicit.
///
/// `queue = true` (the default for every threaded entry point) enables
/// the per-port rings: non-blocking sends and receives on FIFO ports go
/// through a lock-free ring consulted before any shard lock, falling
/// back to the locked rendezvous path when the ring is full, empty,
/// frozen, or the operation might block. `queue = false` keeps every
/// port operation on the locked path. The two must be digest-identical
/// — the conformance oracle diffs them bit-for-bit on every seed.
pub fn run_threaded_with_opts(
    sys: System,
    max_steps: u64,
    cache: bool,
    queue: bool,
) -> (System, ThreadedOutcome) {
    run_threaded_aux_opts(sys, max_steps, cache, queue, Vec::new())
}

/// [`run_threaded_with_opts`] with dispatch specialization made
/// explicit.
///
/// `fusion = true` gives every GDP the pre-decoded block cache,
/// superinstruction fusion on the unlocked fast path, and the
/// monomorphic inline caches at call/port sites. Dispatch
/// specialization rides on the binding-register cache's fast path, so
/// it is inert when `cache = false`. `fusion = false` with
/// `cache = true` is the plain caching runner. All arms must be
/// digest-identical — the conformance oracle diffs them bit-for-bit on
/// every seed.
pub fn run_threaded_full(
    sys: System,
    max_steps: u64,
    cache: bool,
    queue: bool,
    fusion: bool,
) -> (System, ThreadedOutcome) {
    run_threaded_full_aux(sys, max_steps, cache, queue, fusion, Vec::new())
}

/// An auxiliary worker thread run alongside the GDP threads: it gets the
/// shared space handle and the runner's `done` flag (set when the
/// workload completes or the step budget runs out) and is expected to
/// return promptly once the flag is set. The collector's parallel
/// markers (`imax-gc`) ride on this hook; the runner itself knows
/// nothing about what the workers do.
pub type AuxWorker = Box<dyn for<'s> FnOnce(&'s SharedSpace, &'s AtomicBool) + Send>;

/// [`run_threaded_with`] plus auxiliary worker threads (e.g. collector
/// workers) sharing the space with the mutator GDPs. Aux workers do not
/// count toward `max_steps` or completion; they are joined before the
/// space is reassembled.
pub fn run_threaded_aux(
    sys: System,
    max_steps: u64,
    cache: bool,
    aux: Vec<AuxWorker>,
) -> (System, ThreadedOutcome) {
    run_threaded_aux_opts(sys, max_steps, cache, true, aux)
}

/// [`run_threaded_aux`] with the port-ring fast path made explicit (see
/// [`run_threaded_with_opts`]). Dispatch specialization defaults to
/// following the cache flag: the default threaded runner is a fused
/// runner.
pub fn run_threaded_aux_opts(
    sys: System,
    max_steps: u64,
    cache: bool,
    queue: bool,
    aux: Vec<AuxWorker>,
) -> (System, ThreadedOutcome) {
    run_threaded_full_aux(sys, max_steps, cache, queue, cache, aux)
}

/// [`run_threaded_aux_opts`] with dispatch specialization made explicit
/// (see [`run_threaded_full`]). The most general threaded entry point.
pub fn run_threaded_full_aux(
    mut sys: System,
    max_steps: u64,
    cache: bool,
    queue: bool,
    fusion: bool,
    aux: Vec<AuxWorker>,
) -> (System, ThreadedOutcome) {
    // Fusion runs on the unlocked fast path, so it is inert without
    // the binding-register cache.
    let fusion = fusion && cache;
    let processes: Vec<_> = sys.processes().to_vec();
    let gdps: Vec<_> = sys
        .processors()
        .into_iter()
        .map(|cpu| {
            if fusion {
                Gdp::new_fused(cpu)
            } else if cache {
                Gdp::new_cached(cpu)
            } else {
                Gdp::new(cpu)
            }
        })
        .collect();
    // Move the space into the striped handle; park a minimal placeholder
    // in the System until the threads are done.
    let space = std::mem::replace(&mut sys.space, ShardedSpace::new(4096, 64, 16, 1));
    if queue {
        // Arm the port-ring registry for the duration of the threaded
        // run. Rings are created lazily by the locked path on first use
        // of each port; the deterministic runner never enables the
        // registry, so its cycle accounting is untouched.
        space.port_ring_registry().set_enabled(true);
    }
    let shared = SharedSpace::new(space);
    let code = &sys.code;
    let natives = &sys.natives;
    let cost = sys.cost;

    let remaining0 = {
        let mut agent = shared.agent();
        processes
            .iter()
            .filter(|p| {
                !matches!(
                    agent.with_process(**p, |s| s.status),
                    Ok(ProcessStatus::Terminated) | Ok(ProcessStatus::Faulted)
                )
            })
            .count()
    };
    let remaining = AtomicUsize::new(remaining0);
    let total_steps = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let done = AtomicBool::new(remaining0 == 0);

    std::thread::scope(|scope| {
        for worker in aux {
            let shared = &shared;
            let done = &done;
            scope.spawn(move || worker(shared, done));
        }
        for mut gdp in gdps {
            let shared = &shared;
            let processes = &processes;
            let remaining = &remaining;
            let total_steps = &total_steps;
            let errors = &errors;
            let done = &done;
            scope.spawn(move || {
                let mut agent = if cache {
                    shared.agent()
                } else {
                    shared.agent_uncached()
                };
                let mut bus = NullInterconnect;
                loop {
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    if total_steps.fetch_add(1, Ordering::AcqRel) >= max_steps {
                        done.store(true, Ordering::Release);
                        break;
                    }
                    let event = {
                        let mut env = Env {
                            space: &mut agent,
                            code,
                            natives,
                            bus: &mut bus,
                            cost,
                        };
                        gdp.step(&mut env)
                    };
                    match event {
                        StepEvent::SystemError { .. } => {
                            errors.fetch_add(1, Ordering::AcqRel);
                            done.store(true, Ordering::Release);
                            break;
                        }
                        // A fault is terminal here just like an exit: the
                        // process sits at its fault port and nothing in
                        // this runner revives it.
                        StepEvent::ProcessExited(p)
                        | StepEvent::ProcessFaulted { process: p, .. }
                            if processes.contains(&p)
                                && remaining.fetch_sub(1, Ordering::AcqRel) <= 1 =>
                        {
                            done.store(true, Ordering::Release);
                            break;
                        }
                        _ => {}
                    }
                }
                // Write the GDP's cached binding registers (ip, slice,
                // pending cycles) back before the space is reassembled;
                // the agent's own stat deltas flush on drop.
                gdp.flush_bound(&mut agent);
            });
        }
    });

    sys.space = shared.into_inner();
    if queue {
        // Drain every ring back into the locked message areas so the
        // reassembled space is observably identical to a rendezvous
        // run (an open ring's port has an empty message area by the
        // FAST-mode invariant, so the drain always fits). A fault here
        // would mean that invariant broke — surface it as a system
        // error rather than silently dropping messages.
        if i432_gdp::port::flush_rings(&mut sys.space).is_err() {
            errors.fetch_add(1, Ordering::AcqRel);
        }
        sys.space.port_ring_registry().set_enabled(false);
    }
    let completed = processes.iter().all(|p| {
        matches!(
            sys.space.process(*p).map(|s| s.status),
            Ok(ProcessStatus::Terminated) | Ok(ProcessStatus::Faulted) | Err(_)
        )
    });
    let outcome = ThreadedOutcome {
        completed,
        steps: total_steps.load(Ordering::Acquire),
        system_errors: errors.load(Ordering::Acquire),
    };
    (sys, outcome)
}

/// The original threaded runner: one mutex around the whole system, every
/// step serialized. Logically equivalent to [`run_threaded`]; kept as the
/// baseline the striped runner's speedup is measured against.
pub fn run_threaded_global_lock(sys: System, max_steps: u64) -> (System, ThreadedOutcome) {
    let processes: Vec<_> = sys.processes().to_vec();
    let mut gdps = Vec::new();
    for cpu in sys.processors() {
        gdps.push(Gdp::new(cpu));
    }
    let shared = Arc::new(Mutex::new(sys));
    let total_steps = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for mut gdp in gdps {
        let shared = Arc::clone(&shared);
        let total_steps = Arc::clone(&total_steps);
        let errors = Arc::clone(&errors);
        let done = Arc::clone(&done);
        let processes = processes.clone();
        handles.push(std::thread::spawn(move || {
            let mut bus = NullInterconnect;
            loop {
                if done.load(Ordering::Acquire) {
                    return;
                }
                if total_steps.fetch_add(1, Ordering::AcqRel) >= max_steps {
                    done.store(true, Ordering::Release);
                    return;
                }
                let event = {
                    let mut sys = shared.lock();
                    // Split borrows: System fields are accessed through
                    // the same public surface the deterministic runner
                    // uses.
                    let sys = &mut *sys;
                    let mut env = Env {
                        space: &mut sys.space,
                        code: &sys.code,
                        natives: &sys.natives,
                        bus: &mut bus,
                        cost: sys.cost,
                    };
                    gdp.step(&mut env)
                };
                match event {
                    StepEvent::SystemError { .. } => {
                        errors.fetch_add(1, Ordering::AcqRel);
                        done.store(true, Ordering::Release);
                        return;
                    }
                    StepEvent::ProcessExited(_) | StepEvent::ProcessFaulted { .. } => {
                        // Check for global completion.
                        let sys = shared.lock();
                        let all_done = processes.iter().all(|p| {
                            matches!(
                                sys.space.process(*p).map(|s| s.status),
                                Ok(ProcessStatus::Terminated) | Ok(ProcessStatus::Faulted) | Err(_)
                            )
                        });
                        if all_done {
                            done.store(true, Ordering::Release);
                            return;
                        }
                    }
                    _ => {}
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }

    let sys = Arc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("all threads joined; lock cannot be shared"))
        .into_inner();
    let completed = processes.iter().all(|p| {
        matches!(
            sys.space.process(*p).map(|s| s.status),
            Ok(ProcessStatus::Terminated) | Ok(ProcessStatus::Faulted) | Err(_)
        )
    });
    let outcome = ThreadedOutcome {
        completed,
        steps: total_steps.load(Ordering::Acquire),
        system_errors: errors.load(Ordering::Acquire),
    };
    (sys, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use i432_gdp::isa::{AluOp, DataDst, DataRef};
    use i432_gdp::ProgramBuilder;

    fn batch_system(shards: u32, cpus: u32, jobs: usize) -> System {
        let mut sys = System::new(
            &SystemConfig::small()
                .with_processors(cpus)
                .with_shards(shards),
        );
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(20), DataDst::Local(0));
        p.bind(top);
        p.work(100);
        p.alu(
            AluOp::Sub,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), top);
        p.halt();
        let sub = sys.subprogram("job", p.finish(), 64, 8);
        let dom = sys.install_domain("batch", vec![sub], 0);
        for _ in 0..jobs {
            sys.spawn(dom, 0, None);
        }
        sys
    }

    #[test]
    fn threaded_run_completes_simple_batch() {
        let sys = batch_system(4, 4, 8);
        let (sys, outcome) = run_threaded(sys, 10_000_000);
        assert!(outcome.completed, "{outcome:?}");
        assert_eq!(outcome.system_errors, 0);
        for p in sys.processes() {
            assert_eq!(sys.space.process(*p).unwrap().fault_code, 0);
        }
    }

    #[test]
    fn threaded_run_completes_with_fusion_off() {
        // The default runner is fused; the cache-only arm must complete
        // the same workload.
        let sys = batch_system(4, 4, 8);
        let (sys, outcome) = run_threaded_full(sys, 10_000_000, true, true, false);
        assert!(outcome.completed, "{outcome:?}");
        assert_eq!(outcome.system_errors, 0);
        for p in sys.processes() {
            assert_eq!(sys.space.process(*p).unwrap().fault_code, 0);
        }
    }

    #[test]
    fn threaded_run_completes_with_caches_off() {
        let sys = batch_system(4, 4, 8);
        let (sys, outcome) = run_threaded_with(sys, 10_000_000, false);
        assert!(outcome.completed, "{outcome:?}");
        assert_eq!(outcome.system_errors, 0);
        for p in sys.processes() {
            assert_eq!(sys.space.process(*p).unwrap().fault_code, 0);
        }
    }

    #[test]
    fn global_lock_run_completes_simple_batch() {
        let sys = batch_system(1, 4, 8);
        let (sys, outcome) = run_threaded_global_lock(sys, 10_000_000);
        assert!(outcome.completed, "{outcome:?}");
        assert_eq!(outcome.system_errors, 0);
        for p in sys.processes() {
            assert_eq!(sys.space.process(*p).unwrap().fault_code, 0);
        }
    }
}
