//! The address-interleaved multi-bus memory interconnect.
//!
//! Each 4-byte word an instruction moves is serviced by one of `B` buses
//! for `cycles_per_word` bus cycles. Words from one access are spread
//! round-robin across buses (address interleaving), so a single processor
//! sees little queueing while aggregate traffic beyond the buses' joint
//! bandwidth queues up — reproducing the near-linear-then-saturating
//! multiprocessor scaling the paper claims (knee around a factor of ~10
//! for the 432's intended configurations).

use i432_gdp::Interconnect;

/// Aggregate interconnect statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BusStats {
    /// Total access requests.
    pub accesses: u64,
    /// Total words transferred.
    pub words: u64,
    /// Total stall cycles imposed on processors.
    pub wait_cycles: u64,
}

/// An address-interleaved multi-bus model.
#[derive(Debug, Clone)]
pub struct InterleavedBus {
    busy_until: Vec<u64>,
    cycles_per_word: u64,
    next: usize,
    /// Running statistics.
    pub stats: BusStats,
}

impl InterleavedBus {
    /// A model with `buses` parallel buses, each moving one word per
    /// `cycles_per_word` cycles.
    pub fn new(buses: usize, cycles_per_word: u64) -> InterleavedBus {
        assert!(buses > 0, "at least one bus");
        InterleavedBus {
            busy_until: vec![0; buses],
            cycles_per_word,
            next: 0,
            stats: BusStats::default(),
        }
    }

    /// Number of buses.
    pub fn buses(&self) -> usize {
        self.busy_until.len()
    }
}

impl Interconnect for InterleavedBus {
    fn access(&mut self, _proc_id: u32, now: u64, words: u32) -> u64 {
        if words == 0 {
            return 0;
        }
        self.stats.accesses += 1;
        self.stats.words += words as u64;
        let mut done_at = now;
        for _ in 0..words {
            let b = self.next;
            self.next = (self.next + 1) % self.busy_until.len();
            let start = self.busy_until[b].max(now);
            let end = start + self.cycles_per_word;
            self.busy_until[b] = end;
            done_at = done_at.max(end);
        }
        // The base word-transfer time is already charged by the cost
        // model's `mem_word`; only queueing beyond one transfer time is a
        // stall.
        let base = words as u64 * self.cycles_per_word;
        let wait = (done_at - now).saturating_sub(base);
        self.stats.wait_cycles += wait;
        wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_processor_sees_no_queueing() {
        let mut bus = InterleavedBus::new(2, 2);
        // Sequential accesses far apart in time never queue.
        assert_eq!(bus.access(0, 0, 4), 0);
        assert_eq!(bus.access(0, 1000, 4), 0);
        assert_eq!(bus.stats.wait_cycles, 0);
    }

    #[test]
    fn concurrent_traffic_queues() {
        let mut bus = InterleavedBus::new(1, 2);
        // Two processors hit the single bus at the same instant: the
        // second one stalls.
        let w0 = bus.access(0, 0, 4);
        let w1 = bus.access(1, 0, 4);
        assert_eq!(w0, 0);
        assert!(w1 > 0, "second access must queue behind the first");
    }

    #[test]
    fn more_buses_reduce_queueing() {
        let run = |buses: usize| {
            let mut bus = InterleavedBus::new(buses, 2);
            let mut total = 0;
            for p in 0..8u32 {
                total += bus.access(p, 0, 8);
            }
            total
        };
        assert!(run(8) < run(1));
    }

    #[test]
    fn zero_words_is_free() {
        let mut bus = InterleavedBus::new(1, 2);
        assert_eq!(bus.access(0, 0, 0), 0);
        assert_eq!(bus.stats.accesses, 0);
    }
}
