//! [`System`]: N processors, one object space, simulated time.

use crate::{
    config::SystemConfig,
    interconnect::InterleavedBus,
    trace::{TraceBuffer, TraceEntry},
};
use i432_arch::{
    AccessDescriptor, CodeBody, DomainState, ObjectRef, ObjectSpec, ObjectType, PortState,
    ProcessStatus, ProcessorStatus, Rights, ShardedSpace, Subprogram, SysState, SystemType,
};
use i432_gdp::{
    code::CodeStore,
    cost::CostModel,
    isa::Instruction,
    native::NativeRegistry,
    port,
    process::{deliver_fault, make_process, make_processor, ProcessSpec},
    Env, Fault, Gdp, StepEvent,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Why a run loop stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// All registered processes reached a terminal or waiting state and
    /// every processor is idle: nothing further can happen without
    /// external input.
    Quiescent,
    /// The step budget was exhausted first.
    BudgetExhausted,
    /// The caller's predicate asked to stop.
    Stopped,
    /// A system error halted a processor.
    SystemError(Fault),
}

/// A complete simulated 432 system.
///
/// Fields are public for the iMAX layers; applications interact through
/// iMAX's interface packages.
pub struct System {
    /// The shared object space, partitioned into address-interleaved
    /// shards (one shard with the default configuration).
    pub space: ShardedSpace,
    /// The shared code store.
    pub code: CodeStore,
    /// Registered native service bodies.
    pub natives: NativeRegistry,
    /// The cycle cost model.
    pub cost: CostModel,
    /// The memory interconnect.
    pub bus: InterleavedBus,
    /// Recent-event trace.
    pub trace: TraceBuffer,
    gdps: Vec<Gdp>,
    dispatch_port: ObjectRef,
    root_dir: ObjectRef,
    next_anchor: u32,
    next_home: u32,
    processes: Vec<ObjectRef>,
    services: Vec<ObjectRef>,
    timers: BinaryHeap<Reverse<(u64, ObjectRef)>>,
    steps: u64,
}

/// Access-part slots in the system root directory.
const ROOT_DIR_SLOTS: u32 = 2048;

impl System {
    /// Builds a system per the hardware configuration: arenas, object
    /// table, the system dispatching port, and the processors.
    pub fn new(config: &SystemConfig) -> System {
        let mut space = ShardedSpace::new(
            config.data_bytes,
            config.access_slots,
            config.table_limit,
            config.shards,
        );
        // System-wide objects (dispatching port, root directory) live in
        // shard 0; processors round-robin over the shard roots so their
        // per-processor state spreads across the stripes.
        let root = space.root_sro();
        let dispatch_port = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: PortState::access_slots(config.dispatch_capacity, 16),
                    otype: ObjectType::System(SystemType::Port),
                    level: None,
                    sys: SysState::Port(PortState::new(
                        config.dispatch_capacity,
                        16,
                        config.dispatch_discipline,
                    )),
                },
            )
            .expect("dispatch port fits a fresh arena");
        let dispatch_ad = space.mint(dispatch_port, Rights::NONE);
        // The system root directory: everything the "outside world"
        // (host-side code standing in for iMAX's global service registry)
        // holds is anchored here, and the directory hangs off every
        // processor's root slot — so the garbage collector's roots cover
        // it without any central table of objects.
        let root_dir = space
            .create_object(root, ObjectSpec::generic(0, ROOT_DIR_SLOTS))
            .expect("root directory fits a fresh arena");
        let mut gdps = Vec::new();
        for id in 0..config.processors {
            let home = space.root_sro_of(id % space.shard_count());
            let cpu = make_processor(&mut space, home, id, dispatch_ad)
                .expect("processor objects fit a fresh arena");
            let dir_ad = space.mint(root_dir, Rights::READ | Rights::WRITE);
            space
                .store_ad_hw(cpu, i432_arch::sysobj::CPU_SLOT_ROOT, Some(dir_ad))
                .expect("fresh processor has a root slot");
            gdps.push(Gdp::new(cpu));
        }
        System {
            space,
            code: CodeStore::new(),
            natives: NativeRegistry::new(),
            cost: config.cost,
            bus: InterleavedBus::new(config.buses, config.bus_cycles_per_word),
            trace: TraceBuffer::new(config.trace_capacity),
            gdps,
            dispatch_port,
            root_dir,
            next_anchor: 0,
            next_home: 0,
            processes: Vec::new(),
            services: Vec::new(),
            timers: BinaryHeap::new(),
            steps: 0,
        }
    }

    /// Reclassifies a spawned process as a *system service* (e.g. the GC
    /// daemon): it stays anchored and dispatchable but is excluded from
    /// completion tracking — services run forever by design.
    pub fn mark_service(&mut self, p: ObjectRef) {
        self.processes.retain(|q| *q != p);
        if !self.services.contains(&p) {
            self.services.push(p);
        }
    }

    /// Registered service processes.
    pub fn services(&self) -> &[ObjectRef] {
        &self.services
    }

    /// The system root directory object.
    pub fn root_dir(&self) -> ObjectRef {
        self.root_dir
    }

    /// Anchors an access descriptor in the root directory so the object
    /// stays reachable from the garbage collector's roots until
    /// [`System::unanchor`] removes it.
    pub fn anchor(&mut self, ad: AccessDescriptor) -> u32 {
        // Reuse freed slots lazily: scan from the cursor.
        for _ in 0..ROOT_DIR_SLOTS {
            let slot = self.next_anchor % ROOT_DIR_SLOTS;
            self.next_anchor = self.next_anchor.wrapping_add(1);
            if self
                .space
                .load_ad_hw(self.root_dir, slot)
                .expect("root dir slot")
                .is_none()
            {
                self.space
                    .store_ad_hw(self.root_dir, slot, Some(ad))
                    .expect("root dir slot");
                return slot;
            }
        }
        panic!("system root directory is full");
    }

    /// Retires every terminated process in one directory pass: clears
    /// its root-directory anchor and drops it from completion tracking,
    /// so its process object (and context chain) becomes collectable.
    /// Boot-storm harnesses spawn clients in waves; the per-object
    /// [`System::unanchor`] would rescan the whole directory once per
    /// process. Returns how many processes were retired.
    pub fn retire_terminated(&mut self) -> u32 {
        for slot in 0..ROOT_DIR_SLOTS {
            let anchored = match self.space.load_ad_hw(self.root_dir, slot) {
                Ok(Some(ad)) => ad.obj,
                _ => continue,
            };
            if matches!(
                self.space.process(anchored).map(|s| s.status),
                Ok(ProcessStatus::Terminated)
            ) {
                let _ = self.space.store_ad_hw(self.root_dir, slot, None);
            }
        }
        let mut procs = std::mem::take(&mut self.processes);
        let before = procs.len();
        // Drop terminated processes *and* processes whose table entry is
        // already gone: a process retired concurrently (see
        // [`System::retire_terminated_shared`]) may have been reclaimed
        // by the collector before this pass runs, and retaining its
        // dangling ref would leak it from tracking forever.
        procs.retain(|p| match self.space.process(*p).map(|s| s.status) {
            Ok(ProcessStatus::Terminated) | Err(_) => false,
            Ok(_) => true,
        });
        let retired = (before - procs.len()) as u32;
        self.processes = procs;
        retired
    }

    /// Shared-space variant of [`System::retire_terminated`], for use
    /// *during* a threaded run: scans the root directory through a
    /// [`i432_arch::SpaceAgent`], clearing the anchor of every process
    /// that has reached `Terminated`. The exclusive variant needs `&mut
    /// System`, which only exists outside a run; this one can race
    /// freely with mutator threads and the parallel collector's markers
    /// — a process retired mid-mark was shaded by the cycle's scan (or
    /// will be re-found gray by verification) and is therefore
    /// reclaimed by a *later* cycle, never the one in flight.
    ///
    /// Retires at most `limit` processes per call (pass `u32::MAX` for
    /// all), so harnesses can stagger retirement in waves against the
    /// collector's cycle phases. Returns the retired process refs.
    /// Completion tracking is not touched (the `System` is disassembled
    /// during a run); callers reconcile afterwards with
    /// [`System::retire_terminated`], which also drops refs whose
    /// objects the collector already reclaimed.
    pub fn retire_terminated_shared(
        shared: &i432_arch::SharedSpace,
        root_dir: ObjectRef,
        limit: u32,
    ) -> Vec<ObjectRef> {
        use i432_arch::{SpaceAccess, SpaceAccessExt};
        let mut agent = shared.agent();
        let mut retired = Vec::new();
        for slot in 0..ROOT_DIR_SLOTS {
            if retired.len() as u32 >= limit {
                break;
            }
            let Ok(Some(ad)) = agent.load_ad_hw(root_dir, slot) else {
                continue;
            };
            if matches!(
                agent.with_process(ad.obj, |s| s.status),
                Ok(ProcessStatus::Terminated)
            ) {
                // Between the status read and this clear the process
                // cannot be revived (Terminated is final) and cannot be
                // reclaimed (the anchor still holds it); double
                // retirement from a racing thread just clears an
                // already-empty slot.
                let _ = agent.store_ad_hw(root_dir, slot, None);
                retired.push(ad.obj);
            }
        }
        retired
    }

    /// Removes every anchor for `obj` from the root directory (the object
    /// becomes collectable once no live process references it).
    pub fn unanchor(&mut self, obj: ObjectRef) {
        for slot in 0..ROOT_DIR_SLOTS {
            if let Ok(Some(ad)) = self.space.load_ad_hw(self.root_dir, slot) {
                if ad.obj == obj {
                    let _ = self.space.store_ad_hw(self.root_dir, slot, None);
                }
            }
        }
        self.processes.retain(|p| *p != obj);
        self.services.retain(|p| *p != obj);
    }

    /// The system dispatching port.
    pub fn dispatch_port(&self) -> ObjectRef {
        self.dispatch_port
    }

    /// An access descriptor for the system dispatching port.
    pub fn dispatch_ad(&self) -> AccessDescriptor {
        self.space.mint(self.dispatch_port, Rights::NONE)
    }

    /// The processor objects, in id order.
    pub fn processors(&self) -> Vec<ObjectRef> {
        self.gdps.iter().map(|g| g.cpu).collect()
    }

    /// Registered (spawned) processes.
    pub fn processes(&self) -> &[ObjectRef] {
        &self.processes
    }

    /// Total steps executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Simulated time: the furthest local clock.
    pub fn now(&self) -> u64 {
        self.gdps.iter().map(|g| g.clock).max().unwrap_or(0)
    }

    /// Installs an instruction body and returns a subprogram descriptor
    /// for it.
    pub fn subprogram(
        &mut self,
        name: &str,
        code: Vec<Instruction>,
        ctx_data_len: u32,
        ctx_access_len: u32,
    ) -> Subprogram {
        let cr = self.code.install(code);
        Subprogram {
            name: name.into(),
            body: CodeBody::Interpreted(cr),
            ctx_data_len,
            ctx_access_len,
        }
    }

    /// Creates a domain object with the given subprograms, returning a
    /// call-rights access descriptor for it.
    pub fn install_domain(
        &mut self,
        name: &str,
        subprograms: Vec<Subprogram>,
        owned_slots: u32,
    ) -> AccessDescriptor {
        let root = self.space.root_sro();
        let dom = self
            .space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: owned_slots,
                    otype: ObjectType::System(SystemType::Domain),
                    level: None,
                    sys: SysState::Domain(DomainState {
                        name: name.into(),
                        subprograms,
                    }),
                },
            )
            .expect("domain allocation");
        let ad = self.space.mint(dom, Rights::CALL);
        self.anchor(ad);
        ad
    }

    /// Spawns a process running `subprogram` of `domain`, enters it into
    /// the dispatching mix, and registers it for quiescence tracking.
    pub fn spawn(
        &mut self,
        domain: AccessDescriptor,
        subprogram: u32,
        arg: Option<AccessDescriptor>,
    ) -> ObjectRef {
        let dispatch = self.dispatch_ad();
        self.spawn_with(domain, subprogram, arg, ProcessSpec::new(dispatch))
    }

    /// [`System::spawn`] with an explicit process specification.
    pub fn spawn_with(
        &mut self,
        domain: AccessDescriptor,
        subprogram: u32,
        arg: Option<AccessDescriptor>,
        spec: ProcessSpec,
    ) -> ObjectRef {
        // Round-robin the process's home shard: its process object,
        // contexts and local heap all allocate from that shard's root
        // SRO, so independent processes touch independent stripes.
        let home = self.next_home % self.space.shard_count();
        self.next_home = self.next_home.wrapping_add(1);
        let root = self.space.root_sro_of(home);
        let p = make_process(&mut self.space, root, domain, subprogram, arg, spec)
            .expect("process creation");
        port::make_ready(&mut self.space, p).expect("dispatch enqueue");
        self.anchor(self.space.mint(p, Rights::CONTROL));
        self.processes.push(p);
        p
    }

    /// Advances the least-advanced active processor by one step. Returns
    /// `None` when every processor is halted.
    pub fn step(&mut self) -> Option<(u32, StepEvent)> {
        // Pick the active GDP with the minimum local clock (ties broken by
        // index — deterministic).
        let mut pick: Option<usize> = None;
        for (i, g) in self.gdps.iter().enumerate() {
            let halted = matches!(
                self.space.processor(g.cpu).map(|p| p.status),
                Ok(ProcessorStatus::Halted)
            );
            if halted {
                continue;
            }
            if pick.map(|p| g.clock < self.gdps[p].clock).unwrap_or(true) {
                pick = Some(i);
            }
        }
        let i = pick?;
        // Fire expired receive timeouts before advancing: a blocked
        // process whose deadline predates the least-advanced clock can
        // never be rescued by a message in its past.
        let now = self.gdps[i].clock;
        self.fire_timers(now);
        let gdp = &mut self.gdps[i];
        let cpu_id = self.space.processor(gdp.cpu).map(|p| p.id).unwrap_or(0);
        let event = {
            let mut env = Env {
                space: &mut self.space,
                code: &self.code,
                natives: &self.natives,
                bus: &mut self.bus,
                cost: self.cost,
            };
            gdp.step(&mut env)
        };
        self.steps += 1;
        // Arm the timer for a process that just blocked on a timed
        // receive.
        if let StepEvent::Blocked(p) = &event {
            if let Ok(ps) = self.space.process(*p) {
                if ps.timeout_at > 0 {
                    self.timers.push(Reverse((ps.timeout_at, *p)));
                }
            }
        }
        self.trace.record(TraceEntry {
            cpu: cpu_id,
            clock: self.gdps[i].clock,
            event: event.clone(),
        });
        Some((cpu_id, event))
    }

    /// Expires timed receives whose deadline is at or before `now`: the
    /// process is pulled out of the port's waiting area, faulted with a
    /// timeout, and delivered to its fault port (terminated if none).
    fn fire_timers(&mut self, now: u64) {
        while let Some(Reverse((deadline, p))) = self.timers.peek().copied() {
            if deadline > now {
                break;
            }
            self.timers.pop();
            // Stale entries (the rendezvous won, or the process died)
            // are skipped: timeout_at was cleared or changed.
            let armed = self
                .space
                .process(p)
                .map(|ps| ps.timeout_at == deadline)
                .unwrap_or(false);
            if !armed {
                continue;
            }
            match port::expire_timeout(&mut self.space, p) {
                Ok(true) => {
                    let _ = deliver_fault(&mut self.space, p);
                }
                Ok(false) => {}
                Err(_) => {}
            }
        }
    }

    /// Runs until the predicate returns true, quiescence, or the step
    /// budget is exhausted.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        mut stop: impl FnMut(u32, &StepEvent) -> bool,
    ) -> RunOutcome {
        // Quiescence: every processor's most recent step was an idle
        // poll (or it is halted). A single busy processor keeps the
        // system live no matter how often its peers poll empty ports.
        let mut idle = vec![false; self.gdps.len()];
        for _ in 0..max_steps {
            let Some((cpu, event)) = self.step() else {
                return RunOutcome::Quiescent;
            };
            match &event {
                StepEvent::Idle | StepEvent::Halted => {
                    if let Some(f) = idle.get_mut(cpu as usize) {
                        *f = true;
                    }
                }
                StepEvent::SystemError { fault, .. } => {
                    return RunOutcome::SystemError(fault.clone());
                }
                _ => {
                    if let Some(f) = idle.get_mut(cpu as usize) {
                        *f = false;
                    }
                }
            }
            if stop(cpu, &event) {
                return RunOutcome::Stopped;
            }
            if idle.iter().all(|f| *f) {
                return RunOutcome::Quiescent;
            }
        }
        RunOutcome::BudgetExhausted
    }

    /// Runs until every registered process has terminated (or a budget /
    /// error stop).
    pub fn run_to_completion(&mut self, max_steps: u64) -> RunOutcome {
        let procs = self.processes.clone();
        let mut remaining: usize = procs
            .iter()
            .filter(|p| {
                !matches!(
                    self.space.process(**p).map(|s| s.status),
                    Ok(ProcessStatus::Terminated)
                )
            })
            .count();
        if remaining == 0 {
            return RunOutcome::Stopped;
        }
        self.run_until(max_steps, |_, e| {
            if matches!(e, StepEvent::ProcessExited(_)) {
                remaining = remaining.saturating_sub(1);
            }
            remaining == 0
        })
    }

    /// Runs until quiescent.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> RunOutcome {
        self.run_until(max_steps, |_, _| false)
    }

    /// Status of one registered process.
    pub fn status_of(&self, p: ObjectRef) -> Option<ProcessStatus> {
        self.space.process(p).ok().map(|s| s.status)
    }

    /// Aggregate busy/idle cycles over all processors.
    pub fn utilization(&self) -> (u64, u64) {
        let mut busy = 0;
        let mut idle = 0;
        for g in &self.gdps {
            if let Ok(p) = self.space.processor(g.cpu) {
                busy += p.busy_cycles;
                idle += p.idle_cycles;
            }
        }
        (busy, idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_gdp::ProgramBuilder;

    /// A domain with one subprogram that burns `per_iter` cycles for
    /// `iters` iterations, then halts.
    fn worker_domain(sys: &mut System, iters: u64, per_iter: u32) -> AccessDescriptor {
        use i432_gdp::isa::{AluOp, DataDst, DataRef};
        let mut p = ProgramBuilder::new();
        let top = p.new_label();
        p.mov(DataRef::Imm(iters), DataDst::Local(0));
        p.bind(top);
        p.work(per_iter);
        p.alu(
            AluOp::Sub,
            DataRef::Local(0),
            DataRef::Imm(1),
            DataDst::Local(0),
        );
        p.jump_if_nonzero(DataRef::Local(0), top);
        p.halt();
        let sub = sys.subprogram("work", p.finish(), 64, 8);
        sys.install_domain("worker", vec![sub], 0)
    }

    #[test]
    fn single_process_runs_to_completion() {
        let mut sys = System::new(&SystemConfig::small());
        let dom = worker_domain(&mut sys, 10, 100);
        let p = sys.spawn(dom, 0, None);
        let outcome = sys.run_to_completion(100_000);
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(sys.status_of(p), Some(ProcessStatus::Terminated));
        assert!(sys.now() > 0);
    }

    #[test]
    fn two_processors_halve_parallel_makespan() {
        let elapsed = |cpus: u32| {
            let mut sys = System::new(&SystemConfig::small().with_processors(cpus));
            let dom = worker_domain(&mut sys, 200, 500);
            for _ in 0..4 {
                sys.spawn(dom, 0, None);
            }
            let outcome = sys.run_to_completion(10_000_000);
            assert_eq!(outcome, RunOutcome::Stopped, "{cpus} cpus");
            sys.now()
        };
        let t1 = elapsed(1);
        let t2 = elapsed(2);
        let speedup = t1 as f64 / t2 as f64;
        assert!(
            speedup > 1.6,
            "2 processors should nearly halve the makespan (got {speedup:.2}x)"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut sys = System::new(&SystemConfig::small().with_processors(3));
            let dom = worker_domain(&mut sys, 50, 200);
            for _ in 0..5 {
                sys.spawn(dom, 0, None);
            }
            sys.run_to_completion(10_000_000);
            (sys.now(), sys.steps(), sys.utilization())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn retire_terminated_frees_anchor_slots_and_tracking() {
        let mut sys = System::new(&SystemConfig::small());
        let dom = worker_domain(&mut sys, 5, 50);
        for _ in 0..10 {
            sys.spawn(dom, 0, None);
        }
        assert_eq!(sys.run_to_completion(1_000_000), RunOutcome::Stopped);
        assert_eq!(sys.retire_terminated(), 10);
        assert!(sys.processes().is_empty());
        // A second pass finds nothing, and spawning keeps working (the
        // anchor slots really were released).
        assert_eq!(sys.retire_terminated(), 0);
        let p = sys.spawn(dom, 0, None);
        assert_eq!(sys.run_to_completion(1_000_000), RunOutcome::Stopped);
        assert_eq!(sys.status_of(p), Some(ProcessStatus::Terminated));
    }

    #[test]
    fn quiescence_detected_when_nothing_to_run() {
        let mut sys = System::new(&SystemConfig::small().with_processors(2));
        let outcome = sys.run_to_quiescence(10_000);
        assert_eq!(outcome, RunOutcome::Quiescent);
    }

    #[test]
    fn utilization_accounts_busy_and_idle() {
        let mut sys = System::new(&SystemConfig::small().with_processors(2));
        let dom = worker_domain(&mut sys, 10, 100);
        sys.spawn(dom, 0, None); // only one process: second cpu idles
        sys.run_to_completion(1_000_000);
        let (busy, idle) = sys.utilization();
        assert!(busy > 0);
        assert!(idle > 0);
    }

    #[test]
    fn bus_contention_slows_execution() {
        let elapsed = |buses: usize| {
            let mut sys = System::new(
                &SystemConfig::small()
                    .with_processors(8)
                    .with_buses(buses, 2),
            );
            // Memory-heavy workload: lots of Mov locals.
            use i432_gdp::isa::{AluOp, DataDst, DataRef};
            let mut p = ProgramBuilder::new();
            let top = p.new_label();
            p.mov(DataRef::Imm(300), DataDst::Local(0));
            p.bind(top);
            p.mov(DataRef::Local(0), DataDst::Local(8));
            p.mov(DataRef::Local(8), DataDst::Local(16));
            p.alu(
                AluOp::Sub,
                DataRef::Local(0),
                DataRef::Imm(1),
                DataDst::Local(0),
            );
            p.jump_if_nonzero(DataRef::Local(0), top);
            p.halt();
            let sub = sys.subprogram("memhog", p.finish(), 64, 8);
            let dom = sys.install_domain("memhog", vec![sub], 0);
            for _ in 0..8 {
                sys.spawn(dom, 0, None);
            }
            assert_eq!(sys.run_to_completion(50_000_000), RunOutcome::Stopped);
            sys.now()
        };
        let narrow = elapsed(1);
        let wide = elapsed(16);
        assert!(
            narrow > wide,
            "1 bus ({narrow}) should be slower than 16 buses ({wide})"
        );
    }
}
