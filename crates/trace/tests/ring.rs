//! Ring-buffer unit suite: wraparound overwrite semantics, overflow
//! counter accuracy, cross-thread drain-while-emit safety, and merge
//! determinism for equal-cycle events.
//!
//! The [`Ring`] and [`Timeline`] data structures are compiled
//! unconditionally, so this suite runs in both feature configurations;
//! only the global-recorder tests at the bottom need `--features trace`.

use i432_trace::{DrainedRecord, Event, EventKind, Ring, Timeline, TimelineEvent};

fn ev(cycle: u64, cpu: u16, obj: u32) -> Event {
    Event {
        cycle,
        obj,
        kind: EventKind::PortSend,
        cpu,
    }
}

// -- Wraparound overwrite semantics -----------------------------------------

#[test]
fn ring_keeps_everything_until_full() {
    let ring = Ring::new(8);
    for i in 0..8 {
        ring.push(ev(i, 0, i as u32));
    }
    let got = ring.drain();
    assert_eq!(got.len(), 8);
    assert_eq!(ring.overwritten(), 0);
    for (i, r) in got.iter().enumerate() {
        assert_eq!(r.seq, i as u64);
        assert_eq!(r.event.cycle, i as u64);
    }
}

#[test]
fn wraparound_overwrites_oldest_first() {
    let ring = Ring::new(8);
    for i in 0..13 {
        ring.push(ev(i, 0, i as u32));
    }
    let got = ring.drain();
    // The last 8 records survive, oldest first; records 0..5 are gone.
    assert_eq!(got.len(), 8);
    assert_eq!(
        got.iter().map(|r| r.event.cycle).collect::<Vec<_>>(),
        (5..13).collect::<Vec<_>>()
    );
    assert_eq!(got.first().unwrap().seq, 5);
}

#[test]
fn capacity_rounds_up_to_power_of_two() {
    let ring = Ring::new(5);
    assert_eq!(ring.capacity(), 8);
    let ring = Ring::new(0);
    assert_eq!(ring.capacity(), 2);
}

#[test]
fn clear_resets_to_empty() {
    let ring = Ring::new(8);
    for i in 0..20 {
        ring.push(ev(i, 0, 0));
    }
    ring.clear();
    assert_eq!(ring.drain(), Vec::<DrainedRecord>::new());
    assert_eq!(ring.emitted(), 0);
    assert_eq!(ring.overwritten(), 0);
    // Usable again after the reset, from position zero.
    ring.push(ev(7, 1, 2));
    let got = ring.drain();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].seq, 0);
    assert_eq!(got[0].event, ev(7, 1, 2));
}

// -- Overflow counter accuracy ----------------------------------------------

#[test]
fn overflow_counter_counts_exactly_the_overwritten_records() {
    let ring = Ring::new(16);
    assert_eq!(ring.overwritten(), 0);
    for i in 0..16 {
        ring.push(ev(i, 0, 0));
        assert_eq!(ring.overwritten(), 0, "no loss until the ring is full");
    }
    for i in 0..100u64 {
        ring.push(ev(16 + i, 0, 0));
        assert_eq!(ring.overwritten(), i + 1);
    }
    assert_eq!(ring.emitted(), 116);
    assert_eq!(ring.drain().len(), 16);
}

// -- Cross-thread drain-while-emit safety -----------------------------------

/// One producer hammers the ring while a drainer snapshots it
/// continuously. Every drained record must be internally consistent
/// (cycle == obj by construction — a torn record would break the
/// equality), sequences must be strictly increasing within a drain, and
/// the final drain must see exactly the tail of the emission stream.
#[test]
fn drain_while_emit_never_yields_torn_records() {
    const TOTAL: u64 = 200_000;
    let ring = Ring::new(256);
    std::thread::scope(|scope| {
        let producer = scope.spawn(|| {
            for i in 0..TOTAL {
                ring.push(ev(i, 3, i as u32));
            }
        });
        // Sample `is_finished` *before* draining so the loop always
        // runs at least once and the last drain happens after the
        // producer completed (a single-core host may run the producer
        // to completion before this thread is scheduled at all).
        let mut done = false;
        while !done {
            done = producer.is_finished();
            let got = ring.drain();
            let mut prev_seq = None;
            for r in &got {
                assert_eq!(
                    u64::from(r.event.obj),
                    r.event.cycle,
                    "torn record: cycle and obj were written together"
                );
                assert_eq!(r.event.cpu, 3);
                if let Some(p) = prev_seq {
                    assert!(r.seq > p, "drained sequences must be increasing");
                }
                prev_seq = Some(r.seq);
            }
        }
        producer.join().unwrap();
    });
    let last = ring.drain();
    assert_eq!(last.len(), 256, "final drain sees a full ring");
    assert_eq!(
        last.iter().map(|r| r.seq).collect::<Vec<_>>(),
        (TOTAL - 256..TOTAL).collect::<Vec<_>>()
    );
    assert_eq!(ring.overwritten(), TOTAL - 256);
}

/// A targeted interleaving: the producer wraps *past* the region the
/// drainer reads, forcing the seqlock to reject the overwritten slots
/// instead of mixing generations.
#[test]
fn drain_racing_a_wrapping_producer_skips_rather_than_mixes() {
    let ring = Ring::new(8);
    for round in 0..1000u64 {
        for i in 0..8 {
            ring.push(ev(round * 8 + i, 0, (round * 8 + i) as u32));
        }
        let got = ring.drain();
        for r in &got {
            assert_eq!(u64::from(r.event.obj), r.event.cycle);
        }
    }
}

// -- Merge determinism for equal-cycle events -------------------------------

fn tev(cycle: u64, cpu: u16, seq: u64, kind: EventKind, obj: u32) -> TimelineEvent {
    TimelineEvent {
        cycle,
        cpu,
        seq,
        kind,
        obj,
    }
}

#[test]
fn merge_orders_by_cycle_then_cpu_then_seq() {
    let a = tev(10, 1, 0, EventKind::PortSend, 1);
    let b = tev(10, 0, 5, EventKind::PortReceive, 2);
    let c = tev(10, 0, 2, EventKind::Dispatch, 3);
    let d = tev(9, 7, 9, EventKind::SroAlloc, 4);
    let merged = Timeline::merge(vec![a, b, c, d], 0);
    assert_eq!(merged.events, vec![d, c, b, a]);
}

#[test]
fn merge_is_deterministic_for_any_input_permutation() {
    // A batch with heavy cycle collisions across cpus and rings.
    let mut events = Vec::new();
    for cpu in 0..4u16 {
        for seq in 0..16u64 {
            events.push(tev(
                seq / 4, // four events per cycle per cpu
                cpu,
                seq,
                EventKind::ALL[(seq as usize + cpu as usize) % EventKind::ALL.len()],
                (seq as u32) * 100 + u32::from(cpu),
            ));
        }
    }
    let reference = Timeline::merge(events.clone(), 0);
    // Every rotation (and a reversal) of the input must merge identically.
    for rot in 0..events.len() {
        let mut perm = events.clone();
        perm.rotate_left(rot);
        assert_eq!(Timeline::merge(perm, 0), reference);
    }
    let mut rev = events;
    rev.reverse();
    assert_eq!(Timeline::merge(rev, 0), reference);
    // And the order is really (cycle, cpu, seq)-sorted.
    for w in reference.events.windows(2) {
        assert!((w[0].cycle, w[0].cpu, w[0].seq) <= (w[1].cycle, w[1].cpu, w[1].seq));
    }
}

#[test]
fn replay_view_filters_and_renumbers_per_cpu() {
    // Raw seqs carry arbitrary per-ring offsets (ring reuse across
    // thread lifetimes); the replay view must erase them.
    let t = Timeline::merge(
        vec![
            tev(1, 0, 4094, EventKind::ShardLock, 1),
            tev(2, 0, 4095, EventKind::QualHit, 1), // not schedule-deterministic
            tev(3, 0, 4096, EventKind::ShardLockPair, 2),
            tev(1, 1, 0, EventKind::ShardLock, 3),
            tev(2, 1, 1, EventKind::GcShadeGray, 3), // not schedule-deterministic
            tev(4, 1, 2, EventKind::SroAlloc, 9),
        ],
        0,
    );
    assert_eq!(
        t.replay_view(),
        vec![
            tev(1, 0, 0, EventKind::ShardLock, 1),
            tev(1, 1, 0, EventKind::ShardLock, 3),
            tev(3, 0, 1, EventKind::ShardLockPair, 2),
            tev(4, 1, 1, EventKind::SroAlloc, 9),
        ]
    );
}

#[test]
fn exports_render_all_fields() {
    let t = Timeline::merge(
        vec![
            tev(8, 0, 0, EventKind::DomainCall, 7),
            tev(16, 1, 0, EventKind::GcSweepReclaim, 9),
        ],
        3,
    );
    let json = t.to_json();
    assert!(json.contains("\"dropped\": 3"));
    assert!(json.contains("\"kind\": \"domain_call\""));
    assert!(json.contains("\"obj\": 9"));
    assert!(json.contains("\"counters\""));
    let chrome = t.to_chrome();
    assert!(chrome.starts_with("[\n"));
    // 8 cycles at 8 MHz = 1 microsecond.
    assert!(chrome.contains("\"ts\": 1.000"));
    assert!(chrome.contains("\"tid\": 1"));
}

// -- The global recorder (needs the feature) --------------------------------

#[cfg(feature = "trace")]
mod recorder {
    use i432_trace::{
        bump, drain_timeline, emit, reset, set_context, set_cycle, snapshot, test_guard, Counter,
        EventKind,
    };

    #[test]
    fn emit_stamps_context_and_merges_across_threads() {
        let _guard = test_guard();
        reset();
        set_context(2, 100);
        emit(EventKind::PortSend, 11);
        set_cycle(200);
        emit(EventKind::PortReceive, 11);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                set_context(1, 150);
                emit(EventKind::SroAlloc, 42);
            });
        });
        let t = drain_timeline();
        let got: Vec<_> = t.events.iter().map(|e| (e.cycle, e.cpu, e.kind)).collect();
        assert_eq!(
            got,
            vec![
                (100, 2, EventKind::PortSend),
                (150, 1, EventKind::SroAlloc),
                (200, 2, EventKind::PortReceive),
            ]
        );
        assert_eq!(t.dropped, 0);
        reset();
        assert!(drain_timeline().events.is_empty());
    }

    #[test]
    fn counters_register_and_reset() {
        let _guard = test_guard();
        reset();
        bump(Counter::DomainCalls);
        bump(Counter::DomainCalls);
        i432_trace::observe(i432_trace::Hist::DomainCallCycles, 520);
        let s = snapshot();
        assert_eq!(s.get(Counter::DomainCalls), 2);
        assert_eq!(s.hist_total(i432_trace::Hist::DomainCallCycles), 1);
        reset();
        assert_eq!(snapshot().get(Counter::DomainCalls), 0);
    }
}

#[cfg(not(feature = "trace"))]
mod disabled {
    use i432_trace::{drain_timeline, emit, set_context, snapshot, Counter, EventKind, ENABLED};

    /// The off configuration records nothing and reports empty state —
    /// the inlined-no-op contract.
    #[test]
    fn off_mode_records_nothing() {
        assert_eq!(ENABLED, cfg!(feature = "trace"));
        set_context(1, 99);
        emit(EventKind::PortSend, 5);
        i432_trace::bump(Counter::PortSends);
        assert!(drain_timeline().events.is_empty());
        assert_eq!(snapshot().get(Counter::PortSends), 0);
    }
}
