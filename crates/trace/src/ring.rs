//! The single-producer flight-recorder ring.
//!
//! Each slot is a tiny seqlock: the writer marks it odd, writes the two
//! data words, then marks it even with the slot's absolute position
//! encoded in the tag. A drainer (any thread, any time) validates a
//! record by reading the tag, the data, then the tag again — equal even
//! tags for the expected position mean a consistent record; anything
//! else means the producer overwrote or is mid-write, and the drainer
//! skips the slot rather than block. Neither side ever takes a lock.
//!
//! The ring holds the *last* [`RING_CAPACITY`] records: a full ring
//! wraps and overwrites the oldest. [`Ring::overwritten`] reports how
//! many records were lost that way.

use crate::event::Event;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Records per ring. Power of two so the wrap is a mask. Sized so the
/// busiest single simulated processor in the test workloads (tens of
/// thousands of records: one instruction can emit several qualification
/// and shard-lock events) fits without wraparound, while the whole pool
/// stays a few tens of megabytes — and only in `--features trace`
/// builds.
pub const RING_CAPACITY: usize = 1 << 16;

/// A record as drained from a ring: the event plus its per-ring
/// sequence number (absolute emission position), the deterministic
/// third merge key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainedRecord {
    /// Absolute emission position within this ring (0-based).
    pub seq: u64,
    /// The record itself.
    pub event: Event,
}

struct Slot {
    /// Seqlock tag: `0` = never written; `(pos << 1) | 1` = write for
    /// absolute position `pos` in progress; `(pos + 1) << 1` = slot
    /// holds the record emitted at position `pos`.
    seq: AtomicU64,
    w0: AtomicU64,
    w1: AtomicU64,
}

/// A lock-free single-producer ring of 16-byte records.
///
/// Exactly one thread may call [`Ring::push`] at a time (the recorder
/// enforces this by leasing each ring to one thread); any number of
/// threads may [`Ring::drain`] concurrently.
pub struct Ring {
    slots: Box<[Slot]>,
    /// Total records ever pushed (the next absolute position).
    head: AtomicU64,
    capacity: usize,
}

impl Default for Ring {
    fn default() -> Ring {
        Ring::new(RING_CAPACITY)
    }
}

impl Ring {
    /// A ring holding the last `capacity` records (rounded up to a power
    /// of two, minimum 2).
    pub fn new(capacity: usize) -> Ring {
        let capacity = capacity.next_power_of_two().max(2);
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                w0: AtomicU64::new(0),
                w1: AtomicU64::new(0),
            })
            .collect();
        Ring {
            slots,
            head: AtomicU64::new(0),
            capacity,
        }
    }

    /// Records this ring can hold before wrapping.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever pushed.
    pub fn emitted(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records lost to wraparound overwrite so far.
    pub fn overwritten(&self) -> u64 {
        self.emitted().saturating_sub(self.capacity as u64)
    }

    /// Appends a record, overwriting the oldest if the ring is full.
    ///
    /// Single-producer: only the leasing thread calls this, so a plain
    /// load/store pair on `head` is race-free; the per-slot seqlock is
    /// what protects concurrent drainers.
    pub fn push(&self, event: Event) {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(pos as usize) & (self.capacity - 1)];
        let (w0, w1) = event.pack();
        slot.seq.store((pos << 1) | 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.w0.store(w0, Ordering::Relaxed);
        slot.w1.store(w1, Ordering::Relaxed);
        // Publishes the data words before the even tag.
        slot.seq.store((pos + 1) << 1, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
    }

    /// Snapshots every consistent record still in the ring, oldest
    /// first, without disturbing the producer. Records the producer
    /// overwrites or is rewriting during the snapshot are skipped (they
    /// reappear — newer — on a later drain or are gone for good; either
    /// way `overwritten()` accounts for them).
    pub fn drain(&self) -> Vec<DrainedRecord> {
        let head = self.head.load(Ordering::Acquire);
        let lo = head.saturating_sub(self.capacity as u64);
        let mut out = Vec::with_capacity((head - lo) as usize);
        for pos in lo..head {
            let slot = &self.slots[(pos as usize) & (self.capacity - 1)];
            let tag = (pos + 1) << 1;
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != tag {
                continue;
            }
            let w0 = slot.w0.load(Ordering::Relaxed);
            let w1 = slot.w1.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s2 != tag {
                continue;
            }
            if let Some(event) = Event::unpack(w0, w1) {
                out.push(DrainedRecord { seq: pos, event });
            }
        }
        out
    }

    /// Resets the ring to empty. The caller must guarantee no concurrent
    /// producer (the recorder only resets between runs).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Release);
    }
}
