//! The deterministic merged timeline and its export formats.

use crate::counters::{snapshot, Hist};
use crate::event::EventKind;
use std::fmt::Write as _;

/// One record in the merged timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimelineEvent {
    /// Simulated cycle of the emitting processor.
    pub cycle: u64,
    /// Emitting processor id.
    pub cpu: u16,
    /// Per-ring emission sequence (third merge key).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Object index the event concerns.
    pub obj: u32,
}

/// The merged flight-recorder timeline.
///
/// **Merge rule:** events are ordered by `(simulated cycle, processor
/// id, per-ring sequence)`, with `(kind, obj)` as final tie-breakers so
/// the comparator is total over record *values*. The order is therefore
/// a pure function of the recorded values — two runs that emit the same
/// per-processor event streams produce bit-identical timelines no
/// matter how the host scheduler interleaved them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// Events in merged order.
    pub events: Vec<TimelineEvent>,
    /// Records lost to ring wraparound or pool exhaustion.
    pub dropped: u64,
}

impl Timeline {
    /// Merges drained records into deterministic order.
    pub fn merge(mut events: Vec<TimelineEvent>, dropped: u64) -> Timeline {
        events.sort_unstable_by_key(|e| (e.cycle, e.cpu, e.seq, e.kind, e.obj));
        Timeline { events, dropped }
    }

    /// The schedule-replay view: only kinds that are a pure function of
    /// each processor's operation stream (see
    /// [`EventKind::is_schedule_deterministic`]), with `seq` renumbered
    /// per processor. Two replays of the same explorer schedule must
    /// agree on this view exactly.
    ///
    /// The renumbering is what makes the view replay-stable: raw `seq`
    /// is a *ring* position, and the recorder pools rings across thread
    /// lifetimes — a thread that leases a ring a finished thread
    /// returned continues from the previous occupant's head, so the raw
    /// offset depends on host scheduling. Within one processor the
    /// offset is constant (a thread keeps its lease for life) and both
    /// `cycle` and raw `seq` increase in emission order, so the merged
    /// per-processor order *is* the emission order; renumbering each
    /// processor's filtered stream `0..n` in that order yields a pure
    /// function of the stream's values.
    pub fn replay_view(&self) -> Vec<TimelineEvent> {
        let mut next: std::collections::HashMap<u16, u64> = std::collections::HashMap::new();
        self.events
            .iter()
            .filter(|e| e.kind.is_schedule_deterministic())
            .map(|e| {
                let n = next.entry(e.cpu).or_insert(0);
                let seq = *n;
                *n += 1;
                TimelineEvent { seq, ..*e }
            })
            .collect()
    }

    /// Events of one kind, in timeline order.
    pub fn of_kind(&self, kind: EventKind) -> Vec<TimelineEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.kind == kind)
            .collect()
    }

    /// Serializes the timeline (plus the counters registry) as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"trace\": \"i432\",\n");
        let _ = writeln!(out, "  \"dropped\": {},", self.dropped);
        let snap = snapshot();
        out.push_str("  \"counters\": {");
        for (i, c) in crate::Counter::ALL.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": {}",
                if i == 0 { "" } else { ", " },
                c.name(),
                snap.get(*c)
            );
        }
        out.push_str("},\n");
        out.push_str("  \"histograms\": {");
        for (i, h) in Hist::ALL.iter().enumerate() {
            let _ = write!(out, "{}\"{}\": [", if i == 0 { "" } else { ", " }, h.name());
            // Buckets above the last non-empty one are elided.
            let buckets = &snap.hists[*h as usize];
            let last = buckets.iter().rposition(|&b| b > 0).map_or(0, |p| p + 1);
            for (j, b) in buckets[..last.max(1)].iter().enumerate() {
                let _ = write!(out, "{}{b}", if j == 0 { "" } else { ", " });
            }
            out.push(']');
        }
        out.push_str("},\n");
        out.push_str("  \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"cycle\": {}, \"cpu\": {}, \"seq\": {}, \"kind\": \"{}\", \"obj\": {}}}{}",
                e.cycle,
                e.cpu,
                e.seq,
                e.kind.name(),
                e.obj,
                if i + 1 < self.events.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the timeline in chrome://tracing "trace event" format
    /// (a JSON array of instant events; load via the `Load` button in
    /// chrome://tracing or https://ui.perfetto.dev). Timestamps are
    /// microseconds at the 432's 8 MHz clock; each processor renders as
    /// a thread.
    pub fn to_chrome(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {{\"name\": \"{}\", \"ph\": \"i\", \"ts\": {:.3}, \"pid\": 0, \
                 \"tid\": {}, \"s\": \"t\", \"args\": {{\"obj\": {}, \"seq\": {}}}}}{}",
                e.kind.name(),
                e.cycle as f64 / 8.0,
                e.cpu,
                e.obj,
                e.seq,
                if i + 1 < self.events.len() { "," } else { "" }
            );
        }
        out.push_str("]\n");
        out
    }
}
