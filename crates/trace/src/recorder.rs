//! The global recorder: a pool of per-thread rings plus the thread-local
//! emission context.
//!
//! A thread's first [`emit`] leases it a ring from a fixed pool (the
//! lease returns to the pool when the thread exits), so each ring has
//! exactly one producer — the lock-free SPSC discipline [`Ring`]
//! relies on. The *processor id* stamped into each record comes from
//! [`set_context`], which the GDP interpreter calls at step boundaries
//! with its processor's id and simulated clock; host-level setup code
//! that never sets a context emits under id 0 at cycle 0.
//!
//! Everything here compiles to inlined no-ops without the `trace`
//! feature.

use crate::ring::Ring;
#[cfg(feature = "trace")]
use crate::ring::RING_CAPACITY;
use crate::timeline::Timeline;
use crate::EventKind;
#[cfg(feature = "trace")]
use crate::{Event, TimelineEvent};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Whether the `trace` feature is compiled in. Branching on this
/// constant lets an emit site compute non-trivial arguments inside a
/// block the compiler removes entirely in the off configuration.
pub const ENABLED: bool = cfg!(feature = "trace");

/// Concurrent producer threads the pool supports. A thread arriving
/// when every ring is leased emits nothing (counted as dropped).
/// Leases return at thread exit, so this bounds *simultaneous*
/// producers: the widest configuration (8 simulated processors, a few
/// explorer workers, the driving thread) stays well under it.
#[cfg(feature = "trace")]
const POOL_RINGS: usize = 16;

#[cfg(feature = "trace")]
struct Pool {
    rings: Vec<Ring>,
    free: Mutex<Vec<usize>>,
    dropped_threads: std::sync::atomic::AtomicU64,
}

#[cfg(feature = "trace")]
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        rings: (0..POOL_RINGS).map(|_| Ring::new(RING_CAPACITY)).collect(),
        free: Mutex::new((0..POOL_RINGS).rev().collect()),
        dropped_threads: std::sync::atomic::AtomicU64::new(0),
    })
}

#[cfg(feature = "trace")]
mod tls {
    use super::pool;
    use std::cell::Cell;

    /// Returns the leased ring index to the pool at thread exit.
    pub(super) struct Lease(pub(super) usize);

    impl Drop for Lease {
        fn drop(&mut self) {
            if let Ok(mut free) = pool().free.lock() {
                free.push(self.0);
            }
        }
    }

    thread_local! {
        /// `(processor id, simulated cycle)` stamped into emitted records.
        pub(super) static CTX: Cell<(u16, u64)> = const { Cell::new((0, 0)) };
        /// This thread's leased ring, acquired on first emit.
        /// `usize::MAX` = not yet acquired; `usize::MAX - 1` = pool
        /// exhausted, emit nothing.
        pub(super) static RING: Cell<usize> = const { Cell::new(usize::MAX) };
        /// Holds the lease so the ring frees on thread exit.
        pub(super) static LEASE: std::cell::RefCell<Option<Lease>> =
            const { std::cell::RefCell::new(None) };
    }
}

/// Sets this thread's emission context: the processor id and its current
/// simulated cycle. Inlined no-op without the `trace` feature.
#[inline(always)]
pub fn set_context(cpu: u16, cycle: u64) {
    #[cfg(feature = "trace")]
    tls::CTX.with(|c| c.set((cpu, cycle)));
    #[cfg(not(feature = "trace"))]
    let _ = (cpu, cycle);
}

/// Updates only the simulated cycle of this thread's context.
#[inline(always)]
pub fn set_cycle(cycle: u64) {
    #[cfg(feature = "trace")]
    tls::CTX.with(|c| {
        let (cpu, _) = c.get();
        c.set((cpu, cycle));
    });
    #[cfg(not(feature = "trace"))]
    let _ = cycle;
}

/// Records one event under the current thread context. Inlined no-op
/// without the `trace` feature.
#[inline(always)]
pub fn emit(kind: EventKind, obj: u32) {
    #[cfg(feature = "trace")]
    emit_slow(kind, obj);
    #[cfg(not(feature = "trace"))]
    let _ = (kind, obj);
}

#[cfg(feature = "trace")]
fn emit_slow(kind: EventKind, obj: u32) {
    let idx = tls::RING.with(|r| {
        let mut idx = r.get();
        if idx == usize::MAX {
            idx = match pool().free.lock().ok().and_then(|mut f| f.pop()) {
                Some(i) => i,
                None => {
                    pool()
                        .dropped_threads
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    usize::MAX - 1
                }
            };
            if idx != usize::MAX - 1 {
                tls::LEASE.with(|l| *l.borrow_mut() = Some(tls::Lease(idx)));
            }
            r.set(idx);
        }
        idx
    });
    if idx == usize::MAX - 1 {
        return;
    }
    let (cpu, cycle) = tls::CTX.with(|c| c.get());
    pool().rings[idx].push(Event {
        cycle,
        obj,
        kind,
        cpu,
    });
}

/// Snapshots every ring and merges the records into one deterministic
/// timeline (see [`Timeline`]). Always available; empty without the
/// `trace` feature.
pub fn drain_timeline() -> Timeline {
    #[cfg(feature = "trace")]
    {
        let p = pool();
        let mut events: Vec<TimelineEvent> = Vec::new();
        let mut dropped = 0;
        for ring in &p.rings {
            dropped += ring.overwritten();
            events.extend(ring.drain().into_iter().map(|r| TimelineEvent {
                cycle: r.event.cycle,
                cpu: r.event.cpu,
                seq: r.seq,
                kind: r.event.kind,
                obj: r.event.obj,
            }));
        }
        dropped += p.dropped_threads.load(std::sync::atomic::Ordering::Relaxed);
        Timeline::merge(events, dropped)
    }
    #[cfg(not(feature = "trace"))]
    Timeline::merge(Vec::new(), 0)
}

/// Clears every ring and the counters registry. Call only between runs
/// — concurrent producers would interleave stale and fresh positions.
/// No-op without the `trace` feature.
pub fn reset() {
    #[cfg(feature = "trace")]
    {
        let p = pool();
        for ring in &p.rings {
            ring.clear();
        }
        p.dropped_threads
            .store(0, std::sync::atomic::Ordering::Relaxed);
    }
    crate::counters::reset_counters();
}

/// Serializes tests that assert on the *global* recorder state. The
/// recorder is process-wide, so concurrently running `cargo test`
/// threads would interleave events; any test that calls [`reset`] and
/// then asserts on [`drain_timeline`] or counter values must hold this
/// guard for its whole body.
pub fn test_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

// Referenced only so the `Ring` import is used in the off configuration.
#[cfg(not(feature = "trace"))]
const _: fn(usize) -> Ring = Ring::new;
