//! # i432-trace — the flight-recorder observability layer
//!
//! The paper's central quantitative claims are *per-event* costs (~65 µs
//! domain switches, ~80 µs SRO allocations, "identical code" for typed
//! vs. untyped ports), so this crate records the kernel's hot-path
//! events individually: a lock-free, per-processor ring-buffer flight
//! recorder (in the spirit of KUtrace-style per-CPU event rings) plus a
//! counters/histograms registry.
//!
//! ## Event model
//!
//! Every event is a fixed **16-byte record**: `(simulated cycle: u64,
//! object index: u32, kind: u16, processor id: u16)` — see [`Event`].
//! Producers append to a per-thread ring ([`Ring`]) leased from a global
//! pool; each ring has exactly one writer, so emission is a handful of
//! relaxed atomic stores bracketed by a per-slot seqlock that lets a
//! concurrent drainer detect torn records. Full rings wrap around,
//! overwriting the oldest records — flight-recorder semantics — and
//! count what they dropped.
//!
//! ## Deterministic merge
//!
//! [`drain_timeline`] snapshots every ring and merges the records into
//! one timeline ordered by **(simulated cycle, processor id, per-ring
//! sequence)**. Because the sort key is a pure function of the record
//! values (never of host timing), the merged order is deterministic for
//! any run whose per-processor event streams are deterministic — which
//! is exactly what the conformance explorer's seeded schedule replay
//! relies on.
//!
//! ## The zero-overhead "off" mode
//!
//! Without the `trace` cargo feature, [`emit`], [`set_context`],
//! [`bump`] and [`observe`] compile to `#[inline(always)]` empty
//! functions — the same mechanism that makes the paper's typed ports
//! free: the cost is removed *at compile time*, not skipped at runtime.
//! A differential test builds the workspace both ways and proves the
//! deterministic C1/C2 cycle counts are bit-identical.

#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod recorder;
pub mod ring;
pub mod timeline;

pub use counters::{
    bump, bump_by, bump_max, observe, record_pair, reset_counters, snapshot, Counter,
    CountersSnapshot, Hist, PAIR_DIM,
};
pub use event::{Event, EventKind};
pub use recorder::{drain_timeline, emit, reset, set_context, set_cycle, test_guard, ENABLED};
pub use ring::{DrainedRecord, Ring, RING_CAPACITY};
pub use timeline::{Timeline, TimelineEvent};
