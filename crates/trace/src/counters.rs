//! The counters/histograms registry.
//!
//! Counters are enum-indexed atomic cells — no string lookup on a hot
//! path, ever. Histograms bucket by `log2(value)`, which is plenty to
//! see whether domain switches cluster at the paper's ~520 cycles.
//! Like the recorder, [`bump`] and [`observe`] are inlined no-ops
//! without the `trace` feature; [`snapshot`] always works (it reports
//! zeroes when tracing is compiled out).

#[cfg(feature = "trace")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
#[allow(missing_docs)] // Names mirror the EventKind taxonomy one-to-one.
pub enum Counter {
    InstrExecuted,
    Dispatches,
    DomainCalls,
    DomainReturns,
    PortSends,
    PortReceives,
    PortSurrogates,
    SroAllocs,
    ShardLocks,
    ShardLockPairs,
    ShardLockAll,
    QualHits,
    QualMisses,
    QualInvalidations,
    GcIncrements,
    GcShadeGrays,
    GcSweepReclaims,
    TypeChecks,
    ProcBlocks,
    ProcFaults,
    ProcExits,
    TableLeafPages,
    TableEvictions,
    TableOccupancyPeak,
    GcSweepPages,
    GcParMarkSteps,
    GcMarkSteals,
    GcMarkEmptySteals,
    PortFastSends,
    PortFastReceives,
    PortRingFallbacks,
    PortRingDrains,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = Counter::PortRingDrains as usize + 1;

/// Log2-bucketed cycle/size histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Hist {
    /// Cycles charged per inter-domain CALL (paper: ~520 at 8 MHz).
    DomainCallCycles,
    /// Cycles charged per inter-domain RETURN.
    DomainReturnCycles,
    /// Data bytes per SRO allocation.
    AllocDataBytes,
    /// Ring occupancy observed at each locked-path drain of a port
    /// ring (queue depth the fast path built up between locked ops).
    PortQueueDepth,
}

/// Number of [`Hist`] variants.
pub const HIST_COUNT: usize = Hist::PortQueueDepth as usize + 1;

/// Buckets per histogram: bucket `i` holds values with `log2(v) == i`
/// (value 0 lands in bucket 0).
pub const HIST_BUCKETS: usize = 32;

#[cfg(feature = "trace")]
#[allow(clippy::declare_interior_mutable_const)] // Array-init pattern for statics.
const ZERO: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "trace")]
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; HIST_BUCKETS] = [ZERO; HIST_BUCKETS];
#[cfg(feature = "trace")]
static COUNTERS: [AtomicU64; COUNTER_COUNT] = [ZERO; COUNTER_COUNT];
#[cfg(feature = "trace")]
static HISTS: [[AtomicU64; HIST_BUCKETS]; HIST_COUNT] = [ZERO_ROW; HIST_COUNT];

impl Counter {
    /// All counters, in index order.
    pub const ALL: &'static [Counter] = &[
        Counter::InstrExecuted,
        Counter::Dispatches,
        Counter::DomainCalls,
        Counter::DomainReturns,
        Counter::PortSends,
        Counter::PortReceives,
        Counter::PortSurrogates,
        Counter::SroAllocs,
        Counter::ShardLocks,
        Counter::ShardLockPairs,
        Counter::ShardLockAll,
        Counter::QualHits,
        Counter::QualMisses,
        Counter::QualInvalidations,
        Counter::GcIncrements,
        Counter::GcShadeGrays,
        Counter::GcSweepReclaims,
        Counter::TypeChecks,
        Counter::ProcBlocks,
        Counter::ProcFaults,
        Counter::ProcExits,
        Counter::TableLeafPages,
        Counter::TableEvictions,
        Counter::TableOccupancyPeak,
        Counter::GcSweepPages,
        Counter::GcParMarkSteps,
        Counter::GcMarkSteals,
        Counter::GcMarkEmptySteals,
        Counter::PortFastSends,
        Counter::PortFastReceives,
        Counter::PortRingFallbacks,
        Counter::PortRingDrains,
    ];

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::InstrExecuted => "instr_executed",
            Counter::Dispatches => "dispatches",
            Counter::DomainCalls => "domain_calls",
            Counter::DomainReturns => "domain_returns",
            Counter::PortSends => "port_sends",
            Counter::PortReceives => "port_receives",
            Counter::PortSurrogates => "port_surrogates",
            Counter::SroAllocs => "sro_allocs",
            Counter::ShardLocks => "shard_locks",
            Counter::ShardLockPairs => "shard_lock_pairs",
            Counter::ShardLockAll => "shard_lock_all",
            Counter::QualHits => "qual_hits",
            Counter::QualMisses => "qual_misses",
            Counter::QualInvalidations => "qual_invalidations",
            Counter::GcIncrements => "gc_increments",
            Counter::GcShadeGrays => "gc_shade_grays",
            Counter::GcSweepReclaims => "gc_sweep_reclaims",
            Counter::TypeChecks => "type_checks",
            Counter::ProcBlocks => "proc_blocks",
            Counter::ProcFaults => "proc_faults",
            Counter::ProcExits => "proc_exits",
            Counter::TableLeafPages => "table_leaf_pages",
            Counter::TableEvictions => "table_evictions",
            Counter::TableOccupancyPeak => "table_occupancy_peak",
            Counter::GcSweepPages => "gc_sweep_pages",
            Counter::GcParMarkSteps => "gc_par_mark_steps",
            Counter::GcMarkSteals => "gc_mark_steals",
            Counter::GcMarkEmptySteals => "gc_mark_empty_steals",
            Counter::PortFastSends => "port_fast_sends",
            Counter::PortFastReceives => "port_fast_receives",
            Counter::PortRingFallbacks => "port_ring_fallbacks",
            Counter::PortRingDrains => "port_ring_drains",
        }
    }
}

impl Hist {
    /// All histograms, in index order.
    pub const ALL: &'static [Hist] = &[
        Hist::DomainCallCycles,
        Hist::DomainReturnCycles,
        Hist::AllocDataBytes,
        Hist::PortQueueDepth,
    ];

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Hist::DomainCallCycles => "domain_call_cycles",
            Hist::DomainReturnCycles => "domain_return_cycles",
            Hist::AllocDataBytes => "alloc_data_bytes",
            Hist::PortQueueDepth => "port_queue_depth",
        }
    }
}

/// Increments a counter. Inlined no-op without the `trace` feature.
#[inline(always)]
pub fn bump(c: Counter) {
    #[cfg(feature = "trace")]
    COUNTERS[c as usize].fetch_add(1, Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = c;
}

/// Raises a high-water-mark counter to at least `v` (gauge semantics:
/// `fetch_max`, not add). Inlined no-op without the `trace` feature.
#[inline(always)]
pub fn bump_max(c: Counter, v: u64) {
    #[cfg(feature = "trace")]
    COUNTERS[c as usize].fetch_max(v, Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = (c, v);
}

/// Adds `n` to a counter. Inlined no-op without the `trace` feature.
#[inline(always)]
pub fn bump_by(c: Counter, n: u64) {
    #[cfg(feature = "trace")]
    COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = (c, n);
}

/// Records a value in a histogram. Inlined no-op without the `trace`
/// feature.
#[inline(always)]
pub fn observe(h: Hist, value: u64) {
    #[cfg(feature = "trace")]
    {
        let bucket = (63 - value.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        HISTS[h as usize][bucket].fetch_add(1, Ordering::Relaxed);
    }
    #[cfg(not(feature = "trace"))]
    let _ = (h, value);
}

/// A point-in-time copy of every counter and histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Counter values, indexed by `Counter as usize`.
    pub counters: [u64; COUNTER_COUNT],
    /// Histogram buckets, indexed by `Hist as usize`.
    pub hists: [[u64; HIST_BUCKETS]; HIST_COUNT],
}

impl CountersSnapshot {
    /// One counter's value.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// One histogram's total observation count.
    pub fn hist_total(&self, h: Hist) -> u64 {
        self.hists[h as usize].iter().sum()
    }
}

/// Copies the registry. Always available; all-zero when the `trace`
/// feature is compiled out.
pub fn snapshot() -> CountersSnapshot {
    #[cfg_attr(not(feature = "trace"), allow(unused_mut))]
    let mut s = CountersSnapshot {
        counters: [0; COUNTER_COUNT],
        hists: [[0; HIST_BUCKETS]; HIST_COUNT],
    };
    #[cfg(feature = "trace")]
    {
        for (i, c) in COUNTERS.iter().enumerate() {
            s.counters[i] = c.load(Ordering::Relaxed);
        }
        for (i, h) in HISTS.iter().enumerate() {
            for (j, b) in h.iter().enumerate() {
                s.hists[i][j] = b.load(Ordering::Relaxed);
            }
        }
    }
    s
}

/// Zeroes the registry (between measured runs).
pub fn reset_counters() {
    #[cfg(feature = "trace")]
    {
        for c in COUNTERS.iter() {
            c.store(0, Ordering::Relaxed);
        }
        for h in HISTS.iter() {
            for b in h.iter() {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}
