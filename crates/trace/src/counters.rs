//! The counters/histograms registry.
//!
//! Counters are enum-indexed atomic cells — no string lookup on a hot
//! path, ever. Histograms bucket by `log2(value)`, which is plenty to
//! see whether domain switches cluster at the paper's ~520 cycles.
//! Like the recorder, [`bump`] and [`observe`] are inlined no-ops
//! without the `trace` feature; [`snapshot`] always works (it reports
//! zeroes when tracing is compiled out).

#[cfg(feature = "trace")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
#[allow(missing_docs)] // Names mirror the EventKind taxonomy one-to-one.
pub enum Counter {
    InstrExecuted,
    Dispatches,
    DomainCalls,
    DomainReturns,
    PortSends,
    PortReceives,
    PortSurrogates,
    SroAllocs,
    ShardLocks,
    ShardLockPairs,
    ShardLockAll,
    QualHits,
    QualMisses,
    QualInvalidations,
    GcIncrements,
    GcShadeGrays,
    GcSweepReclaims,
    TypeChecks,
    ProcBlocks,
    ProcFaults,
    ProcExits,
    TableLeafPages,
    TableEvictions,
    TableOccupancyPeak,
    GcSweepPages,
    GcParMarkSteps,
    GcMarkSteals,
    GcMarkEmptySteals,
    PortFastSends,
    PortFastReceives,
    PortRingFallbacks,
    PortRingDrains,
    FusionHits,
    BlockDecodes,
    IcHits,
    IcMisses,
    IcFlushes,
    BlkSubmits,
    BlkCompletions,
    NetRx,
    NetTx,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = Counter::NetTx as usize + 1;

/// Log2-bucketed cycle/size histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Hist {
    /// Cycles charged per inter-domain CALL (paper: ~520 at 8 MHz).
    DomainCallCycles,
    /// Cycles charged per inter-domain RETURN.
    DomainReturnCycles,
    /// Data bytes per SRO allocation.
    AllocDataBytes,
    /// Ring occupancy observed at each locked-path drain of a port
    /// ring (queue depth the fast path built up between locked ops).
    PortQueueDepth,
    /// Simulated cycles from filing-request submission to completion
    /// delivery (the filing server's request-latency distribution).
    FilingRequestCycles,
}

/// Number of [`Hist`] variants.
pub const HIST_COUNT: usize = Hist::FilingRequestCycles as usize + 1;

/// Buckets per histogram: bucket `i` holds values with `log2(v) == i`
/// (value 0 lands in bucket 0).
pub const HIST_BUCKETS: usize = 32;

#[cfg(feature = "trace")]
#[allow(clippy::declare_interior_mutable_const)] // Array-init pattern for statics.
const ZERO: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "trace")]
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; HIST_BUCKETS] = [ZERO; HIST_BUCKETS];
#[cfg(feature = "trace")]
static COUNTERS: [AtomicU64; COUNTER_COUNT] = [ZERO; COUNTER_COUNT];
#[cfg(feature = "trace")]
static HISTS: [[AtomicU64; HIST_BUCKETS]; HIST_COUNT] = [ZERO_ROW; HIST_COUNT];

/// Side length of the opcode-pair matrix: pair indices are opcode ids
/// modulo this (the GDP ISA has fewer than `PAIR_DIM` opcodes, so in
/// practice no aliasing occurs).
pub const PAIR_DIM: usize = 32;

#[cfg(feature = "trace")]
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_PAIR_ROW: [AtomicU64; PAIR_DIM] = [ZERO; PAIR_DIM];
#[cfg(feature = "trace")]
static PAIRS: [[AtomicU64; PAIR_DIM]; PAIR_DIM] = [ZERO_PAIR_ROW; PAIR_DIM];

impl Counter {
    /// All counters, in index order.
    pub const ALL: &'static [Counter] = &[
        Counter::InstrExecuted,
        Counter::Dispatches,
        Counter::DomainCalls,
        Counter::DomainReturns,
        Counter::PortSends,
        Counter::PortReceives,
        Counter::PortSurrogates,
        Counter::SroAllocs,
        Counter::ShardLocks,
        Counter::ShardLockPairs,
        Counter::ShardLockAll,
        Counter::QualHits,
        Counter::QualMisses,
        Counter::QualInvalidations,
        Counter::GcIncrements,
        Counter::GcShadeGrays,
        Counter::GcSweepReclaims,
        Counter::TypeChecks,
        Counter::ProcBlocks,
        Counter::ProcFaults,
        Counter::ProcExits,
        Counter::TableLeafPages,
        Counter::TableEvictions,
        Counter::TableOccupancyPeak,
        Counter::GcSweepPages,
        Counter::GcParMarkSteps,
        Counter::GcMarkSteals,
        Counter::GcMarkEmptySteals,
        Counter::PortFastSends,
        Counter::PortFastReceives,
        Counter::PortRingFallbacks,
        Counter::PortRingDrains,
        Counter::FusionHits,
        Counter::BlockDecodes,
        Counter::IcHits,
        Counter::IcMisses,
        Counter::IcFlushes,
        Counter::BlkSubmits,
        Counter::BlkCompletions,
        Counter::NetRx,
        Counter::NetTx,
    ];

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::InstrExecuted => "instr_executed",
            Counter::Dispatches => "dispatches",
            Counter::DomainCalls => "domain_calls",
            Counter::DomainReturns => "domain_returns",
            Counter::PortSends => "port_sends",
            Counter::PortReceives => "port_receives",
            Counter::PortSurrogates => "port_surrogates",
            Counter::SroAllocs => "sro_allocs",
            Counter::ShardLocks => "shard_locks",
            Counter::ShardLockPairs => "shard_lock_pairs",
            Counter::ShardLockAll => "shard_lock_all",
            Counter::QualHits => "qual_hits",
            Counter::QualMisses => "qual_misses",
            Counter::QualInvalidations => "qual_invalidations",
            Counter::GcIncrements => "gc_increments",
            Counter::GcShadeGrays => "gc_shade_grays",
            Counter::GcSweepReclaims => "gc_sweep_reclaims",
            Counter::TypeChecks => "type_checks",
            Counter::ProcBlocks => "proc_blocks",
            Counter::ProcFaults => "proc_faults",
            Counter::ProcExits => "proc_exits",
            Counter::TableLeafPages => "table_leaf_pages",
            Counter::TableEvictions => "table_evictions",
            Counter::TableOccupancyPeak => "table_occupancy_peak",
            Counter::GcSweepPages => "gc_sweep_pages",
            Counter::GcParMarkSteps => "gc_par_mark_steps",
            Counter::GcMarkSteals => "gc_mark_steals",
            Counter::GcMarkEmptySteals => "gc_mark_empty_steals",
            Counter::PortFastSends => "port_fast_sends",
            Counter::PortFastReceives => "port_fast_receives",
            Counter::PortRingFallbacks => "port_ring_fallbacks",
            Counter::PortRingDrains => "port_ring_drains",
            Counter::FusionHits => "fusion_hits",
            Counter::BlockDecodes => "block_decodes",
            Counter::IcHits => "ic_hits",
            Counter::IcMisses => "ic_misses",
            Counter::IcFlushes => "ic_flushes",
            Counter::BlkSubmits => "blk_submits",
            Counter::BlkCompletions => "blk_completions",
            Counter::NetRx => "net_rx",
            Counter::NetTx => "net_tx",
        }
    }
}

impl Hist {
    /// All histograms, in index order.
    pub const ALL: &'static [Hist] = &[
        Hist::DomainCallCycles,
        Hist::DomainReturnCycles,
        Hist::AllocDataBytes,
        Hist::PortQueueDepth,
        Hist::FilingRequestCycles,
    ];

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Hist::DomainCallCycles => "domain_call_cycles",
            Hist::DomainReturnCycles => "domain_return_cycles",
            Hist::AllocDataBytes => "alloc_data_bytes",
            Hist::PortQueueDepth => "port_queue_depth",
            Hist::FilingRequestCycles => "filing_request_cycles",
        }
    }
}

/// Increments a counter. Inlined no-op without the `trace` feature.
#[inline(always)]
pub fn bump(c: Counter) {
    #[cfg(feature = "trace")]
    COUNTERS[c as usize].fetch_add(1, Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = c;
}

/// Raises a high-water-mark counter to at least `v` (gauge semantics:
/// `fetch_max`, not add). Inlined no-op without the `trace` feature.
#[inline(always)]
pub fn bump_max(c: Counter, v: u64) {
    #[cfg(feature = "trace")]
    COUNTERS[c as usize].fetch_max(v, Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = (c, v);
}

/// Adds `n` to a counter. Inlined no-op without the `trace` feature.
#[inline(always)]
pub fn bump_by(c: Counter, n: u64) {
    #[cfg(feature = "trace")]
    COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = (c, n);
}

/// Records one dynamic opcode pair `(prev, cur)` — two instructions
/// retired back-to-back on the same processor. The resulting matrix is
/// the profile that picks fusion candidates: the hottest cells name the
/// pairs worth turning into superinstructions. Inlined no-op without
/// the `trace` feature.
#[inline(always)]
pub fn record_pair(prev: u8, cur: u8) {
    #[cfg(feature = "trace")]
    PAIRS[prev as usize % PAIR_DIM][cur as usize % PAIR_DIM].fetch_add(1, Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = (prev, cur);
}

/// Records a value in a histogram. Inlined no-op without the `trace`
/// feature.
#[inline(always)]
pub fn observe(h: Hist, value: u64) {
    #[cfg(feature = "trace")]
    {
        let bucket = (63 - value.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        HISTS[h as usize][bucket].fetch_add(1, Ordering::Relaxed);
    }
    #[cfg(not(feature = "trace"))]
    let _ = (h, value);
}

/// A point-in-time copy of every counter and histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Counter values, indexed by `Counter as usize`.
    pub counters: [u64; COUNTER_COUNT],
    /// Histogram buckets, indexed by `Hist as usize`.
    pub hists: [[u64; HIST_BUCKETS]; HIST_COUNT],
    /// Opcode-pair counts, indexed `[prev][cur]` by opcode id.
    pub pairs: [[u64; PAIR_DIM]; PAIR_DIM],
}

impl CountersSnapshot {
    /// One counter's value.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// One histogram's total observation count.
    pub fn hist_total(&self, h: Hist) -> u64 {
        self.hists[h as usize].iter().sum()
    }

    /// All nonzero opcode pairs as `(prev, cur, count)`, hottest first —
    /// the fusion-candidate profile in ready-to-rank form.
    pub fn hot_pairs(&self) -> Vec<(u8, u8, u64)> {
        let mut v = Vec::new();
        for (p, row) in self.pairs.iter().enumerate() {
            for (c, n) in row.iter().enumerate() {
                if *n > 0 {
                    v.push((p as u8, c as u8, *n));
                }
            }
        }
        v.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
        v
    }
}

/// Copies the registry. Always available; all-zero when the `trace`
/// feature is compiled out.
pub fn snapshot() -> CountersSnapshot {
    #[cfg_attr(not(feature = "trace"), allow(unused_mut))]
    let mut s = CountersSnapshot {
        counters: [0; COUNTER_COUNT],
        hists: [[0; HIST_BUCKETS]; HIST_COUNT],
        pairs: [[0; PAIR_DIM]; PAIR_DIM],
    };
    #[cfg(feature = "trace")]
    {
        for (i, c) in COUNTERS.iter().enumerate() {
            s.counters[i] = c.load(Ordering::Relaxed);
        }
        for (i, h) in HISTS.iter().enumerate() {
            for (j, b) in h.iter().enumerate() {
                s.hists[i][j] = b.load(Ordering::Relaxed);
            }
        }
        for (i, row) in PAIRS.iter().enumerate() {
            for (j, b) in row.iter().enumerate() {
                s.pairs[i][j] = b.load(Ordering::Relaxed);
            }
        }
    }
    s
}

/// Zeroes the registry (between measured runs).
pub fn reset_counters() {
    #[cfg(feature = "trace")]
    {
        for c in COUNTERS.iter() {
            c.store(0, Ordering::Relaxed);
        }
        for h in HISTS.iter() {
            for b in h.iter() {
                b.store(0, Ordering::Relaxed);
            }
        }
        for row in PAIRS.iter() {
            for b in row.iter() {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_counters_and_filing_hist_count() {
        let _guard = crate::recorder::test_guard();
        reset_counters();
        bump(Counter::BlkSubmits);
        bump(Counter::BlkSubmits);
        bump(Counter::BlkCompletions);
        bump_by(Counter::NetRx, 3);
        bump_by(Counter::NetTx, 5);
        // Latencies 1, 2, and 1000 cycles land in log2 buckets 0, 1, 9.
        observe(Hist::FilingRequestCycles, 1);
        observe(Hist::FilingRequestCycles, 2);
        observe(Hist::FilingRequestCycles, 1000);
        let snap = snapshot();
        if cfg!(feature = "trace") {
            assert_eq!(snap.get(Counter::BlkSubmits), 2);
            assert_eq!(snap.get(Counter::BlkCompletions), 1);
            assert_eq!(snap.get(Counter::NetRx), 3);
            assert_eq!(snap.get(Counter::NetTx), 5);
            assert_eq!(snap.hist_total(Hist::FilingRequestCycles), 3);
            let row = snap.hists[Hist::FilingRequestCycles as usize];
            assert_eq!(row[0], 1);
            assert_eq!(row[1], 1);
            assert_eq!(row[9], 1, "1000 cycles buckets at log2 = 9");
            reset_counters();
        } else {
            assert_eq!(snap.get(Counter::BlkSubmits), 0, "compiled out");
            assert_eq!(snap.hist_total(Hist::FilingRequestCycles), 0);
        }
        // Names are stable export keys — exercised so the match arms
        // can't silently drift from the enum.
        assert_eq!(Counter::BlkSubmits.name(), "blk_submits");
        assert_eq!(Counter::BlkCompletions.name(), "blk_completions");
        assert_eq!(Counter::NetRx.name(), "net_rx");
        assert_eq!(Counter::NetTx.name(), "net_tx");
        assert_eq!(Hist::FilingRequestCycles.name(), "filing_request_cycles");
    }

    #[test]
    fn pair_counting_ranks_hot_pairs_first() {
        let _guard = crate::recorder::test_guard();
        reset_counters();
        // (1, 3) twice, (22, 1) once; ids > PAIR_DIM wrap by modulo.
        record_pair(1, 3);
        record_pair(1, 3);
        record_pair(22, 1);
        record_pair(PAIR_DIM as u8 + 1, 3);
        let snap = snapshot();
        if cfg!(feature = "trace") {
            assert_eq!(snap.pairs[1][3], 3, "two direct + one wrapped");
            assert_eq!(snap.pairs[22][1], 1);
            let hot = snap.hot_pairs();
            assert_eq!(hot[0], (1, 3, 3), "hottest pair ranks first: {hot:?}");
            assert!(hot.contains(&(22, 1, 1)));
            reset_counters();
            assert_eq!(snapshot().pairs[1][3], 0, "reset clears the matrix");
        } else {
            assert_eq!(snap.pairs[1][3], 0, "compiled out: matrix stays zero");
            assert!(snap.hot_pairs().is_empty());
        }
    }
}
