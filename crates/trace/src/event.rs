//! The 16-byte event record and the event taxonomy.

/// What happened. The numeric values are stable — they appear in
/// exported JSON and in ring memory — so new kinds must only be
/// appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// One GDP instruction executed (obj = process).
    InstrExec = 1,
    /// A process was dispatched onto a processor (obj = process).
    Dispatch = 2,
    /// Inter-domain CALL — the paper's ~65 µs event (obj = new context).
    DomainCall = 3,
    /// Matching inter-domain RETURN (obj = resumed context).
    DomainReturn = 4,
    /// Port send (obj = port).
    PortSend = 5,
    /// Port receive (obj = port).
    PortReceive = 6,
    /// Surrogate/carrier operation — process delivery to the dispatch
    /// port, timeout carriers (obj = port).
    PortSurrogate = 7,
    /// Segment allocated from an SRO — the paper's ~80 µs event
    /// (obj = the new object).
    SroAlloc = 8,
    /// A single shard lock acquired (obj = shard index).
    ShardLock = 9,
    /// A canonical-order two-shard lock pair acquired (obj = the lower
    /// shard index of the pair).
    ShardLockPair = 10,
    /// An all-shard atomic section entered (obj = shard count).
    ShardLockAll = 11,
    /// Qualification-cache hit on the lock-free fast path (obj = the
    /// qualified object).
    QualHit = 12,
    /// Qualification-cache miss — fell through to the locked path
    /// (obj = the object probed).
    QualMiss = 13,
    /// Qualification-cache invalidation — a shard epoch bump
    /// (obj = shard index).
    QualInval = 14,
    /// Collector entered Mark (obj = completed-cycle count so far).
    GcPhaseMark = 15,
    /// Collector entered Sweep — **mark termination** (obj = completed
    /// cycles so far).
    GcPhaseSweep = 16,
    /// Collector returned to Idle — cycle complete (obj = completed
    /// cycles including this one).
    GcPhaseIdle = 17,
    /// One collector increment ran (obj = gray-stack depth).
    GcIncrement = 18,
    /// An object was shaded White→Gray — the hardware write barrier or
    /// the marker (obj = the shaded object).
    GcShadeGray = 19,
    /// Sweep reclaimed a white object (obj = the reclaimed object).
    GcSweepReclaim = 20,
    /// Runtime-checked port verified a message's type identity
    /// (obj = the message).
    TypeCheck = 21,
    /// A process blocked on a port (obj = process).
    ProcBlock = 22,
    /// A process faulted (obj = process).
    ProcFault = 23,
    /// A process exited (obj = process).
    ProcExit = 24,
    /// A parallel marker stole gray work from another shard's deque
    /// (obj = the victim shard index).
    GcMarkSteal = 25,
    /// Port send completed on the lock-free ring fast path, no shard
    /// lock taken (obj = port).
    PortFastSend = 26,
    /// Port receive completed on the lock-free ring fast path
    /// (obj = port).
    PortFastReceive = 27,
    /// The locked path froze and drained a port's ring before a
    /// rendezvous operation (obj = port).
    PortRingDrain = 28,
}

impl EventKind {
    /// All kinds, in numeric order (for reports and tests).
    pub const ALL: &'static [EventKind] = &[
        EventKind::InstrExec,
        EventKind::Dispatch,
        EventKind::DomainCall,
        EventKind::DomainReturn,
        EventKind::PortSend,
        EventKind::PortReceive,
        EventKind::PortSurrogate,
        EventKind::SroAlloc,
        EventKind::ShardLock,
        EventKind::ShardLockPair,
        EventKind::ShardLockAll,
        EventKind::QualHit,
        EventKind::QualMiss,
        EventKind::QualInval,
        EventKind::GcPhaseMark,
        EventKind::GcPhaseSweep,
        EventKind::GcPhaseIdle,
        EventKind::GcIncrement,
        EventKind::GcShadeGray,
        EventKind::GcSweepReclaim,
        EventKind::TypeCheck,
        EventKind::ProcBlock,
        EventKind::ProcFault,
        EventKind::ProcExit,
        EventKind::GcMarkSteal,
        EventKind::PortFastSend,
        EventKind::PortFastReceive,
        EventKind::PortRingDrain,
    ];

    /// Decodes a raw ring value. Unknown values (a torn or stale slot
    /// that slipped past the seqlock would produce one) return `None`.
    pub fn from_u16(v: u16) -> Option<EventKind> {
        EventKind::ALL.get(v.wrapping_sub(1) as usize).copied()
    }

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::InstrExec => "instr_exec",
            EventKind::Dispatch => "dispatch",
            EventKind::DomainCall => "domain_call",
            EventKind::DomainReturn => "domain_return",
            EventKind::PortSend => "port_send",
            EventKind::PortReceive => "port_receive",
            EventKind::PortSurrogate => "port_surrogate",
            EventKind::SroAlloc => "sro_alloc",
            EventKind::ShardLock => "shard_lock",
            EventKind::ShardLockPair => "shard_lock_pair",
            EventKind::ShardLockAll => "shard_lock_all",
            EventKind::QualHit => "qual_hit",
            EventKind::QualMiss => "qual_miss",
            EventKind::QualInval => "qual_inval",
            EventKind::GcPhaseMark => "gc_phase_mark",
            EventKind::GcPhaseSweep => "gc_phase_sweep",
            EventKind::GcPhaseIdle => "gc_phase_idle",
            EventKind::GcIncrement => "gc_increment",
            EventKind::GcShadeGray => "gc_shade_gray",
            EventKind::GcSweepReclaim => "gc_sweep_reclaim",
            EventKind::TypeCheck => "type_check",
            EventKind::ProcBlock => "proc_block",
            EventKind::ProcFault => "proc_fault",
            EventKind::ProcExit => "proc_exit",
            EventKind::GcMarkSteal => "gc_mark_steal",
            EventKind::PortFastSend => "port_fast_send",
            EventKind::PortFastReceive => "port_fast_receive",
            EventKind::PortRingDrain => "port_ring_drain",
        }
    }

    /// Whether this kind is a pure function of a processor's *operation
    /// stream* (true), as opposed to depending on shared mutable state
    /// whose observer is interleaving-dependent (false).
    ///
    /// Cache hits/misses depend on what other threads invalidated in
    /// between, a White→Gray shade is emitted by whichever thread
    /// touches the object *first*, and a gray-deque steal fires only
    /// when a marker races another shard's owner — so those four are
    /// excluded from the schedule-replay equality rule (DESIGN.md §8).
    /// Whether a port operation completes on the ring fast path or
    /// falls back to the locked rendezvous is likewise a race outcome,
    /// so the ring kinds are excluded too (the semantic `PortSend`/
    /// `PortReceive` events remain deterministic).
    pub fn is_schedule_deterministic(self) -> bool {
        !matches!(
            self,
            EventKind::QualHit
                | EventKind::QualMiss
                | EventKind::GcShadeGray
                | EventKind::GcMarkSteal
                | EventKind::PortFastSend
                | EventKind::PortFastReceive
                | EventKind::PortRingDrain
        )
    }
}

/// One fixed 16-byte flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// Simulated cycle of the emitting processor when the event fired.
    pub cycle: u64,
    /// Object index the event concerns (kind-specific meaning).
    pub obj: u32,
    /// What happened.
    pub kind: EventKind,
    /// Emitting processor id (ring label).
    pub cpu: u16,
}

impl Event {
    /// Packs the record into the two data words a ring slot stores.
    pub fn pack(self) -> (u64, u64) {
        (
            self.cycle,
            u64::from(self.obj) | (u64::from(self.kind as u16) << 32) | (u64::from(self.cpu) << 48),
        )
    }

    /// Unpacks two ring words; `None` for an unknown kind value.
    pub fn unpack(w0: u64, w1: u64) -> Option<Event> {
        Some(Event {
            cycle: w0,
            obj: w1 as u32,
            kind: EventKind::from_u16((w1 >> 32) as u16)?,
            cpu: (w1 >> 48) as u16,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_16_bytes_and_round_trips() {
        assert_eq!(std::mem::size_of::<Event>(), 16);
        for &kind in EventKind::ALL {
            let e = Event {
                cycle: 0xdead_beef_cafe,
                obj: 0x1234_5678,
                kind,
                cpu: 0xabcd,
            };
            let (w0, w1) = e.pack();
            assert_eq!(Event::unpack(w0, w1), Some(e));
            assert_eq!(EventKind::from_u16(kind as u16), Some(kind));
        }
        assert_eq!(EventKind::from_u16(0), None);
        assert_eq!(EventKind::from_u16(EventKind::ALL.len() as u16 + 1), None);
    }
}
