//! The swapping storage manager — iMAX release 2.
//!
//! Paper §6.2/§9: the second release adds swapping behind the *same*
//! interface as the non-swapping manager. Data parts of eligible segments
//! are evicted to a backing store when their SRO runs out of space;
//! programs that touch an absent segment take a `SegmentAbsent` fault,
//! iMAX's fault service asks this manager to bring the segment back, and
//! the process is restarted at the faulting instruction.
//!
//! Design constraints honoured here:
//!
//! * Only *data parts* swap; access parts (the capability topology) stay
//!   resident, so garbage collection and the level rule never depend on
//!   backing-store state.
//! * Only generic and user-typed segments are eligible. System objects —
//!   processes, contexts, ports, domains, SROs, TDOs — are pinned:
//!   "Processes deep within the system ... may depend on the fact that
//!   such a situation will not arise" (paper §7.3).
//! * Eviction is per-SRO: an SRO's space can only be replenished by
//!   evicting segments charged to that same SRO.

use crate::{
    backing::BackingStore,
    iface::{StorageError, StorageManager, StorageStats},
    sro::{create_sro, SroQuota},
};
use i432_arch::{Level, ObjectRef, ObjectSpec, ObjectType, SpaceMut, SysState};

/// Estimated resident bytes of one object-directory leaf page.
const LEAF_PAGE_BYTES: u64 =
    i432_arch::object_table::LEAF_ENTRIES as u64 * std::mem::size_of::<i432_arch::Entry>() as u64;

/// The release-2 manager: eviction + demand swap-in.
#[derive(Debug)]
pub struct SwappingManager {
    /// The backing store (public management interface, per §6.2).
    pub backing: BackingStore,
    /// Resident-memory budget in bytes (0 = unlimited). The footprint
    /// model is directory leaf pages plus resident data parts; when
    /// leaf-page growth pushes the footprint past the budget, cold
    /// eligible segments are evicted until it fits (or nothing evictable
    /// remains — the budget is best-effort, never a fault).
    pub memory_budget_bytes: u64,
    stats: StorageStats,
    pending_cycles: u64,
    clock_hand: u32,
    /// Leaf-page count at the last budget check, so directory growth is
    /// charged to the running estimate exactly once per new page.
    watched_leaf_pages: u32,
    /// Running footprint estimate, maintained in O(1) per operation; the
    /// exact (scanning) recount only happens when the estimate crosses
    /// the budget. `None` until first seeded from a real scan.
    resident_estimate: Option<u64>,
}

impl SwappingManager {
    /// A fresh manager with an empty backing store.
    pub fn new() -> SwappingManager {
        SwappingManager {
            backing: BackingStore::new(),
            memory_budget_bytes: 0,
            stats: StorageStats::default(),
            pending_cycles: 0,
            clock_hand: 0,
            watched_leaf_pages: 0,
            resident_estimate: None,
        }
    }

    /// A manager that holds the resident footprint (directory leaf pages
    /// + resident data parts) under `bytes`.
    pub fn with_memory_budget(bytes: u64) -> SwappingManager {
        SwappingManager {
            memory_budget_bytes: bytes,
            ..SwappingManager::new()
        }
    }

    /// The footprint the budget governs: allocated directory leaf pages
    /// plus the data parts of resident (non-absent) segments.
    pub fn resident_bytes(space: &dyn SpaceMut) -> u64 {
        let mut data = 0u64;
        space.for_each_live(&mut |_, e| {
            if !e.desc.absent {
                data += e.desc.data_len as u64;
            }
        });
        space.leaf_pages() as u64 * LEAF_PAGE_BYTES + data
    }

    /// Folds an operation's growth into the running estimate and, when
    /// it crosses the budget, runs the exact enforcement pass. Directory
    /// (leaf-page) growth is noticed here too, charged once per page.
    fn watch_growth(&mut self, space: &mut dyn SpaceMut, grew_by: u64) {
        if self.memory_budget_bytes == 0 {
            return;
        }
        let pages = space.leaf_pages();
        let est = match self.resident_estimate {
            Some(mut e) => {
                if pages > self.watched_leaf_pages {
                    e += (pages - self.watched_leaf_pages) as u64 * LEAF_PAGE_BYTES;
                }
                e + grew_by
            }
            // First use: seed from a real scan — it already includes
            // whatever this operation just created, and any objects that
            // predate this manager.
            None => Self::resident_bytes(space),
        };
        self.watched_leaf_pages = pages;
        self.resident_estimate = Some(est);
        if est > self.memory_budget_bytes {
            self.enforce_budget(space);
        }
    }

    /// Evicts cold eligible segments until the footprint fits the budget
    /// (same two-pass NRU clock as [`Self::allocate_with_eviction`]).
    fn enforce_budget(&mut self, space: &mut dyn SpaceMut) {
        let budget = self.memory_budget_bytes;
        if budget == 0 {
            return;
        }
        let mut resident = Self::resident_bytes(space);
        'passes: for pass in 0..2 {
            if resident <= budget {
                break 'passes;
            }
            let mut victims: Vec<(ObjectRef, u32)> = Vec::new();
            space.for_each_live(&mut |i, e| {
                if !e.desc.absent && e.desc.data_len > 0 {
                    victims.push((
                        ObjectRef {
                            index: i,
                            generation: e.generation,
                        },
                        e.desc.data_len,
                    ));
                }
            });
            let start = if victims.is_empty() {
                0
            } else {
                (self.clock_hand as usize) % victims.len()
            };
            for k in 0..victims.len() {
                if resident <= budget {
                    break 'passes;
                }
                let (v, len) = victims[(start + k) % victims.len()];
                if !Self::eligible(space, v) {
                    continue;
                }
                if pass == 0 {
                    // First pass: skip (but age) recently used segments.
                    if let Ok(e) = space.entry_mut(v) {
                        if e.desc.accessed {
                            e.desc.accessed = false;
                            continue;
                        }
                    }
                }
                self.clock_hand = self.clock_hand.wrapping_add(1);
                if self.swap_out(space, v).is_ok() {
                    resident -= len as u64;
                    i432_trace::bump(i432_trace::Counter::TableEvictions);
                }
            }
        }
        self.resident_estimate = Some(resident);
    }

    /// Simulated device-transfer cycles accumulated since the last drain
    /// (charged to the requesting process by the caller).
    pub fn drain_cycles(&mut self) -> u64 {
        std::mem::take(&mut self.pending_cycles)
    }

    /// Whether a segment is eligible for eviction.
    fn eligible(space: &dyn SpaceMut, r: ObjectRef) -> bool {
        let Ok(e) = space.entry(r) else {
            return false;
        };
        if e.desc.absent || e.desc.data_len == 0 {
            return false;
        }
        matches!(
            e.desc.otype,
            ObjectType::System(i432_arch::SystemType::Generic) | ObjectType::User(_)
        ) && matches!(e.sys, SysState::Generic)
    }

    /// Evicts one segment's data part to the backing store.
    pub fn swap_out(&mut self, space: &mut dyn SpaceMut, r: ObjectRef) -> Result<(), StorageError> {
        if !Self::eligible(space, r) {
            return Err(StorageError::NotEligible(
                "pinned, absent, or zero-length segment",
            ));
        }
        let (base, len, sro) = {
            let e = space.entry(r)?;
            (e.desc.data_base, e.desc.data_len, e.desc.sro)
        };
        let mut buf = vec![0u8; len as usize];
        space.data_arena(r)?.read(base, &mut buf)?;
        self.pending_cycles += self.backing.write(r, buf);
        // Return the run to the owning SRO.
        if let Some(sro) = sro {
            space.sro_mut(sro)?.data_free.release(base, len)?;
        }
        let e = space.entry_mut(r)?;
        e.desc.absent = true;
        e.desc.accessed = false;
        e.desc.dirty = false;
        self.stats.swap_outs += 1;
        self.resident_estimate = self.resident_estimate.map(|v| v.saturating_sub(len as u64));
        Ok(())
    }

    /// Brings an absent segment's data part back, evicting peers from the
    /// same SRO if necessary.
    pub fn swap_in(&mut self, space: &mut dyn SpaceMut, r: ObjectRef) -> Result<(), StorageError> {
        let (len, sro) = {
            let e = space.entry(r)?;
            if !e.desc.absent {
                return Ok(());
            }
            (e.desc.data_len, e.desc.sro)
        };
        let Some(sro) = sro else {
            return Err(StorageError::NotEligible("absent object without an SRO"));
        };
        let base = self.allocate_with_eviction(space, sro, len, Some(r))?;
        let (data, cycles) = self
            .backing
            .read(r)
            .ok_or(StorageError::NotEligible("no backing page for segment"))?;
        self.pending_cycles += cycles;
        space.data_arena_mut(r)?.write(base, &data)?;
        let e = space.entry_mut(r)?;
        e.desc.data_base = base;
        e.desc.absent = false;
        e.desc.accessed = true;
        self.stats.swap_ins += 1;
        self.resident_estimate = self.resident_estimate.map(|v| v + len as u64);
        Ok(())
    }

    /// Allocates `len` bytes from `sro`, evicting eligible peers (other
    /// than `protect`) as needed.
    fn allocate_with_eviction(
        &mut self,
        space: &mut dyn SpaceMut,
        sro: ObjectRef,
        len: u32,
        protect: Option<ObjectRef>,
    ) -> Result<u32, StorageError> {
        // Fast path.
        if let Ok(base) = space.sro_mut(sro)?.data_free.allocate(len) {
            return Ok(base);
        }
        // Clock sweep over this SRO's residents: first pass takes
        // not-recently-used segments (clearing accessed bits), the second
        // pass takes anything eligible.
        for pass in 0..2 {
            self.stats.eviction_rounds += 1;
            let mut victims: Vec<ObjectRef> = Vec::new();
            space.for_each_live(&mut |i, e| {
                if e.desc.sro == Some(sro) {
                    victims.push(ObjectRef {
                        index: i,
                        generation: e.generation,
                    });
                }
            });
            // Rotate the scan start to spread eviction pressure (the
            // clock hand).
            let start = if victims.is_empty() {
                0
            } else {
                (self.clock_hand as usize) % victims.len()
            };
            for k in 0..victims.len() {
                let v = victims[(start + k) % victims.len()];
                if Some(v) == protect || !Self::eligible(space, v) {
                    continue;
                }
                if pass == 0 {
                    // First pass: skip (but age) recently used segments.
                    let e = space.entry_mut(v)?;
                    if e.desc.accessed {
                        e.desc.accessed = false;
                        continue;
                    }
                }
                self.clock_hand = self.clock_hand.wrapping_add(1);
                self.swap_out(space, v)?;
                if let Ok(base) = space.sro_mut(sro)?.data_free.allocate(len) {
                    return Ok(base);
                }
            }
        }
        // Last resort: the space may exist but be fragmented. Compact
        // (when the SRO is a leaf) and retry once.
        if space.sro(sro)?.data_free.total_free() >= len {
            if let Ok(report) = crate::compact::compact_sro(space, sro) {
                self.pending_cycles += report.sim_cycles;
                self.stats.compactions += 1;
                if let Ok(base) = space.sro_mut(sro)?.data_free.allocate(len) {
                    return Ok(base);
                }
            }
        }
        Err(StorageError::CannotMakeRoom { needed: len })
    }

    /// Drops backing pages whose object no longer exists (reclaimed while
    /// swapped out, e.g. by the garbage collector).
    pub fn scrub(&mut self, space: &dyn SpaceMut) -> usize {
        let mut dead = Vec::new();
        // BackingStore has no iterator by design; scrub via the object
        // table instead: a page is live only while its exact reference
        // resolves.
        let mut live = std::collections::HashSet::new();
        space.for_each_live(&mut |i, e| {
            live.insert(ObjectRef {
                index: i,
                generation: e.generation,
            });
        });
        for key in self.backing.keys() {
            if !live.contains(&key) {
                dead.push(key);
            }
        }
        for key in &dead {
            self.backing.discard(*key);
        }
        dead.len()
    }
}

impl Default for SwappingManager {
    fn default() -> SwappingManager {
        SwappingManager::new()
    }
}

impl StorageManager for SwappingManager {
    fn name(&self) -> &'static str {
        "swapping"
    }

    fn create_object(
        &mut self,
        space: &mut dyn SpaceMut,
        sro: ObjectRef,
        spec: ObjectSpec,
    ) -> Result<ObjectRef, StorageError> {
        let data_len = spec.data_len as u64;
        match space.create_object(sro, spec.clone()) {
            Ok(r) => {
                self.stats.allocated += 1;
                self.watch_growth(space, data_len);
                Ok(r)
            }
            Err(i432_arch::ArchError::ArenaExhausted { .. }) => {
                // Make room by evicting from this SRO, then retry once.
                let base = self.allocate_with_eviction(space, sro, spec.data_len, None)?;
                // Give the carve back and let the normal path re-take it
                // (keeps creation logic in one place).
                space.sro_mut(sro)?.data_free.release(base, spec.data_len)?;
                let r = space.create_object(sro, spec)?;
                self.stats.allocated += 1;
                self.watch_growth(space, data_len);
                Ok(r)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn destroy_object(
        &mut self,
        space: &mut dyn SpaceMut,
        obj: ObjectRef,
    ) -> Result<(), StorageError> {
        let (absent, len) = {
            let e = space.entry(obj)?;
            (e.desc.absent, e.desc.data_len)
        };
        if absent {
            self.backing.discard(obj);
        }
        space.destroy_object(obj)?;
        self.stats.destroyed += 1;
        if !absent {
            self.resident_estimate = self.resident_estimate.map(|v| v.saturating_sub(len as u64));
        }
        Ok(())
    }

    fn create_heap(
        &mut self,
        space: &mut dyn SpaceMut,
        parent: ObjectRef,
        level: Level,
        quota: SroQuota,
    ) -> Result<ObjectRef, StorageError> {
        let r = create_sro(space, parent, level, quota)?;
        self.stats.heaps_created += 1;
        // SROs have no data part; only directory growth can matter here.
        self.watch_growth(space, 0);
        Ok(r)
    }

    fn destroy_heap(
        &mut self,
        space: &mut dyn SpaceMut,
        sro: ObjectRef,
    ) -> Result<u32, StorageError> {
        let n = space.bulk_destroy_sro(sro)?;
        self.stats.heaps_destroyed += 1;
        self.stats.destroyed += n as u64;
        // Any of the heap's objects that were swapped out left pages
        // behind.
        self.scrub(space);
        Ok(n)
    }

    fn ensure_resident(
        &mut self,
        space: &mut dyn SpaceMut,
        obj: ObjectRef,
    ) -> Result<(), StorageError> {
        self.swap_in(space, obj)
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpace, Rights};

    fn tight_space() -> (ObjectSpace, ObjectRef) {
        // Room for about four 256-byte objects in the child SRO.
        let mut space = ObjectSpace::new(8192, 1024, 256);
        let root = space.root_sro();
        let sro = create_sro(
            &mut space,
            root,
            Level(0),
            SroQuota {
                data_bytes: 1024,
                access_slots: 64,
            },
        )
        .unwrap();
        (space, sro)
    }

    #[test]
    fn eviction_makes_room() {
        let (mut space, sro) = tight_space();
        let mut m = SwappingManager::new();
        let mut objs = Vec::new();
        for _ in 0..4 {
            objs.push(
                m.create_object(&mut space, sro, ObjectSpec::generic(256, 2))
                    .unwrap(),
            );
        }
        // A fifth allocation overflows the quota: the manager evicts.
        let fifth = m
            .create_object(&mut space, sro, ObjectSpec::generic(256, 2))
            .unwrap();
        assert!(space.table.get(fifth).is_ok());
        assert!(m.stats().swap_outs >= 1);
        // At least one earlier object is now absent.
        let absent = objs
            .iter()
            .filter(|o| space.table.get(**o).unwrap().desc.absent)
            .count();
        assert!(absent >= 1);
    }

    #[test]
    fn swap_roundtrip_preserves_contents() {
        let (mut space, sro) = tight_space();
        let mut m = SwappingManager::new();
        let obj = m
            .create_object(&mut space, sro, ObjectSpec::generic(64, 0))
            .unwrap();
        let ad = space.mint(obj, Rights::READ | Rights::WRITE);
        space.write_u64(ad, 0, 0xfeed_f00d).unwrap();
        m.swap_out(&mut space, obj).unwrap();
        assert!(matches!(
            space.read_u64(ad, 0),
            Err(i432_arch::ArchError::SegmentAbsent(_))
        ));
        m.swap_in(&mut space, obj).unwrap();
        assert_eq!(space.read_u64(ad, 0).unwrap(), 0xfeed_f00d);
        assert!(m.drain_cycles() > 0, "device transfers cost cycles");
    }

    #[test]
    fn pinned_objects_are_not_evicted() {
        let (mut space, sro) = tight_space();
        let mut m = SwappingManager::new();
        // An SRO (system object) is never eligible.
        assert!(matches!(
            m.swap_out(&mut space, sro),
            Err(StorageError::NotEligible(_))
        ));
    }

    #[test]
    fn clock_prefers_not_recently_used() {
        let (mut space, sro) = tight_space();
        let mut m = SwappingManager::new();
        let a = m
            .create_object(&mut space, sro, ObjectSpec::generic(256, 0))
            .unwrap();
        let b = m
            .create_object(&mut space, sro, ObjectSpec::generic(256, 0))
            .unwrap();
        let c = m
            .create_object(&mut space, sro, ObjectSpec::generic(256, 0))
            .unwrap();
        let d = m
            .create_object(&mut space, sro, ObjectSpec::generic(256, 0))
            .unwrap();
        // Touch a, c, d — b is the cold one.
        for o in [a, c, d] {
            let ad = space.mint(o, Rights::READ);
            let _ = space.read_u64(ad, 0);
        }
        m.create_object(&mut space, sro, ObjectSpec::generic(256, 0))
            .unwrap();
        assert!(
            space.table.get(b).unwrap().desc.absent,
            "the untouched segment should be the victim"
        );
    }

    #[test]
    fn destroy_absent_object_discards_backing() {
        let (mut space, sro) = tight_space();
        let mut m = SwappingManager::new();
        let obj = m
            .create_object(&mut space, sro, ObjectSpec::generic(64, 0))
            .unwrap();
        m.swap_out(&mut space, obj).unwrap();
        assert_eq!(m.backing.resident_pages(), 1);
        m.destroy_object(&mut space, obj).unwrap();
        assert_eq!(m.backing.resident_pages(), 0);
        // Storage accounting stays balanced: we can refill the SRO.
        for _ in 0..4 {
            m.create_object(&mut space, sro, ObjectSpec::generic(256, 2))
                .unwrap();
        }
    }

    #[test]
    fn cannot_make_room_when_everything_pinned() {
        let mut space = ObjectSpace::new(8192, 1024, 256);
        let root = space.root_sro();
        let sro = create_sro(
            &mut space,
            root,
            Level(0),
            SroQuota {
                data_bytes: 256,
                access_slots: 16,
            },
        )
        .unwrap();
        let mut m = SwappingManager::new();
        assert!(matches!(
            m.create_object(&mut space, sro, ObjectSpec::generic(512, 0)),
            Err(StorageError::CannotMakeRoom { .. })
        ));
    }

    #[test]
    fn memory_budget_evicts_cold_segments() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 1024);
        let root = space.root_sro();
        let sro = create_sro(
            &mut space,
            root,
            Level(0),
            SroQuota {
                data_bytes: 16 * 1024,
                access_slots: 256,
            },
        )
        .unwrap();
        // Budget: the directory's single leaf page plus ~4 resident
        // 256-byte data parts.
        let mut m = SwappingManager::with_memory_budget(
            super::LEAF_PAGE_BYTES + 4 * 256 + space_data(&space),
        );
        let mut objs = Vec::new();
        for _ in 0..8 {
            objs.push(
                m.create_object(&mut space, sro, ObjectSpec::generic(256, 0))
                    .unwrap(),
            );
        }
        // Growth past the budget evicted the overflow to backing store;
        // everything stays reachable (swap-in on demand), nothing faults.
        assert!(m.stats().swap_outs >= 1, "budget pressure must evict");
        assert!(
            SwappingManager::resident_bytes(&space) <= m.memory_budget_bytes,
            "footprint must settle under the budget"
        );
        let absent = objs
            .iter()
            .filter(|o| space.table.get(**o).unwrap().desc.absent)
            .count();
        assert!(absent >= 4);
        m.ensure_resident(&mut space, objs[0]).unwrap();
        assert!(!space.table.get(objs[0]).unwrap().desc.absent);
    }

    /// Data bytes resident before the test allocates anything (the root
    /// SRO's own bookkeeping objects).
    fn space_data(space: &ObjectSpace) -> u64 {
        let mut data = 0u64;
        use i432_arch::SpaceMut;
        space.for_each_live(&mut |_, e| {
            if !e.desc.absent {
                data += e.desc.data_len as u64;
            }
        });
        data
    }

    #[test]
    fn zero_budget_means_unlimited() {
        let (mut space, sro) = tight_space();
        let mut m = SwappingManager::new();
        assert_eq!(m.memory_budget_bytes, 0);
        for _ in 0..4 {
            m.create_object(&mut space, sro, ObjectSpec::generic(256, 0))
                .unwrap();
        }
        assert_eq!(m.stats().swap_outs, 0, "no budget, no budget evictions");
    }

    #[test]
    fn scrub_drops_stale_pages() {
        let (mut space, sro) = tight_space();
        let mut m = SwappingManager::new();
        let obj = m
            .create_object(&mut space, sro, ObjectSpec::generic(64, 0))
            .unwrap();
        m.swap_out(&mut space, obj).unwrap();
        // Simulate the GC reclaiming the absent object directly.
        space.destroy_object(obj).unwrap();
        assert_eq!(m.backing.resident_pages(), 1);
        assert_eq!(m.scrub(&space), 1);
        assert_eq!(m.backing.resident_pages(), 0);
    }
}
