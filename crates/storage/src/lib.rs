//! # imax-storage — iMAX memory management
//!
//! Paper §5/§6.2: the 432 hardware provides storage resource objects
//! (SROs) and the creation instruction; iMAX "provides operations to
//! create and maintain both SROs and process objects" and layers the
//! Ada-flavoured storage model on top:
//!
//! * **stack allocation** — contexts, allocated implicitly by CALL;
//! * **global heap allocation** — objects from level-0 SROs, reclaimed
//!   only by garbage collection;
//! * **local heap allocation** — objects from an SRO fixed at the
//!   process's current dynamic depth, reclaimed *en masse* when the
//!   process returns above that depth.
//!
//! Configurability (§6.2) is realized as the paper describes: one
//! interface ([`StorageManager`]), two implementations — the first-release
//! non-swapping manager ([`FrozenManager`]) and the second-release
//! swapping manager ([`SwappingManager`]) — "optimized internally to the
//! level of function they provide", each with an additional
//! implementation-specific management interface.

#![warn(missing_docs)]

pub mod backing;
pub mod compact;
pub mod frozen;
pub mod heaps;
pub mod iface;
pub mod sro;
pub mod swapping;

pub use backing::BackingStore;
pub use compact::{compact_sro, CompactionReport};
pub use frozen::FrozenManager;
pub use heaps::{close_local_heap, open_local_heap, open_local_heap_at};
pub use iface::{StorageError, StorageManager, StorageStats};
pub use sro::{create_sro, SroQuota};
pub use swapping::SwappingManager;
