//! Local heaps: scope-bounded allocation for processes.
//!
//! Paper §5: "A process may create an SRO with a level number
//! corresponding to its current depth called a *local heap* and then
//! create objects from it. Since access to these objects will not escape
//! their proper environment, objects may be destroyed whenever their
//! ancestral SRO is destroyed, without leaving dangling references. This
//! SRO will be destroyed automatically when the process returns above the
//! call depth to which it corresponds."
//!
//! The automatic destruction lives in the RETURN path of `i432-gdp`;
//! these helpers open and close local heaps on behalf of a process (they
//! back the `storage_management` iMAX service).

use crate::{
    iface::{StorageError, StorageManager},
    sro::SroQuota,
};
use i432_arch::{
    sysobj::{PROC_SLOT_CONTEXT, PROC_SLOT_LOCAL_HEAP},
    ObjectRef, Rights, SpaceMut,
};

/// Opens a local heap for the process at its *current* dynamic depth.
///
/// The heap SRO's fixed level equals the current context's level, so
/// objects allocated from it may be referenced freely from the current
/// frame and deeper, but can never escape upward; the RETURN that leaves
/// this depth destroys the heap and everything in it.
///
/// Returns the heap SRO. Fails if a local heap is already open (one per
/// depth; nested opens would need the previous one closed or a deeper
/// frame).
pub fn open_local_heap(
    manager: &mut dyn StorageManager,
    space: &mut dyn SpaceMut,
    proc_ref: ObjectRef,
    quota: SroQuota,
) -> Result<ObjectRef, StorageError> {
    open_local_heap_at(manager, space, proc_ref, quota, None)
}

/// [`open_local_heap`] with an explicit depth.
///
/// When the opening request arrives through a *service call*, the current
/// context belongs to the service (one level deeper than the requester);
/// the service passes the requester's depth here so the heap is scoped to
/// the frame that asked for it.
pub fn open_local_heap_at(
    manager: &mut dyn StorageManager,
    space: &mut dyn SpaceMut,
    proc_ref: ObjectRef,
    quota: SroQuota,
    depth: Option<i432_arch::Level>,
) -> Result<ObjectRef, StorageError> {
    if space.load_ad_hw(proc_ref, PROC_SLOT_LOCAL_HEAP)?.is_some() {
        return Err(StorageError::NotEligible("local heap already open"));
    }
    // Current depth = level of the current context, unless given.
    let depth = match depth {
        Some(d) => d,
        None => {
            let ctx = space
                .load_ad_hw(proc_ref, PROC_SLOT_CONTEXT)?
                .ok_or(StorageError::NotEligible("process has no context"))?;
            space.entry(ctx.obj)?.desc.level
        }
    };
    let parent = space.root_sro();
    let heap = manager.create_heap(space, parent, depth, quota)?;
    let heap_ad = space.mint(heap, Rights::ALLOCATE | Rights::RECLAIM);
    space.store_ad_hw(proc_ref, PROC_SLOT_LOCAL_HEAP, Some(heap_ad))?;
    Ok(heap)
}

/// Closes (destroys) the process's local heap explicitly, reclaiming
/// every object allocated from it. Returns the number of objects
/// reclaimed, or 0 when no heap was open.
pub fn close_local_heap(
    manager: &mut dyn StorageManager,
    space: &mut dyn SpaceMut,
    proc_ref: ObjectRef,
) -> Result<u32, StorageError> {
    let Some(heap) = space.load_ad_hw(proc_ref, PROC_SLOT_LOCAL_HEAP)? else {
        return Ok(0);
    };
    space.store_ad_hw(proc_ref, PROC_SLOT_LOCAL_HEAP, None)?;
    manager.destroy_heap(space, heap.obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::FrozenManager;
    use i432_arch::{
        ContextState, Level, ObjectSpace, ObjectSpec, ObjectType, ProcessState, SysState,
        SystemType,
    };

    /// Builds a bare process with a context at the given level.
    fn proc_at_depth(space: &mut ObjectSpace, depth: u16) -> ObjectRef {
        let root = space.root_sro();
        let proc_ref = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 0,
                    access_len: i432_arch::sysobj::PROC_ACCESS_SLOTS,
                    otype: ObjectType::System(SystemType::Process),
                    level: None,
                    sys: SysState::Process(ProcessState::new(Level::GLOBAL)),
                },
            )
            .unwrap();
        let ctx = space
            .create_object(
                root,
                ObjectSpec {
                    data_len: 32,
                    access_len: 8,
                    otype: ObjectType::System(SystemType::Context),
                    level: Some(Level(depth)),
                    sys: SysState::Context(ContextState {
                        body: i432_arch::CodeBody::Interpreted(i432_arch::CodeRef(0)),
                        ip: 0,
                        ret_ad_slot: None,
                        ret_val_off: None,
                        subprogram: 0,
                    }),
                },
            )
            .unwrap();
        let ctx_ad = space.mint(ctx, Rights::READ | Rights::WRITE);
        space
            .store_ad_hw(proc_ref, PROC_SLOT_CONTEXT, Some(ctx_ad))
            .unwrap();
        proc_ref
    }

    #[test]
    fn open_allocate_close() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let mut m = FrozenManager::new();
        let p = proc_at_depth(&mut space, 3);
        let heap = open_local_heap(&mut m, &mut space, p, SroQuota::for_objects(8)).unwrap();
        assert_eq!(space.sro(heap).unwrap().level, Level(3));
        for _ in 0..3 {
            space
                .create_object(heap, ObjectSpec::generic(32, 1))
                .unwrap();
        }
        let n = close_local_heap(&mut m, &mut space, p).unwrap();
        assert_eq!(n, 4);
        // Heap slot is cleared; a second close is a no-op.
        assert_eq!(close_local_heap(&mut m, &mut space, p).unwrap(), 0);
    }

    #[test]
    fn double_open_rejected() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let mut m = FrozenManager::new();
        let p = proc_at_depth(&mut space, 2);
        open_local_heap(&mut m, &mut space, p, SroQuota::for_objects(4)).unwrap();
        assert!(matches!(
            open_local_heap(&mut m, &mut space, p, SroQuota::for_objects(4)),
            Err(StorageError::NotEligible(_))
        ));
    }

    #[test]
    fn local_objects_cannot_escape_upward() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let mut m = FrozenManager::new();
        let p = proc_at_depth(&mut space, 4);
        let heap = open_local_heap(&mut m, &mut space, p, SroQuota::for_objects(8)).unwrap();
        let local = space
            .create_object(heap, ObjectSpec::generic(16, 0))
            .unwrap();
        let local_ad = space.mint(local, Rights::READ);
        // A global container refuses the local object's AD.
        let root = space.root_sro();
        let global = space
            .create_object(root, ObjectSpec::generic(0, 2))
            .unwrap();
        let global_ad = space.mint(global, Rights::WRITE);
        assert!(space.store_ad(global_ad, 0, Some(local_ad)).is_err());
    }
}
