//! SRO creation: carving child storage resources out of a parent.
//!
//! Paper §5: "iMAX uses these hardware facilities to provide a uniform
//! tree structure encompassing both processes and storage resource
//! objects." A child SRO receives a *donation* of space from its parent's
//! free lists; destroying the child (and its objects) returns the whole
//! donation.

use crate::iface::StorageError;
use i432_arch::{
    Level, ObjectRef, ObjectSpec, ObjectType, SpaceMut, SroState, SysState, SystemType,
};

/// How much space a new SRO is given.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SroQuota {
    /// Data-arena bytes donated.
    pub data_bytes: u32,
    /// Access-arena slots donated.
    pub access_slots: u32,
}

impl SroQuota {
    /// A quota sized for `n` typical small objects.
    pub fn for_objects(n: u32) -> SroQuota {
        SroQuota {
            data_bytes: n * 128,
            access_slots: n * 8,
        }
    }
}

/// Creates a child SRO of `parent` at `level`, donating `quota` from the
/// parent's free space.
///
/// The donation is taken as single contiguous runs from the parent (the
/// simplest policy, and what keeps bulk restitution exact). Fails with
/// the parent's exhaustion error when it cannot supply the quota.
pub fn create_sro<S: SpaceMut + ?Sized>(
    space: &mut S,
    parent: ObjectRef,
    level: Level,
    quota: SroQuota,
) -> Result<ObjectRef, StorageError> {
    // Carve the donation out of the parent.
    let (data_base, access_base) = {
        let pstate = space.sro_mut(parent)?;
        let data_base = pstate.data_free.allocate(quota.data_bytes)?;
        let access_base = match pstate.access_free.allocate(quota.access_slots) {
            Ok(b) => b,
            Err(e) => {
                pstate
                    .data_free
                    .release(data_base, quota.data_bytes)
                    .expect("rollback of fresh allocation");
                return Err(e.into());
            }
        };
        (data_base, access_base)
    };
    let mut state = SroState::new(level);
    state.parent = Some(parent);
    state
        .data_free
        .donate(data_base, quota.data_bytes)
        .expect("fresh free list");
    state
        .access_free
        .donate(access_base, quota.access_slots)
        .expect("fresh free list");
    let sro = space.create_object(
        parent,
        ObjectSpec {
            data_len: 0,
            access_len: 0,
            otype: ObjectType::System(SystemType::StorageResource),
            level: None, // The SRO object itself lives at the parent's level.
            sys: SysState::Sro(state),
        },
    );
    match sro {
        Ok(r) => Ok(r),
        Err(e) => {
            // Return the donation.
            let pstate = space.sro_mut(parent)?;
            pstate
                .data_free
                .release(data_base, quota.data_bytes)
                .expect("rollback");
            pstate
                .access_free
                .release(access_base, quota.access_slots)
                .expect("rollback");
            Err(e.into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpace, Rights};

    #[test]
    fn child_sro_allocates_from_donation() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 256);
        let root = space.root_sro();
        let child = create_sro(
            &mut space,
            root,
            Level(2),
            SroQuota {
                data_bytes: 1024,
                access_slots: 64,
            },
        )
        .unwrap();
        let obj = space
            .create_object(child, ObjectSpec::generic(128, 4))
            .unwrap();
        // The object carries the SRO's fixed level.
        assert_eq!(space.table.get(obj).unwrap().desc.level, Level(2));
        assert_eq!(space.sro(child).unwrap().object_count, 1);
    }

    #[test]
    fn donation_is_bounded() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 256);
        let root = space.root_sro();
        let child = create_sro(
            &mut space,
            root,
            Level(1),
            SroQuota {
                data_bytes: 256,
                access_slots: 8,
            },
        )
        .unwrap();
        // Can't allocate beyond the quota even though the parent has
        // plenty.
        assert!(space
            .create_object(child, ObjectSpec::generic(512, 0))
            .is_err());
    }

    #[test]
    fn bulk_destroy_returns_donation_to_parent() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 256);
        let root = space.root_sro();
        let free_before = space.sro(root).unwrap().data_free.total_free();
        let child = create_sro(
            &mut space,
            root,
            Level(3),
            SroQuota {
                data_bytes: 2048,
                access_slots: 128,
            },
        )
        .unwrap();
        for _ in 0..5 {
            space
                .create_object(child, ObjectSpec::generic(64, 2))
                .unwrap();
        }
        let reclaimed = space.bulk_destroy_sro(child).unwrap();
        assert_eq!(reclaimed, 6); // 5 objects + the SRO itself
        assert_eq!(
            space.sro(root).unwrap().data_free.total_free(),
            free_before,
            "the full donation must come back"
        );
    }

    #[test]
    fn nested_sros_restitute_transitively() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 256);
        let root = space.root_sro();
        let free_before = space.sro(root).unwrap().data_free.total_free();
        let a = create_sro(
            &mut space,
            root,
            Level(1),
            SroQuota {
                data_bytes: 4096,
                access_slots: 256,
            },
        )
        .unwrap();
        let b = create_sro(
            &mut space,
            a,
            Level(2),
            SroQuota {
                data_bytes: 1024,
                access_slots: 64,
            },
        )
        .unwrap();
        space.create_object(b, ObjectSpec::generic(64, 2)).unwrap();
        space.create_object(a, ObjectSpec::generic(64, 2)).unwrap();
        space.bulk_destroy_sro(a).unwrap();
        assert_eq!(space.sro(root).unwrap().data_free.total_free(), free_before);
    }

    #[test]
    fn exhausted_parent_refuses_donation() {
        let mut space = ObjectSpace::new(1024, 64, 64);
        let root = space.root_sro();
        assert!(matches!(
            create_sro(
                &mut space,
                root,
                Level(1),
                SroQuota {
                    data_bytes: 4096,
                    access_slots: 8,
                },
            ),
            Err(StorageError::Arch(_))
        ));
        // Rollback left the parent intact.
        let _ = space.mint(root, Rights::ALLOCATE);
        assert_eq!(space.sro(root).unwrap().data_free.total_free(), 1024);
    }
}
