//! The non-swapping ("frozen") storage manager — iMAX release 1.
//!
//! Paper §9: "The first release of the system is non-swapping and
//! concentrates on providing a development debugging base." All segments
//! stay resident; exhaustion is reported to the caller (and surfaces as a
//! storage fault in programs).

use crate::{
    iface::{StorageError, StorageManager, StorageStats},
    sro::{create_sro, SroQuota},
};
use i432_arch::{Level, ObjectRef, ObjectSpec, SpaceMut};

/// The release-1 manager: direct pass-through with accounting.
#[derive(Debug, Default)]
pub struct FrozenManager {
    stats: StorageStats,
}

impl FrozenManager {
    /// A fresh manager.
    pub fn new() -> FrozenManager {
        FrozenManager::default()
    }
}

impl StorageManager for FrozenManager {
    fn name(&self) -> &'static str {
        "non-swapping"
    }

    fn create_object(
        &mut self,
        space: &mut dyn SpaceMut,
        sro: ObjectRef,
        spec: ObjectSpec,
    ) -> Result<ObjectRef, StorageError> {
        let r = space.create_object(sro, spec)?;
        self.stats.allocated += 1;
        Ok(r)
    }

    fn destroy_object(
        &mut self,
        space: &mut dyn SpaceMut,
        obj: ObjectRef,
    ) -> Result<(), StorageError> {
        space.destroy_object(obj)?;
        self.stats.destroyed += 1;
        Ok(())
    }

    fn create_heap(
        &mut self,
        space: &mut dyn SpaceMut,
        parent: ObjectRef,
        level: Level,
        quota: SroQuota,
    ) -> Result<ObjectRef, StorageError> {
        let r = create_sro(space, parent, level, quota)?;
        self.stats.heaps_created += 1;
        Ok(r)
    }

    fn destroy_heap(
        &mut self,
        space: &mut dyn SpaceMut,
        sro: ObjectRef,
    ) -> Result<u32, StorageError> {
        let n = space.bulk_destroy_sro(sro)?;
        self.stats.heaps_destroyed += 1;
        self.stats.destroyed += n as u64;
        Ok(n)
    }

    fn ensure_resident(
        &mut self,
        space: &mut dyn SpaceMut,
        obj: ObjectRef,
    ) -> Result<(), StorageError> {
        // Nothing is ever absent under this manager; validate the
        // reference for parity with the swapping implementation.
        space.entry(obj)?;
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::ObjectSpace;

    #[test]
    fn pass_through_allocation_and_accounting() {
        let mut space = ObjectSpace::new(8192, 512, 128);
        let root = space.root_sro();
        let mut m = FrozenManager::new();
        let o = m
            .create_object(&mut space, root, ObjectSpec::generic(64, 2))
            .unwrap();
        m.ensure_resident(&mut space, o).unwrap();
        m.destroy_object(&mut space, o).unwrap();
        assert_eq!(m.stats().allocated, 1);
        assert_eq!(m.stats().destroyed, 1);
        assert_eq!(m.stats().swap_outs, 0);
    }

    #[test]
    fn exhaustion_is_reported_not_hidden() {
        let mut space = ObjectSpace::new(128, 16, 64);
        let root = space.root_sro();
        let mut m = FrozenManager::new();
        assert!(matches!(
            m.create_object(&mut space, root, ObjectSpec::generic(4096, 0)),
            Err(StorageError::Arch(_))
        ));
    }

    #[test]
    fn heap_lifecycle() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 256);
        let root = space.root_sro();
        let mut m = FrozenManager::new();
        let heap = m
            .create_heap(&mut space, root, Level(2), SroQuota::for_objects(16))
            .unwrap();
        for _ in 0..3 {
            m.create_object(&mut space, heap, ObjectSpec::generic(32, 1))
                .unwrap();
        }
        let n = m.destroy_heap(&mut space, heap).unwrap();
        assert_eq!(n, 4);
        assert_eq!(m.stats().heaps_created, 1);
        assert_eq!(m.stats().heaps_destroyed, 1);
    }
}
