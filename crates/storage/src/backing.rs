//! The backing store used by the swapping manager.
//!
//! Models the 432's secondary storage at the level the swapping manager
//! needs: a keyed store of evicted data parts with transfer accounting.
//! The simulated transfer cost (cycles per byte) feeds the swap-fault
//! latency reported in EXPERIMENTS.md.

use i432_arch::ObjectRef;
use std::collections::HashMap;

/// Transfer accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BackingStats {
    /// Data parts written out.
    pub writes: u64,
    /// Data parts read back.
    pub reads: u64,
    /// Bytes written.
    pub bytes_out: u64,
    /// Bytes read.
    pub bytes_in: u64,
}

/// A keyed store of evicted data parts.
#[derive(Debug, Default)]
pub struct BackingStore {
    pages: HashMap<ObjectRef, Vec<u8>>,
    /// Transfer accounting.
    pub stats: BackingStats,
    /// Simulated transfer cost in cycles per byte (device speed model).
    pub cycles_per_byte: u64,
}

impl BackingStore {
    /// A store with the default device-speed model (2 cycles/byte ≈ a
    /// fast swapping device relative to the 8 MHz processor).
    pub fn new() -> BackingStore {
        BackingStore {
            pages: HashMap::new(),
            stats: BackingStats::default(),
            cycles_per_byte: 2,
        }
    }

    /// Stores an evicted data part; returns the simulated transfer
    /// cycles.
    pub fn write(&mut self, key: ObjectRef, data: Vec<u8>) -> u64 {
        self.stats.writes += 1;
        self.stats.bytes_out += data.len() as u64;
        let cycles = data.len() as u64 * self.cycles_per_byte;
        self.pages.insert(key, data);
        cycles
    }

    /// Retrieves (and removes) a data part; returns the data and the
    /// simulated transfer cycles.
    pub fn read(&mut self, key: ObjectRef) -> Option<(Vec<u8>, u64)> {
        let data = self.pages.remove(&key)?;
        self.stats.reads += 1;
        self.stats.bytes_in += data.len() as u64;
        let cycles = data.len() as u64 * self.cycles_per_byte;
        Some((data, cycles))
    }

    /// Discards a stored part (object destroyed while swapped out).
    pub fn discard(&mut self, key: ObjectRef) -> bool {
        self.pages.remove(&key).is_some()
    }

    /// Number of parts currently on backing store.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Keys of all stored parts (used by the manager's scrubber).
    pub fn keys(&self) -> Vec<ObjectRef> {
        self.pages.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> ObjectRef {
        ObjectRef {
            index: i432_arch::ObjectIndex(i),
            generation: 0,
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mut b = BackingStore::new();
        let key = ObjectRef {
            index: i432_arch::ObjectIndex(7),
            generation: 0,
        };
        let cycles = b.write(key, vec![1, 2, 3, 4]);
        assert_eq!(cycles, 8);
        assert_eq!(b.resident_pages(), 1);
        let (data, cycles) = b.read(key).unwrap();
        assert_eq!(data, vec![1, 2, 3, 4]);
        assert_eq!(cycles, 8);
        assert_eq!(b.resident_pages(), 0);
        assert!(b.read(key).is_none());
    }

    #[test]
    fn discard_drops_page() {
        let mut b = BackingStore::new();
        b.write(k(1), vec![0; 16]);
        assert!(b.discard(k(1)));
        assert!(!b.discard(k(1)));
    }

    #[test]
    fn stats_accumulate() {
        let mut b = BackingStore::new();
        b.write(k(1), vec![0; 10]);
        b.write(k(2), vec![0; 20]);
        b.read(k(1));
        assert_eq!(b.stats.writes, 2);
        assert_eq!(b.stats.bytes_out, 30);
        assert_eq!(b.stats.reads, 1);
        assert_eq!(b.stats.bytes_in, 10);
    }
}
