//! SRO compaction: defragmenting an SRO's data space by sliding
//! segments.
//!
//! The 432's object descriptors make compaction possible by design —
//! every segment has exactly *one* descriptor holding its physical base
//! (paper §2), so moving a segment means copying its bytes and updating
//! one word; the arbitrarily many access descriptors for it never change.
//! iMAX's memory managers use this to convert external fragmentation
//! (plenty of free bytes, no run large enough) back into allocatable
//! space.
//!
//! Only *data parts* move; the paper's user-visible contract that a
//! segment "might be being moved and therefore be inaccessible for some
//! period of time" (§7.3) is modeled by the simulated cycle cost the
//! compactor reports — in the deterministic simulator the move itself is
//! atomic between instructions.

use crate::iface::StorageError;
use i432_arch::{ObjectRef, SpaceMut};

/// The result of one compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segments moved.
    pub moved: u32,
    /// Bytes copied.
    pub bytes_copied: u64,
    /// Largest allocatable run before compaction.
    pub largest_before: u32,
    /// Largest allocatable run after compaction.
    pub largest_after: u32,
    /// Simulated cycles the pass consumed (2 cycles per word moved plus
    /// a per-segment descriptor update).
    pub sim_cycles: u64,
}

/// Compacts an SRO's data space: every resident segment charged to the
/// SRO slides toward the low end of the SRO's space, coalescing all free
/// bytes into one high run.
///
/// Absent (swapped-out) segments own no data run, so they neither move
/// nor block movers. Access parts are not compacted (capability topology
/// stays put).
pub fn compact_sro<S: SpaceMut + ?Sized>(
    space: &mut S,
    sro: ObjectRef,
) -> Result<CompactionReport, StorageError> {
    // An SRO that has donated part of its span to child SROs cannot be
    // compacted: the child ranges are neither free nor charged here, and
    // sliding segments across them would corrupt the children. (iMAX
    // compacts leaf heaps; parents compact after their children are
    // destroyed.)
    let mut has_children = false;
    space.for_each_live(&mut |_, e| {
        has_children |= matches!(&e.sys, i432_arch::SysState::Sro(st) if st.parent == Some(sro));
    });
    if has_children {
        return Err(StorageError::NotEligible(
            "SRO has child SROs holding donated space",
        ));
    }
    let largest_before = space.sro(sro)?.data_free.largest_free();

    // Collect the SRO's resident segments in address order.
    let mut segments: Vec<(ObjectRef, u32, u32)> = Vec::new();
    space.for_each_live(&mut |i, e| {
        if e.desc.sro == Some(sro) && !e.desc.absent && e.desc.data_len > 0 {
            segments.push((
                ObjectRef {
                    index: i,
                    generation: e.generation,
                },
                e.desc.data_base,
                e.desc.data_len,
            ));
        }
    });
    segments.sort_by_key(|&(_, base, _)| base);

    // The SRO's span: the lowest point of (free runs ∪ segments).
    let free_low = space.sro(sro)?.data_free.runs().map(|r| r.base).min();
    let seg_low = segments.first().map(|&(_, b, _)| b);
    let Some(mut cursor) = [free_low, seg_low].into_iter().flatten().min() else {
        // Nothing charged and nothing free: empty SRO.
        return Ok(CompactionReport {
            moved: 0,
            bytes_copied: 0,
            largest_before,
            largest_after: largest_before,
            sim_cycles: 0,
        });
    };

    let mut report = CompactionReport {
        moved: 0,
        bytes_copied: 0,
        largest_before,
        largest_after: 0,
        sim_cycles: 0,
    };

    // Slide each segment down to the cursor. Because we process in
    // address order and the cursor never overtakes an unprocessed
    // segment's base, source and destination ranges cannot overlap
    // destructively (dst <= src always).
    for (r, base, len) in segments {
        debug_assert!(cursor <= base);
        if cursor != base {
            space.data_arena_mut(r)?.copy_within(base, cursor, len)?;
            space.entry_mut(r)?.desc.data_base = cursor;
            report.moved += 1;
            report.bytes_copied += len as u64;
            report.sim_cycles += (len as u64).div_ceil(4) * 2 + 20;
        }
        cursor += len;
    }

    // Rebuild the free list: everything from the cursor to the old end
    // of the SRO's space is one run.
    let total_free = space.sro(sro)?.data_free.total_free();
    {
        let st = space.sro_mut(sro)?;
        st.data_free = i432_arch::FreeList::new(cursor, total_free);
    }
    report.largest_after = space.sro(sro)?.data_free.largest_free();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sro::{create_sro, SroQuota};
    use i432_arch::{Level, ObjectSpace, ObjectSpec, Rights};

    fn fragmented_sro(space: &mut ObjectSpace) -> (ObjectRef, Vec<(ObjectRef, u64)>) {
        let root = space.root_sro();
        let sro = create_sro(
            space,
            root,
            Level(0),
            SroQuota {
                data_bytes: 2048, // exactly 8 x 256: no slack tail
                access_slots: 256,
            },
        )
        .unwrap();
        // Allocate 8 × 256B, free every other one: 1 KiB free in 4
        // scattered holes.
        let mut objs = Vec::new();
        let mut survivors = Vec::new();
        for i in 0..8u64 {
            let o = space
                .create_object(sro, ObjectSpec::generic(256, 0))
                .unwrap();
            let ad = space.mint(o, Rights::READ | Rights::WRITE);
            space.write_u64(ad, 0, 100 + i).unwrap();
            space.write_u64(ad, 248, 200 + i).unwrap();
            objs.push((o, i));
        }
        for (k, (o, i)) in objs.into_iter().enumerate() {
            if k % 2 == 0 {
                space.destroy_object(o).unwrap();
            } else {
                survivors.push((o, i));
            }
        }
        (sro, survivors)
    }

    #[test]
    fn compaction_coalesces_free_space() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let (sro, survivors) = fragmented_sro(&mut space);
        let before = space.sro(sro).unwrap();
        assert!(before.data_free.largest_free() < before.data_free.total_free());
        let total = before.data_free.total_free();

        let report = compact_sro(&mut space, sro).unwrap();
        assert!(report.moved >= 1);
        assert_eq!(
            space.sro(sro).unwrap().data_free.largest_free(),
            total,
            "all free space in one run"
        );
        assert_eq!(space.sro(sro).unwrap().data_free.run_count(), 1);
        assert!(report.largest_after > report.largest_before);

        // Survivors keep their contents, reachable through their old
        // (unchanged!) access descriptors.
        for (o, i) in survivors {
            let ad = space.mint(o, Rights::READ);
            assert_eq!(space.read_u64(ad, 0).unwrap(), 100 + i);
            assert_eq!(space.read_u64(ad, 248).unwrap(), 200 + i);
        }
    }

    #[test]
    fn big_allocation_succeeds_only_after_compaction() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let (sro, _) = fragmented_sro(&mut space);
        // 1 KiB is free but scattered in 256B holes.
        assert!(space
            .create_object(sro, ObjectSpec::generic(1024, 0))
            .is_err());
        compact_sro(&mut space, sro).unwrap();
        assert!(space
            .create_object(sro, ObjectSpec::generic(1024, 0))
            .is_ok());
    }

    #[test]
    fn compaction_is_idempotent() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let (sro, _) = fragmented_sro(&mut space);
        compact_sro(&mut space, sro).unwrap();
        let second = compact_sro(&mut space, sro).unwrap();
        assert_eq!(second.moved, 0);
        assert_eq!(second.bytes_copied, 0);
    }

    #[test]
    fn parent_with_children_refuses_compaction() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let root = space.root_sro();
        let parent = create_sro(
            &mut space,
            root,
            Level(0),
            SroQuota {
                data_bytes: 4096,
                access_slots: 128,
            },
        )
        .unwrap();
        let child = create_sro(
            &mut space,
            parent,
            Level(1),
            SroQuota {
                data_bytes: 1024,
                access_slots: 32,
            },
        )
        .unwrap();
        assert!(matches!(
            compact_sro(&mut space, parent),
            Err(StorageError::NotEligible(_))
        ));
        // Destroying the child restores eligibility.
        space.bulk_destroy_sro(child).unwrap();
        assert!(compact_sro(&mut space, parent).is_ok());
    }

    #[test]
    fn empty_sro_compacts_trivially() {
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let root = space.root_sro();
        let sro = create_sro(
            &mut space,
            root,
            Level(0),
            SroQuota {
                data_bytes: 1024,
                access_slots: 32,
            },
        )
        .unwrap();
        let report = compact_sro(&mut space, sro).unwrap();
        assert_eq!(report.moved, 0);
        assert_eq!(space.sro(sro).unwrap().data_free.total_free(), 1024);
    }

    #[test]
    fn absent_segments_do_not_block_compaction() {
        use crate::iface::StorageManager;
        use crate::swapping::SwappingManager;
        let mut space = ObjectSpace::new(64 * 1024, 4096, 512);
        let (sro, survivors) = fragmented_sro(&mut space);
        let mut mgr = SwappingManager::new();
        // Swap one survivor out; compaction must skip it cleanly.
        let (victim, stamp) = survivors[0];
        mgr.swap_out(&mut space, victim).unwrap();
        compact_sro(&mut space, sro).unwrap();
        // Bring it back: still intact (its bytes lived on backing store).
        mgr.ensure_resident(&mut space, victim).unwrap();
        let ad = space.mint(victim, Rights::READ);
        assert_eq!(space.read_u64(ad, 0).unwrap(), 100 + stamp);
    }
}
