//! The common storage-management interface.
//!
//! Paper §6.2: "Virtually all processes make use of memory management
//! facilities via a standard interface that permits allocation of new
//! objects. Few processes depend upon whether the underlying
//! implementation includes swapping or not. A single Ada specification
//! defines the common interface. ... The system is configured by
//! selecting one of the alternate implementations; most applications will
//! not be affected by this selection."

use i432_arch::{ArchError, ObjectRef, ObjectSpec, SpaceMut};
use std::fmt;

/// Storage-management failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The underlying architectural operation failed.
    Arch(ArchError),
    /// The request exceeded an SRO quota.
    QuotaExceeded {
        /// Units requested.
        requested: u32,
        /// Units remaining under the quota.
        available: u32,
    },
    /// The swapping manager could not make room even after eviction.
    CannotMakeRoom {
        /// Bytes that were needed.
        needed: u32,
    },
    /// The segment is not eligible for this operation (e.g. swapping a
    /// pinned system object).
    NotEligible(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Arch(e) => write!(f, "storage: {e}"),
            StorageError::QuotaExceeded {
                requested,
                available,
            } => write!(
                f,
                "quota exceeded: requested {requested}, available {available}"
            ),
            StorageError::CannotMakeRoom { needed } => {
                write!(f, "cannot make room for {needed} bytes")
            }
            StorageError::NotEligible(why) => write!(f, "not eligible: {why}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<ArchError> for StorageError {
    fn from(e: ArchError) -> StorageError {
        StorageError::Arch(e)
    }
}

/// Counters every manager maintains.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Objects allocated through this manager.
    pub allocated: u64,
    /// Objects destroyed through this manager.
    pub destroyed: u64,
    /// Heaps (SROs) created.
    pub heaps_created: u64,
    /// Heaps destroyed (with their objects).
    pub heaps_destroyed: u64,
    /// Segments swapped out (swapping manager only).
    pub swap_outs: u64,
    /// Segments swapped in (swapping manager only).
    pub swap_ins: u64,
    /// Allocation retries that required eviction.
    pub eviction_rounds: u64,
    /// Compaction passes performed to defragment an SRO.
    pub compactions: u64,
}

/// The single storage interface both implementations meet.
///
/// All operations take the object space explicitly (any [`SpaceMut`]
/// implementation — the plain space or a sharded one) — a manager is an
/// iMAX *package* (policy + bookkeeping), not an owner of the hardware.
pub trait StorageManager: Send {
    /// Implementation name ("non-swapping", "swapping").
    fn name(&self) -> &'static str;

    /// Allocates an object from the given SRO, applying the
    /// implementation's policy (the swapping manager evicts to make room
    /// when the arena is exhausted).
    fn create_object(
        &mut self,
        space: &mut dyn SpaceMut,
        sro: ObjectRef,
        spec: ObjectSpec,
    ) -> Result<ObjectRef, StorageError>;

    /// Explicitly destroys an object (the holder must have delete rights
    /// at the interface layer above; the GC path bypasses this).
    fn destroy_object(
        &mut self,
        space: &mut dyn SpaceMut,
        obj: ObjectRef,
    ) -> Result<(), StorageError>;

    /// Creates a heap: a child SRO of `parent` at the given level with
    /// the given quotas.
    fn create_heap(
        &mut self,
        space: &mut dyn SpaceMut,
        parent: ObjectRef,
        level: i432_arch::Level,
        quota: crate::sro::SroQuota,
    ) -> Result<ObjectRef, StorageError>;

    /// Destroys a heap and everything allocated from it (level-scoped
    /// bulk reclamation). Returns the number of objects reclaimed.
    fn destroy_heap(
        &mut self,
        space: &mut dyn SpaceMut,
        sro: ObjectRef,
    ) -> Result<u32, StorageError>;

    /// Ensures a segment's data part is resident (no-op for the
    /// non-swapping manager).
    fn ensure_resident(
        &mut self,
        space: &mut dyn SpaceMut,
        obj: ObjectRef,
    ) -> Result<(), StorageError>;

    /// Implementation-specific statistics (the "additional management
    /// interface" of §6.2).
    fn stats(&self) -> StorageStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = StorageError::QuotaExceeded {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        let e: StorageError = ArchError::TableExhausted.into();
        assert!(matches!(e, StorageError::Arch(_)));
    }
}
