//! # imax-typemgr — user-defined types and type managers
//!
//! Paper §7.2: "via the user type definition facilities of the 432 such a
//! guarantee [hardware-preserved type identity] is available to any user
//! defined object type as well as to those object types recognized by the
//! hardware."
//!
//! * [`tdo`] — type definition objects: creating a user type, binding a
//!   destruction-filter port (paper §8.2).
//! * [`manager`] — the type-manager pattern: a package that creates
//!   instances of its type, hands out *sealed* (rights-restricted)
//!   descriptors, and *amplifies* descriptors handed back to regain full
//!   access — the 432's replacement for kernel mode.
//! * [`package`] — "the raising of packages to the status of types":
//!   dynamic creation of multiple domain instances from one prototype,
//!   iMAX's major Ada extension (paper §6.3).

#![warn(missing_docs)]

pub mod manager;
pub mod package;
pub mod tdo;

pub use manager::TypeManager;
pub use package::PackagePrototype;
pub use tdo::{bind_destruction_filter, create_tdo, filter_port_of};
