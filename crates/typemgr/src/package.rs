//! Packages as types: dynamic package creation.
//!
//! Paper §6.3: "The major extension is the raising of packages to the
//! status of types. This allows multiple instances of a module to be
//! dynamically created and multiple implementations of a single package
//! specification to coexist within a single system."
//!
//! A [`PackagePrototype`] is the "package type": a subprogram table (the
//! specification's operations, with this prototype's implementation
//! bodies) plus a description of per-instance state. Instantiating it
//! mints a fresh *domain object* sharing the code but owning its own
//! state objects — e.g. one device-interface instance per physical device
//! (see `imax-io`).

use i432_arch::{
    AccessDescriptor, DomainState, ObjectRef, ObjectSpec, ObjectType, Rights, SpaceAccess,
    Subprogram, SysState, SystemType,
};
use i432_gdp::Fault;

/// A dynamically instantiable package.
#[derive(Debug, Clone)]
pub struct PackagePrototype {
    /// Package name; instances are named `name[k]`.
    pub name: String,
    /// The specification's operations with this implementation's bodies.
    /// By convention the *device-independent* (or otherwise
    /// specification-mandated) operations come first; implementation-
    /// specific extensions follow (paper §6.3's subset rule).
    pub subprograms: Vec<Subprogram>,
    /// Access-part slots each instance's domain gets for its own state
    /// objects.
    pub state_slots: u32,
    instances: u32,
}

impl PackagePrototype {
    /// A prototype with the given operations.
    pub fn new(
        name: impl Into<String>,
        subprograms: Vec<Subprogram>,
        state_slots: u32,
    ) -> PackagePrototype {
        PackagePrototype {
            name: name.into(),
            subprograms,
            state_slots,
            instances: 0,
        }
    }

    /// Number of instances created from this prototype.
    pub fn instance_count(&self) -> u32 {
        self.instances
    }

    /// Creates a new package instance: a fresh domain object sharing the
    /// prototype's subprograms, with its own (empty) state slots. Returns
    /// a call-rights descriptor — exactly what clients of any package
    /// hold.
    pub fn instantiate<S: SpaceAccess + ?Sized>(
        &mut self,
        space: &mut S,
        sro: ObjectRef,
    ) -> Result<AccessDescriptor, Fault> {
        let k = self.instances;
        let dom = space
            .create_object(
                sro,
                ObjectSpec {
                    data_len: 0,
                    access_len: self.state_slots,
                    otype: ObjectType::System(SystemType::Domain),
                    level: None,
                    sys: SysState::Domain(DomainState {
                        name: format!("{}[{}]", self.name, k),
                        subprograms: self.subprograms.clone(),
                    }),
                },
            )
            .map_err(Fault::from)?;
        self.instances += 1;
        Ok(space.mint(dom, Rights::CALL))
    }

    /// Creates an instance and stores per-instance state objects into its
    /// domain slots (the "package body" variables).
    pub fn instantiate_with_state<S: SpaceAccess + ?Sized>(
        &mut self,
        space: &mut S,
        sro: ObjectRef,
        state: &[AccessDescriptor],
    ) -> Result<AccessDescriptor, Fault> {
        let dom = self.instantiate(space, sro)?;
        for (i, ad) in state.iter().enumerate() {
            space
                .store_ad_hw(dom.obj, i as u32, Some(*ad))
                .map_err(Fault::from)?;
        }
        Ok(dom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{CodeBody, CodeRef, ObjectSpace};

    fn proto() -> PackagePrototype {
        PackagePrototype::new(
            "device",
            vec![Subprogram {
                name: "read".into(),
                body: CodeBody::Interpreted(CodeRef(0)),
                ctx_data_len: 32,
                ctx_access_len: 8,
            }],
            4,
        )
    }

    #[test]
    fn instances_are_distinct_domains() {
        let mut s = ObjectSpace::new(32 * 1024, 4096, 256);
        let root = s.root_sro();
        let mut p = proto();
        let a = p.instantiate(&mut s, root).unwrap();
        let b = p.instantiate(&mut s, root).unwrap();
        assert_ne!(a.obj, b.obj);
        assert_eq!(p.instance_count(), 2);
        // Both are callable domains with the same operations.
        for d in [a, b] {
            let SysState::Domain(ds) = &s.table.get(d.obj).unwrap().sys else {
                panic!("not a domain");
            };
            assert_eq!(ds.subprograms.len(), 1);
        }
        // Names distinguish instances.
        let SysState::Domain(da) = &s.table.get(a.obj).unwrap().sys else {
            unreachable!()
        };
        assert_eq!(da.name, "device[0]");
    }

    #[test]
    fn per_instance_state_is_private() {
        let mut s = ObjectSpace::new(32 * 1024, 4096, 256);
        let root = s.root_sro();
        let mut p = proto();
        let state_a = s.create_object(root, ObjectSpec::generic(16, 0)).unwrap();
        let state_a_ad = s.mint(state_a, Rights::READ | Rights::WRITE);
        let a = p
            .instantiate_with_state(&mut s, root, &[state_a_ad])
            .unwrap();
        let b = p.instantiate(&mut s, root).unwrap();
        // Instance a's slot 0 holds its state; instance b's is null.
        assert!(s.load_ad_hw(a.obj, 0).unwrap().is_some());
        assert!(s.load_ad_hw(b.obj, 0).unwrap().is_none());
    }

    #[test]
    fn clients_hold_call_rights_only() {
        let mut s = ObjectSpace::new(32 * 1024, 4096, 256);
        let root = s.root_sro();
        let mut p = proto();
        let d = p.instantiate(&mut s, root).unwrap();
        assert_eq!(d.rights, Rights::CALL);
        // Clients cannot read the domain's owned state directly.
        assert!(s.load_ad(d, 0).is_err());
    }
}
