//! The type-manager pattern: seal on the way out, amplify on the way
//! back in.
//!
//! Paper §7.1: "the object orientation of the system implies that at any
//! given time, a package will generally have access to only a single
//! instance of the type that it manages. For example, there is no central
//! table of all processes in the system. Rather, the manager acquires an
//! access for a given process object, either from the hardware
//! dispatching mechanism or from a user, whenever it is asked to perform
//! an operation upon it."
//!
//! [`TypeManager`] deliberately keeps **no instance table** — it holds
//! only the TDO. Every operation takes the client's descriptor for one
//! instance and amplifies it; damage from a bug is limited to that one
//! object.

use crate::tdo::create_tdo;
use i432_arch::{
    AccessDescriptor, ObjectRef, ObjectSpec, ObjectType, Rights, SpaceAccess, SpaceAccessExt,
    SpaceMut, SysState,
};
use i432_gdp::{Fault, FaultKind};

/// A type manager: the owner of one user-defined type.
#[derive(Debug, Clone, Copy)]
pub struct TypeManager {
    tdo: AccessDescriptor,
    /// Rights clients receive on freshly created instances. Defaults to
    /// none at all: a sealed handle is pure identity, usable only by
    /// handing it back to the manager.
    pub client_rights: Rights,
}

impl TypeManager {
    /// Creates a new type and its manager.
    pub fn new<S: SpaceAccess + ?Sized>(
        space: &mut S,
        sro: ObjectRef,
        name: &str,
    ) -> Result<TypeManager, Fault> {
        Ok(TypeManager {
            tdo: create_tdo(space, sro, name)?,
            client_rights: Rights::NONE,
        })
    }

    /// Wraps an existing TDO descriptor (must carry create + amplify
    /// rights for the manager to function fully).
    pub fn from_tdo(tdo: AccessDescriptor) -> TypeManager {
        TypeManager {
            tdo,
            client_rights: Rights::NONE,
        }
    }

    /// The type definition object.
    pub fn tdo(&self) -> ObjectRef {
        self.tdo.obj
    }

    /// The TDO descriptor (for binding filters etc.).
    pub fn tdo_ad(&self) -> AccessDescriptor {
        self.tdo
    }

    /// Creates an instance, returning a *sealed* descriptor carrying only
    /// [`TypeManager::client_rights`].
    pub fn create_instance<S: SpaceAccess + ?Sized>(
        &self,
        space: &mut S,
        sro: ObjectRef,
        data_len: u32,
        access_len: u32,
    ) -> Result<AccessDescriptor, Fault> {
        space
            .qualify(self.tdo, Rights::CREATE_INSTANCE)
            .map_err(Fault::from)?;
        let obj = space
            .create_object(
                sro,
                ObjectSpec {
                    data_len,
                    access_len,
                    otype: ObjectType::User(self.tdo.obj),
                    level: None,
                    sys: SysState::Generic,
                },
            )
            .map_err(Fault::from)?;
        space
            .with_tdo_mut(self.tdo.obj, |t| t.instances_created += 1)
            .map_err(Fault::from)?;
        Ok(space.mint(obj, self.client_rights))
    }

    /// Amplifies a client's sealed descriptor back to full rights,
    /// verifying the hardware type identity. This is the 432's AMPLIFY
    /// operation: possible only while holding the TDO with amplify
    /// rights.
    pub fn amplify<S: SpaceAccess + ?Sized>(
        &self,
        space: &mut S,
        sealed: AccessDescriptor,
    ) -> Result<AccessDescriptor, Fault> {
        space
            .qualify(self.tdo, Rights::AMPLIFY)
            .map_err(Fault::from)?;
        let otype = space.otype_of(sealed.obj).map_err(Fault::from)?;
        if otype.user_tdo() != Some(self.tdo.obj) {
            return Err(Fault::with_detail(
                FaultKind::TypeMismatch,
                "amplify: not an instance of this manager's type",
            ));
        }
        Ok(AccessDescriptor::new(
            sealed.obj,
            sealed
                .rights
                .union(Rights::READ | Rights::WRITE | Rights::DELETE),
        ))
    }

    /// Destroys an instance handed back by a client (amplify + reclaim).
    /// Returns its storage to its SRO.
    pub fn destroy_instance<S: SpaceAccess + ?Sized>(
        &self,
        space: &mut S,
        sealed: AccessDescriptor,
    ) -> Result<(), Fault> {
        let full = self.amplify(space, sealed)?;
        space.destroy_object(full.obj).map_err(Fault::from)?;
        space
            .with_tdo_mut(self.tdo.obj, |t| t.instances_reclaimed += 1)
            .map_err(Fault::from)?;
        Ok(())
    }

    /// True when `ad` designates an instance of this manager's type.
    pub fn is_instance<S: SpaceMut + ?Sized>(&self, space: &S, ad: AccessDescriptor) -> bool {
        space
            .entry(ad.obj)
            .map(|e| e.desc.otype.user_tdo() == Some(self.tdo.obj))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::ObjectSpace;

    fn setup() -> (ObjectSpace, TypeManager) {
        let mut s = ObjectSpace::new(64 * 1024, 4096, 512);
        let root = s.root_sro();
        let m = TypeManager::new(&mut s, root, "mailbox").unwrap();
        (s, m)
    }

    #[test]
    fn sealed_handles_convey_nothing() {
        let (mut s, m) = setup();
        let root = s.root_sro();
        let h = m.create_instance(&mut s, root, 32, 0).unwrap();
        assert_eq!(h.rights, Rights::NONE);
        // The client cannot touch the representation.
        assert!(s.read_u64(h, 0).is_err());
        assert!(s.write_u64(h, 0, 1).is_err());
    }

    #[test]
    fn manager_amplifies_and_operates() {
        let (mut s, m) = setup();
        let root = s.root_sro();
        let sealed = m.create_instance(&mut s, root, 32, 0).unwrap();
        let full = m.amplify(&mut s, sealed).unwrap();
        s.write_u64(full, 0, 77).unwrap();
        assert_eq!(s.read_u64(full, 0).unwrap(), 77);
    }

    #[test]
    fn amplify_rejects_foreign_objects() {
        let (mut s, m) = setup();
        let root = s.root_sro();
        let other = TypeManager::new(&mut s, root, "other").unwrap();
        let foreign = other.create_instance(&mut s, root, 8, 0).unwrap();
        assert!(m.amplify(&mut s, foreign).is_err());
        let generic = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let generic_ad = s.mint(generic, Rights::NONE);
        assert!(m.amplify(&mut s, generic_ad).is_err());
    }

    #[test]
    fn amplify_requires_amplify_rights_on_tdo() {
        let (mut s, m) = setup();
        let root = s.root_sro();
        let sealed = m.create_instance(&mut s, root, 8, 0).unwrap();
        // A manager clone whose TDO descriptor lost amplify rights.
        let weak = TypeManager::from_tdo(m.tdo_ad().restricted(Rights::READ));
        assert!(weak.amplify(&mut s, sealed).is_err());
    }

    #[test]
    fn lifecycle_counts() {
        let (mut s, m) = setup();
        let root = s.root_sro();
        let a = m.create_instance(&mut s, root, 8, 0).unwrap();
        let _b = m.create_instance(&mut s, root, 8, 0).unwrap();
        m.destroy_instance(&mut s, a).unwrap();
        let t = s.tdo(m.tdo()).unwrap();
        assert_eq!(t.instances_created, 2);
        assert_eq!(t.instances_reclaimed, 1);
    }

    #[test]
    fn client_rights_policy() {
        let (mut s, mut m) = setup();
        m.client_rights = Rights::READ;
        let root = s.root_sro();
        let h = m.create_instance(&mut s, root, 16, 0).unwrap();
        assert!(s.read_u64(h, 0).is_ok());
        assert!(s.write_u64(h, 0, 1).is_err());
    }

    #[test]
    fn is_instance_discriminates() {
        let (mut s, m) = setup();
        let root = s.root_sro();
        let h = m.create_instance(&mut s, root, 8, 0).unwrap();
        assert!(m.is_instance(&s, h));
        let generic = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        assert!(!m.is_instance(&s, s.mint(generic, Rights::NONE)));
    }
}
