//! Type definition objects.

use i432_arch::{
    sysobj::TDO_SLOT_FILTER_PORT, AccessDescriptor, ObjectRef, ObjectSpec, ObjectType, Rights,
    SpaceAccess, SpaceAccessExt, SysState, SystemType, TdoState,
};
use i432_gdp::{Fault, FaultKind};

/// Creates a type definition object for a new user type.
///
/// The returned access descriptor carries the full type-manager rights:
/// create-instance, amplify, read, write. The manager hands restricted
/// copies (or none at all) to everyone else.
pub fn create_tdo<S: SpaceAccess + ?Sized>(
    space: &mut S,
    sro: ObjectRef,
    name: &str,
) -> Result<AccessDescriptor, Fault> {
    let tdo = space
        .create_object(
            sro,
            ObjectSpec {
                data_len: 0,
                access_len: i432_arch::sysobj::TDO_ACCESS_SLOTS,
                otype: ObjectType::System(SystemType::TypeDefinition),
                level: None,
                sys: SysState::TypeDef(TdoState::new(name)),
            },
        )
        .map_err(Fault::from)?;
    Ok(space.mint(
        tdo,
        Rights::READ | Rights::WRITE | Rights::CREATE_INSTANCE | Rights::AMPLIFY,
    ))
}

/// Binds a destruction-filter port to a type (paper §8.2).
///
/// "A type manager can specify to the system via a type definition object
/// that it wishes to have an opportunity to see any of its objects as
/// they become garbage. The garbage collector will manufacture an access
/// descriptor for such objects and send them to a port defined by the
/// type manager." Requires write rights on the TDO.
pub fn bind_destruction_filter<S: SpaceAccess + ?Sized>(
    space: &mut S,
    tdo: AccessDescriptor,
    filter_port: AccessDescriptor,
) -> Result<(), Fault> {
    space.qualify(tdo, Rights::WRITE).map_err(Fault::from)?;
    space
        .expect_type(tdo, SystemType::TypeDefinition)
        .map_err(Fault::from)?;
    space
        .expect_type(filter_port, SystemType::Port)
        .map_err(Fault::from)?;
    space
        .store_ad_hw(tdo.obj, TDO_SLOT_FILTER_PORT, Some(filter_port))
        .map_err(Fault::from)?;
    space
        .with_tdo_mut(tdo.obj, |t| t.filter_enabled = true)
        .map_err(Fault::from)?;
    Ok(())
}

/// The destruction-filter port bound to a type, if any (collector use).
pub fn filter_port_of<S: SpaceAccess + ?Sized>(
    space: &mut S,
    tdo: ObjectRef,
) -> Result<Option<AccessDescriptor>, Fault> {
    let enabled = space
        .entry_view(tdo, |e| match &e.sys {
            SysState::TypeDef(t) => Ok(t.filter_enabled),
            _ => Err(Fault::with_detail(
                FaultKind::TypeMismatch,
                "not a type definition object",
            )),
        })
        .map_err(Fault::from)??;
    if !enabled {
        return Ok(None);
    }
    space
        .load_ad_hw(tdo, TDO_SLOT_FILTER_PORT)
        .map_err(Fault::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use i432_arch::{ObjectSpace, PortDiscipline};
    use imax_ipc::create_port;

    #[test]
    fn create_and_inspect() {
        let mut s = ObjectSpace::new(32 * 1024, 4096, 256);
        let root = s.root_sro();
        let tdo = create_tdo(&mut s, root, "tape_drive").unwrap();
        assert_eq!(s.tdo(tdo.obj).unwrap().name, "tape_drive");
        assert!(!s.tdo(tdo.obj).unwrap().filter_enabled);
        assert_eq!(filter_port_of(&mut s, tdo.obj).unwrap(), None);
    }

    #[test]
    fn bind_filter() {
        let mut s = ObjectSpace::new(32 * 1024, 4096, 256);
        let root = s.root_sro();
        let tdo = create_tdo(&mut s, root, "tape_drive").unwrap();
        let port = create_port(&mut s, root, 8, PortDiscipline::Fifo).unwrap();
        bind_destruction_filter(&mut s, tdo, port.ad()).unwrap();
        assert!(s.tdo(tdo.obj).unwrap().filter_enabled);
        assert_eq!(filter_port_of(&mut s, tdo.obj).unwrap(), Some(port.ad()));
    }

    #[test]
    fn bind_requires_write_rights() {
        let mut s = ObjectSpace::new(32 * 1024, 4096, 256);
        let root = s.root_sro();
        let tdo = create_tdo(&mut s, root, "t").unwrap();
        let port = create_port(&mut s, root, 2, PortDiscipline::Fifo).unwrap();
        let weak = tdo.restricted(Rights::READ);
        assert!(bind_destruction_filter(&mut s, weak, port.ad()).is_err());
    }

    #[test]
    fn bind_rejects_non_port() {
        let mut s = ObjectSpace::new(32 * 1024, 4096, 256);
        let root = s.root_sro();
        let tdo = create_tdo(&mut s, root, "t").unwrap();
        let not_port = s.create_object(root, ObjectSpec::generic(8, 0)).unwrap();
        let bad = s.mint(not_port, Rights::ALL);
        assert!(bind_destruction_filter(&mut s, tdo, bad).is_err());
    }
}
